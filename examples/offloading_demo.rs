//! The Fig. 4 demonstration as an example: train a small QMARL team and
//! watch it steer the queues, with live qubit-state heatmaps.
//!
//! ```text
//! cargo run --release --example offloading_demo
//! ```

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = 120;
    config.train.seed = 5;

    println!("training Proposed for {} epochs…", config.train.epochs);
    let mut trainer = build_trainer(FrameworkKind::Proposed, &config)?;
    trainer.train(config.train.epochs)?;
    println!(
        "done: reward {:.1} → {:.1}\n",
        trainer.history().records()[0].metrics.total_reward,
        trainer.history().final_reward(10).expect("nonempty"),
    );

    // Rebuild quantum views over the trained weights so we can inspect
    // each actor's register.
    let n_actions = config.env.n_clouds * config.env.packet_amounts.len();
    let mut views: Vec<QuantumActor> = (0..config.env.n_edges)
        .map(|n| {
            QuantumActor::new(
                config.train.n_qubits,
                config.env.obs_dim(),
                n_actions,
                config.train.actor_params,
                config.train.seed.wrapping_add(1000 + n as u64),
            )
        })
        .collect::<Result<_, _>>()?;
    for (view, actor) in views.iter_mut().zip(trainer.actors()) {
        view.set_params(&actor.params())?;
    }
    let actors: Vec<Box<dyn Actor>> = views
        .iter()
        .map(|q| Box::new(q.clone()) as Box<dyn Actor>)
        .collect();

    let mut env = SingleHopEnv::new(config.env.clone(), 99)?;
    let frames = run_demonstration(&mut env, &actors, &views, 0, 12, 17, false)?;

    println!("queue trajectories (Fig. 4 top):\n");
    println!("{}", render_queue_chart(&frames));
    println!("first edge agent's 4×4 qubit-state heatmaps (Fig. 4 bottom):\n");
    for f in frames.iter().step_by(3) {
        println!("{}", render_heatmap_ansi(f));
    }
    Ok(())
}
