//! Multi-seed sweep with checkpoint-resume: the experiment harness end
//! to end.
//!
//! Declares a scenario × backend × seed grid as an `ExperimentSpec`,
//! runs it over the worker pool, interrupts one cell on purpose, resumes
//! it bit-identically, and prints the Welford-aggregated summary.
//!
//! ```text
//! cargo run --release --example multi_seed_sweep
//! ```

use qmarl::harness::prelude::*;

fn main() -> Result<(), HarnessError> {
    // A small grid: the paper scenario and the bursty variant, three
    // seeds each, checkpointing every 2 epochs.
    let spec: ExperimentSpec = "name=example;scenarios=single-hop,single-hop-bursty;seeds=0..3;\
         epochs=6;limit=20;episodes=2;lanes=2;checkpoint=2"
        .parse()?;
    let ckpt_dir = std::env::temp_dir().join("qmarl_example_sweep_ckpt");
    std::fs::remove_dir_all(&ckpt_dir).ok();

    println!(
        "sweep {}: {} cells over the worker pool\n",
        spec.name,
        spec.expand().len()
    );
    let result = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint_dir: Some(ckpt_dir.clone()),
            ..SweepOptions::default()
        },
    )?;

    println!(
        "{:<48} {:>10} {:>8} {:>9}",
        "group", "reward", "±ci95", "wall(s)"
    );
    for g in &result.groups {
        println!(
            "{:<48} {:>10.2} {:>8.2} {:>9.2}",
            g.group.label(),
            g.reward.mean,
            g.reward.ci95,
            g.wall_secs.mean
        );
    }

    // Kill-and-resume demonstration: rerun one cell from scratch in a
    // fresh directory, interrupt it mid-run, resume, and compare to the
    // sweep's uninterrupted result.
    let cell = spec.expand().remove(0);
    let kill_dir = std::env::temp_dir().join("qmarl_example_sweep_kill");
    std::fs::remove_dir_all(&kill_dir).ok();
    let partial = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(kill_dir.clone()),
            stop_after: Some(3),
            panic_after: None,
        },
    )?;
    println!(
        "\ninterrupted {} after {} epochs (checkpoint at epoch 2)",
        cell.label(),
        partial.history.len()
    );
    let resumed = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(kill_dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )?;
    let reference = &result.cells[0];
    assert_eq!(
        resumed.history, reference.history,
        "resume must be bit-identical"
    );
    assert_eq!(resumed.snapshot, reference.snapshot);
    println!(
        "resumed from epoch {:?} -> {} epochs; history and final params are \
         bit-identical to the uninterrupted run",
        resumed.resumed_at,
        resumed.history.len()
    );

    std::fs::remove_dir_all(&ckpt_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
    Ok(())
}
