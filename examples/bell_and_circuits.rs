//! Tour of the quantum substrate: from raw gates to a differentiable VQC.
//!
//! ```text
//! cargo run --release --example bell_and_circuits
//! ```
//!
//! Walks the layers a QMARL model is made of: (1) statevector simulation
//! and entanglement, (2) the Fig. 1 encoder/ansatz circuit IR, (3) exact
//! gradients through the circuit, (4) NISQ noise on the density-matrix
//! backend.

use qmarl::qsim::prelude::*;
use qmarl::vqc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Raw simulation: a Bell pair ────────────────────────────────
    let mut bell = StateVector::zero(2);
    bell.apply_gate1(0, &Gate1::hadamard())?;
    bell.apply_cnot(0, 1)?;
    println!("Bell state amplitudes:\n{bell}");
    let zz = PauliString::from_factors([(0, Pauli::Z), (1, Pauli::Z)]);
    println!(
        "⟨Z₀Z₁⟩ = {:+.3} (perfectly correlated)",
        expectation(&bell, &zz)?
    );
    let b = bloch_vector(&bell, 0)?;
    println!(
        "qubit 0 Bloch vector length = {:.3} (0 ⇒ maximally entangled)\n",
        b.length()
    );

    // ── 2. The paper's circuit shapes ─────────────────────────────────
    let mut circuit = layered_angle_encoder(4, 16)?; // the critic's state encoder
    circuit.append_shifted(&layered_ansatz(4, 8)?)?;
    println!(
        "critic-style circuit ({}):",
        qmarl::vqc::diagram::summary(&circuit)
    );
    println!("{}", qmarl::vqc::diagram::render(&circuit));

    // ── 3. Exact gradients, three ways ────────────────────────────────
    // Actor-shaped model: 4 observation features, one encoder layer.
    let model = VqcBuilder::new(4)
        .encoder_inputs(4)
        .ansatz_params(8)
        .readout(Readout::z_all(4))
        .build()?;
    let params = model.init_params(42);
    let state = vec![0.15, 0.45, 0.7, 0.9];
    let (_, ps) = model.forward_with_jacobian(&state, &params, GradMethod::ParameterShift)?;
    let (_, adj) = model.forward_with_jacobian(&state, &params, GradMethod::Adjoint)?;
    let (z, fd) = model.forward_with_jacobian(&state, &params, GradMethod::FiniteDiff)?;
    println!(
        "⟨Z⟩ readouts = [{:+.3}, {:+.3}, {:+.3}, {:+.3}]",
        z[0], z[1], z[2], z[3]
    );
    println!(
        "max |parameter-shift − adjoint|      = {:.2e}",
        ps.max_abs_diff(&adj)
    );
    println!(
        "max |parameter-shift − finite diff|  = {:.2e}\n",
        ps.max_abs_diff(&fd)
    );

    // ── 4. NISQ noise ─────────────────────────────────────────────────
    for p in [0.0, 0.01, 0.05, 0.2] {
        let noise = NoiseModel::depolarizing(p, 2.0 * p)?;
        let nz = model.forward_noisy(&state, &params, &noise)?;
        println!(
            "per-gate depolarizing p = {p:<5}: ⟨Z⟩ = [{:+.3}, {:+.3}, {:+.3}, {:+.3}]",
            nz[0], nz[1], nz[2], nz[3]
        );
    }
    println!("(readouts decay toward 0 — the maximally-mixed value — as noise grows;");
    println!(" this is why the paper keeps registers small under NISQ)");
    Ok(())
}
