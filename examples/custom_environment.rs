//! Beyond Table II: customising the offloading environment.
//!
//! ```text
//! cargo run --release --example custom_environment
//! ```
//!
//! The paper evaluates one fixed scenario (K = 2, N = 4, uniform
//! arrivals). The library is parametric in all of it — this example
//! trains the quantum framework on a *harder* variant: three clouds,
//! bursty ON/OFF traffic, strict transmission (an edge can only send what
//! it holds), and tighter queues.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut config = ExperimentConfig::paper_default();
    // Three clouds → 3 × 2 = 6 actions; keep one readout wire per action
    // by widening the actor registers to 6 qubits.
    config.env.n_clouds = 3;
    config.env.cloud_departure = 0.2; // same total service (3 × 0.2 = 0.6)
    config.env.arrival = ArrivalProcess::OnOff {
        p_on: 0.25,
        p_off: 0.25,
        volume: 0.3,
    };
    config.env.strict_transmission = true;
    config.env.episode_limit = 150;
    config.train.n_qubits = 6;
    config.train.epochs = 200;
    config.train.seed = 23;
    config.validate()?;

    println!(
        "custom scenario: {} clouds, {} edges, bursty ON/OFF arrivals, strict transmission",
        config.env.n_clouds, config.env.n_edges
    );
    println!(
        "observation dim {}, state dim {}, {} actions, {}-qubit actors\n",
        config.env.obs_dim(),
        config.env.state_dim(),
        config.env.n_clouds * config.env.packet_amounts.len(),
        config.train.n_qubits
    );

    // Random-walk reference for this scenario.
    let mut env = SingleHopEnv::new(config.env.clone(), 1)?;
    let rw = random_walk_baseline(&mut env, 60, 3)?;
    println!("random walk on this scenario: {:.1}", rw.total_reward);

    let mut trainer = build_trainer(FrameworkKind::Proposed, &config)?;
    trainer.train(config.train.epochs)?;
    let h = trainer.history();
    let first = h.records()[..20]
        .iter()
        .map(|r| r.metrics.total_reward)
        .sum::<f64>()
        / 20.0;
    let last = h.final_reward(20).expect("nonempty");
    println!(
        "Proposed after {} epochs: {:.1} → {:.1} (achievability {:.0}%)",
        config.train.epochs,
        first,
        last,
        100.0 * achievability(last, rw.total_reward)
    );
    println!("\nthe same five crates handle arbitrary K/N, arrival laws, and register widths —");
    println!("nothing in the QMARL stack is hard-wired to the paper's Table II scenario.");
    Ok(())
}
