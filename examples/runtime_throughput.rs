//! Runtime throughput demo: circuits/sec, serial vs batched.
//!
//! Runs the paper's 4-qubit, 3-layer actor circuit through (a) the serial
//! IR interpreter (`vqc::exec::run`), (b) the compiled schedule on one
//! worker, and (c) the compiled schedule on the full batch executor, at
//! several batch sizes — the `framework_comparison`-style table for the
//! execution engine itself.
//!
//! ```text
//! cargo run --release --example runtime_throughput
//! ```

use std::time::Instant;

use qmarl::runtime::prelude::*;
use qmarl::vqc::prelude::*;

/// 4 qubits, 4 encoder angles, 3 variational layers of 4 rotations each.
fn three_layer_circuit() -> Circuit {
    let mut c = layered_angle_encoder(4, 4).expect("encoder");
    c.append_shifted(&layered_ansatz(4, 12).expect("3-layer ansatz"))
        .expect("append");
    c
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warmup, then the mean of `reps` timed repetitions.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let circuit = three_layer_circuit();
    let compiled = compile(&circuit);
    let params = init_params(circuit.param_count(), 42);
    let serial_ex = BatchExecutor::serial();
    let batch_ex = BatchExecutor::default();

    println!("runtime_throughput: 4-qubit / 3-layer ansatz");
    println!(
        "raw gates {}  fused gates {}  workers {}",
        compiled.raw_schedule().len(),
        compiled.fused_schedule().len(),
        batch_ex.workers(),
    );
    println!();
    println!(
        "{:>6} | {:>14} {:>14} {:>14} | {:>8} {:>8}",
        "batch", "interp c/s", "compiled c/s", "batched c/s", "vs-serial", "vs-comp"
    );

    for batch in [1usize, 8, 32, 128, 512] {
        let inputs: Vec<Vec<f64>> = (0..batch)
            .map(|b| (0..4).map(|i| 0.02 * (b * 4 + i) as f64 - 0.4).collect())
            .collect();
        let reps = (2048 / batch).clamp(3, 64);

        let t_interp = time(reps, || {
            for item in &inputs {
                std::hint::black_box(qmarl::vqc::exec::run(&circuit, item, &params).expect("run"));
            }
        });
        let t_compiled = time(reps, || {
            std::hint::black_box(
                serial_ex
                    .run_batch(&compiled, &inputs, &params)
                    .expect("batch"),
            );
        });
        let t_batched = time(reps, || {
            std::hint::black_box(
                batch_ex
                    .run_batch(&compiled, &inputs, &params)
                    .expect("batch"),
            );
        });

        let cps = |t: f64| batch as f64 / t;
        println!(
            "{:>6} | {:>14.0} {:>14.0} {:>14.0} | {:>7.2}x {:>7.2}x",
            batch,
            cps(t_interp),
            cps(t_compiled),
            cps(t_batched),
            t_interp / t_batched,
            t_compiled / t_batched,
        );
    }

    println!();
    println!("(c/s = circuits per second; vs-serial = batched speedup over the IR");
    println!(" interpreter loop, vs-comp = over the compiled single-worker loop)");
}
