//! Quickstart: build the paper's QMARL framework (Fig. 2) and train it
//! for a handful of epochs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The full pipeline: the single-hop offloading environment (Table I/II),
//! four 50-parameter quantum actors, one 50-parameter quantum centralized
//! critic with the layered state encoding, and the CTDE trainer of
//! Algorithm 1.

use qmarl::core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Table II, with a short demo budget (the real experiment uses 1000).
    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = 30;
    config.train.seed = 7;

    println!(
        "QMARL quickstart — {} clouds, {} edge agents, {}-step episodes",
        config.env.n_clouds, config.env.n_edges, config.env.episode_limit
    );

    // The paper's Proposed framework: quantum actors + quantum critic.
    let report = parameter_report(FrameworkKind::Proposed, &config)?;
    println!(
        "built {}: {} actors × {} params, critic {} params",
        report.kind, report.n_actors, report.per_actor, report.critic
    );

    let mut trainer = build_trainer(FrameworkKind::Proposed, &config)?;
    for epoch in 0..config.train.epochs {
        let rec = trainer.run_epoch()?;
        if epoch % 5 == 0 || epoch + 1 == config.train.epochs {
            println!(
                "epoch {:>3}: reward {:>8.2}, avg queue {:.3}, critic loss {:.4}",
                rec.epoch, rec.metrics.total_reward, rec.metrics.avg_queue, rec.critic_loss
            );
        }
    }

    // Deterministic (argmax) execution — the paper's decentralized
    // execution rule — for a final evaluation.
    let eval = trainer.evaluate(5)?;
    println!(
        "\ndeterministic evaluation over 5 episodes: reward {:.2}",
        eval.total_reward
    );
    println!("(training continues improving well past this demo's 30 epochs)");
    Ok(())
}
