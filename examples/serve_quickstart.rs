//! Serving quickstart: start the micro-batched inference server, send
//! requests over TCP, hot-swap the policy from a checkpoint directory
//! and verify pre-/post-swap determinism.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The pipeline: build the paper's Proposed framework actors for the
//! single-hop scenario, serve them on a loopback port, drive a few
//! scenario-distributed observations through [`ServeClient`], then drop
//! a perturbed [`FrameworkSnapshot`] into a watched directory and show
//! the server switching policies without dropping a request.

use std::time::{Duration, Instant};

use qmarl::core::prelude::*;
use qmarl::serve::prelude::*;

const SCENARIO: &str = "single-hop";
const KIND: FrameworkKind = FrameworkKind::Proposed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = TrainConfig::paper_default();
    let backend = ExecutionBackend::Ideal;

    // 1. A servable policy straight from the framework builder (a real
    //    deployment would use ServablePolicy::from_snapshot on a trained
    //    checkpoint instead).
    let actors = build_scenario_actors(KIND, SCENARIO, &backend, &train)?;
    let policy = ServablePolicy::from_actors("quickstart-v1", actors)?;
    println!(
        "policy: {} agents × obs {} → {} actions (prebound: {})",
        policy.n_agents(),
        policy.obs_dim(),
        policy.n_actions(),
        policy.is_prebound()
    );

    // 2. Serve it with a 500µs batch window and attach a hot-swap
    //    watcher to a scratch checkpoint directory.
    let handle = serve(
        policy,
        ServerConfig {
            batch: BatchConfig {
                window: Duration::from_micros(500),
                max_batch: 64,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", handle.addr());

    let ckpt_dir = std::env::temp_dir().join(format!("qmarl-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir)?;
    let watcher = spawn_watcher(
        WatchConfig {
            dir: ckpt_dir.clone(),
            poll_interval: Duration::from_millis(10),
            kind: KIND,
            scenario: SCENARIO.into(),
            backend: backend.clone(),
            train: train.clone(),
            stats: Some(handle.stats().clone()),
            faults: None,
        },
        handle.slot().clone(),
    )?;

    // 3. Scenario-distributed requests over real TCP.
    let mut stream = ObsStream::new(SCENARIO, 7)?;
    let mut client = ServeClient::connect(handle.addr())?;
    let probe: Vec<Vec<f64>> = (0..8).map(|_| stream.next_observation()).collect();
    let before: Vec<Vec<u16>> = probe
        .iter()
        .map(|obs| client.act(obs))
        .collect::<Result<_, _>>()?;
    // Serving is deterministic: repeating a request repeats the answer.
    for (obs, expected) in probe.iter().zip(&before) {
        assert_eq!(
            &client.act(obs)?,
            expected,
            "pre-swap serving must be deterministic"
        );
    }
    println!(
        "served {} requests, e.g. actions {:?}",
        2 * probe.len(),
        before[0]
    );

    // 4. Hot-swap: publish a perturbed snapshot and wait for the watcher.
    let mut actors = build_scenario_actors(KIND, SCENARIO, &backend, &train)?;
    for actor in &mut actors {
        let nudged: Vec<f64> = actor.params().iter().map(|p| p + 0.4).collect();
        actor.set_params(&nudged)?;
    }
    let snapshot = FrameworkSnapshot {
        label: "quickstart-v2".into(),
        actor_params: actors.iter().map(|a| a.params()).collect(),
        critic_params: Vec::new(),
    };
    snapshot.save(ckpt_dir.join("step-000001.ckpt"))?;
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.slot().version() < 2 {
        assert!(Instant::now() < deadline, "watcher never swapped");
        std::thread::sleep(Duration::from_millis(5));
    }
    let info = client.info()?;
    println!(
        "hot-swapped to '{}' (version {}, {} swap(s))",
        handle.slot().current().label(),
        info.policy_version,
        info.policy_swaps
    );

    // 5. Post-swap determinism: the served answers match a fresh policy
    //    rebuilt from the same snapshot, bit for bit.
    let fresh = ServablePolicy::from_snapshot(&snapshot, KIND, SCENARIO, &backend, &train)?;
    let mut changed = 0;
    for (obs, pre) in probe.iter().zip(&before) {
        let post = client.act(obs)?;
        let expected: Vec<u16> = fresh.act(obs)?.iter().map(|&a| a as u16).collect();
        assert_eq!(post, expected, "post-swap serving must match the snapshot");
        if &post != pre {
            changed += 1;
        }
    }
    println!(
        "post-swap answers verified against a fresh snapshot load ({changed}/8 decisions changed)"
    );

    // 6. Graceful drain.
    drop(client);
    watcher.stop();
    let report = handle.shutdown();
    println!(
        "drained: {} requests in {} batches, {} rejected, {} swap(s), batch p50 {:.0}µs",
        report.requests_served,
        report.batches_executed,
        report.requests_rejected,
        report.policy_swaps,
        report.batch_hist.p50_us()
    );
    assert_eq!(report.requests_rejected, 0);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}
