//! NISQ training: shots-vs-ideal learning curves on the paper scenario.
//!
//! ```text
//! cargo run --release --example nisq_training
//! ```
//!
//! The paper motivates its VQC design with NISQ constraints, but an ideal
//! statevector simulation hides the two NISQ mechanisms entirely: finite
//! shot budgets and per-gate channel noise. This example trains the same
//! quantum CTDE stack under a ladder of execution backends — exact, a
//! small and a large shot budget, and depolarizing channel noise — and
//! prints the per-epoch learning curves side by side. Everything is
//! driven by backend spec *strings*, the same spelling the scenario sweep
//! and benches use.
//!
//! Under `Sampled`/`Noisy` the trainer routes every gradient through the
//! batched parameter-shift queue with shot-sampled/noisy expectations
//! (the hardware-compatible rule); under `ideal` it keeps the adjoint
//! fast path. Runs are deterministic per backend: the derived-seed
//! contract makes shot noise a pure function of the root seed and each
//! evaluation's circuit bindings.

use qmarl::core::prelude::*;

fn main() -> Result<(), CoreError> {
    let episode_limit = 12;
    let epochs = 4;
    let seed = 7;

    let specs = [
        "ideal",
        "sampled:shots=64:seed=1",
        "sampled:shots=1024:seed=1",
        "noisy:p1=0.002:p2=0.004",
    ];

    let mut train = TrainConfig::paper_default();
    train.seed = seed;

    println!(
        "scenario: single-hop (paper default), T={episode_limit}, {epochs} epochs, seed {seed}"
    );
    println!(
        "{:<28} {:>10} total reward per epoch",
        "backend", "grad rule"
    );

    for spec in specs {
        let backend: ExecutionBackend = spec.parse()?;
        let mut trainer =
            build_scenario_trainer("single-hop", &backend, &train, Some(episode_limit))?;
        trainer.train(epochs)?;
        let curve: Vec<String> = trainer
            .history()
            .records()
            .iter()
            .map(|r| format!("{:>8.2}", r.metrics.total_reward))
            .collect();
        let rule = if backend.supports_adjoint() {
            "adjoint"
        } else {
            "param-shift"
        };
        println!("{spec:<28} {rule:>10} {}", curve.join(" "));
    }

    println!();
    println!("shot noise of magnitude O(1/sqrt(shots)) perturbs both the behaviour policy and");
    println!("the MAPG/TD gradients: the 64-shot curve wanders, the 1024-shot curve tracks the");
    println!("ideal one, and channel noise shifts every expectation the circuits produce.");
    Ok(())
}
