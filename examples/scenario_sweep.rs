//! Sweep the scenario registry with one trainer construction per entry.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! The paper evaluates one fixed scenario; the registry makes the
//! scenario a string — and `build_scenario_trainer` makes the whole
//! quantum CTDE stack a function of that string (plus an execution
//! backend, here the default `ideal`). Shapes differ per scenario (the
//! two-tier extension has 6-dimensional observations, the wide variant 8
//! agents), so actor/critic widths come from the environment, not from
//! Table II. Each entry trains a few vectorized epochs and prints the
//! before/after reward alongside the random-walk reference.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn main() -> Result<(), CoreError> {
    let episode_limit = 40;
    let epochs = 3;
    let episodes_per_epoch = 4;

    let mut config = TrainConfig::paper_default();
    config.seed = 5;
    let backend = ExecutionBackend::default();

    println!(
        "{:<20} {:>7} {:>7} {:>9} {:>11} {:>11} {:>11}",
        "scenario", "agents", "actions", "state dim", "rand walk", "eval(0)", "after train"
    );

    for spec in scenarios() {
        let params = ScenarioParams::seeded(7).with_episode_limit(episode_limit);
        let mut env = spec.build_with(&params)?;
        let rw = random_walk_baseline(&mut env, 20, 3)?;

        let mut trainer =
            build_scenario_trainer(spec.name(), &backend, &config, Some(episode_limit))?;

        let before = trainer.evaluate_vec(episodes_per_epoch, episodes_per_epoch)?;
        trainer.train_vec(epochs, episodes_per_epoch, episodes_per_epoch)?;
        let after = trainer.history().final_reward(epochs).expect("trained");

        println!(
            "{:<20} {:>7} {:>7} {:>9} {:>11.1} {:>11.1} {:>11.1}",
            spec.name(),
            trainer.env_mut().n_agents(),
            trainer.env_mut().n_actions(),
            trainer.env_mut().state_dim(),
            rw.total_reward,
            before.total_reward,
            after,
        );
    }

    println!("\nevery row ran the same CtdeTrainer::train_vec path — scenarios are data,");
    println!("not code: `build_scenario_trainer(name, backend, …)` is the only per-scenario line");
    println!("(swap the backend spec — e.g. \"sampled:shots=1024\" — to sweep under NISQ noise).");
    Ok(())
}
