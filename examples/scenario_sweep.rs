//! Sweep the scenario registry with one trainer construction per entry.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! The paper evaluates one fixed scenario; the registry makes the
//! scenario a string. This example builds the quantum CTDE stack against
//! **every** registered scenario — shapes differ per scenario (the
//! two-tier extension has 6-dimensional observations, the wide variant 8
//! agents), so actor/critic widths come from the environment, not from
//! Table II — trains a few vectorized epochs each, and prints the
//! before/after reward alongside the random-walk reference.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn main() -> Result<(), CoreError> {
    let episode_limit = 40;
    let epochs = 3;
    let episodes_per_epoch = 4;

    println!(
        "{:<20} {:>7} {:>7} {:>9} {:>11} {:>11} {:>11}",
        "scenario", "agents", "actions", "state dim", "rand walk", "eval(0)", "after train"
    );

    for spec in scenarios() {
        let params = ScenarioParams::seeded(7).with_episode_limit(episode_limit);
        let mut env = spec.build_with(&params)?;
        let rw = random_walk_baseline(&mut env, 20, 3)?;

        // One readout wire per action ⇒ the register must be at least as
        // wide as the action set; the critic folds the full state into
        // the same register width via the layered encoder.
        let n_qubits = env.n_actions().max(4);
        let actor_params = 50.max(2 * env.n_actions() + 8);
        let actors: Vec<Box<dyn Actor>> = (0..env.n_agents())
            .map(|n| {
                Ok(Box::new(QuantumActor::new(
                    n_qubits,
                    env.obs_dim(),
                    env.n_actions(),
                    actor_params,
                    11 + n as u64,
                )?) as Box<dyn Actor>)
            })
            .collect::<Result<_, CoreError>>()?;
        let critic = Box::new(QuantumCritic::new(4, env.state_dim(), 50, 99)?);

        let mut config = TrainConfig::paper_default();
        config.seed = 5;
        let mut trainer = CtdeTrainer::new(env, actors, critic, config)?;

        let before = trainer.evaluate_vec(episodes_per_epoch, episodes_per_epoch)?;
        trainer.train_vec(epochs, episodes_per_epoch, episodes_per_epoch)?;
        let after = trainer.history().final_reward(epochs).expect("trained");

        println!(
            "{:<20} {:>7} {:>7} {:>9} {:>11.1} {:>11.1} {:>11.1}",
            spec.name(),
            trainer.env_mut().n_agents(),
            trainer.env_mut().n_actions(),
            trainer.env_mut().state_dim(),
            rw.total_reward,
            before.total_reward,
            after,
        );
    }

    println!("\nevery row ran the same CtdeTrainer::train_vec path — scenarios are data,");
    println!("not code: `build_scenario(name, seed)` is the only per-scenario line.");
    Ok(())
}
