//! Head-to-head: the paper's four frameworks on the same budget clock.
//!
//! ```text
//! cargo run --release --example framework_comparison -- 150
//! ```
//!
//! Trains `Proposed` (quantum/quantum), `Comp1` (quantum/classical),
//! `Comp2` (classical ≈50 params) and `Comp3` (classical > 40 K params)
//! for the given number of epochs (default 100) and prints a compact
//! scoreboard with the achievability normalisation of Sec. IV-D.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn main() -> Result<(), CoreError> {
    let epochs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("epochs must be a number"))
        .unwrap_or(100);

    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = 11;

    // Random-walk normalisation baseline.
    let mut env = SingleHopEnv::new(config.env.clone(), 1)?;
    let rw = random_walk_baseline(&mut env, 100, 3)?;
    println!("random walk baseline: {:.1}\n", rw.total_reward);

    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14}",
        "framework", "params", "start", "final", "achievability"
    );
    for kind in FrameworkKind::TRAINABLE {
        let report = parameter_report(kind, &config)?;
        let mut trainer = build_trainer(kind, &config)?;
        trainer.train(epochs)?;
        let h = trainer.history();
        let head = h.records()[..(epochs / 10).max(1)]
            .iter()
            .map(|r| r.metrics.total_reward)
            .sum::<f64>()
            / (epochs / 10).max(1) as f64;
        let tail = h.final_reward((epochs / 10).max(1)).expect("nonempty");
        println!(
            "{:<10} {:>8} {:>12.1} {:>12.1} {:>13.1}%",
            kind.name(),
            report.per_actor * report.n_actors + report.critic,
            head,
            tail,
            100.0 * achievability(tail, rw.total_reward)
        );
    }
    println!("\npaper (1000 epochs): Proposed 90.9%, Comp1 49.8%, Comp2 33.2%, Comp3 91.5%");
    println!("run `cargo run --release -p qmarl-bench --bin fig3_training_curves` for the full experiment");
    Ok(())
}
