//! Streaming moment estimation for the sweep aggregator.
//!
//! Cells finish in work-stealing order, so per-seed metrics arrive as a
//! stream; Welford's online algorithm (Welford 1962; Chan et al. 1983
//! for the merge) accumulates mean and variance in one pass without
//! storing the samples, with far better numerical behaviour than the
//! naive sum-of-squares. Tests pin it to the two-pass reference within
//! `1e-12` and to permutation invariance of the sample order.

/// Online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

/// The z-score of a two-sided 95% normal confidence interval.
const Z_95: f64 = 1.959_963_984_540_054;

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An accumulator over the given samples.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut w = Self::new();
        for &x in xs {
            w.push(x);
        }
        w
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges two accumulators (Chan's parallel update): the result
    /// summarises the union of both sample streams.
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Welford { n, mean, m2 }
    }

    /// Samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The sample mean (`0.0` before the first sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased (n − 1) sample variance; `0.0` with fewer than two
    /// samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean, `1.96 · s / √n` (`0.0` with fewer than two samples).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            Z_95 * self.std() / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_two_pass_on_a_small_sample() {
        let xs = [3.5, -1.25, 0.0, 7.75, 2.5];
        let w = Welford::from_samples(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn degenerate_counts() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
        w.push(4.0);
        assert_eq!(w.mean(), 4.0);
        assert_eq!(w.variance(), 0.0, "one sample has no spread estimate");
        assert_eq!(w.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let all = Welford::from_samples(&xs);
        let left = Welford::from_samples(&xs[..13]);
        let right = Welford::from_samples(&xs[13..]);
        let merged = left.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-12);
        // Merging with empty is the identity.
        assert_eq!(all.merge(&Welford::new()), all);
        assert_eq!(Welford::new().merge(&all), all);
    }
}
