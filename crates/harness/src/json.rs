//! A minimal JSON value: parse, build, render.
//!
//! The workspace builds offline (the `serde` shim is a no-op), so the
//! harness carries its own small JSON layer for the two jobs that need
//! one: accepting JSON-declared [`ExperimentSpec`](crate::spec::ExperimentSpec)s
//! and emitting **stable** sweep artifacts (object keys keep insertion
//! order, so re-running a deterministic sweep reproduces its JSON byte
//! for byte). The subset is full JSON minus non-finite numbers, which
//! JSON itself cannot represent.

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order for stable rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the full input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first syntax problem and its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders compact JSON (no whitespace). Non-finite numbers cannot be
    /// represented in JSON and render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with `indent`-space nesting.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(indent), 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's f64 Display is shortest-round-trip, which is
                    // both valid JSON and deterministic.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-utf8 number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex4 = |p: &mut Self| -> Result<u32, String> {
                                let hex = p
                                    .bytes
                                    .get(p.pos + 1..p.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                p.pos += 4;
                                Ok(code)
                            };
                            let code = hex4(self)?;
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: JSON encodes non-BMP
                                // characters as a \uD8xx\uDCxx pair.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err("unpaired high surrogate in \\u escape".into());
                                }
                                self.pos += 2;
                                let low = hex4(self)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".into());
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string content".to_string())?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_roundtrip() {
        let text = r#"{"name":"sweep","seeds":[1,2,3],"nested":{"ok":true,"x":null},"f":-1.5e-3,"s":"a\"b\\c\nd"}"#;
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("sweep"));
        assert_eq!(
            v.get("seeds").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("seeds").unwrap().as_arr().unwrap()[2].as_u64(),
            Some(3)
        );
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(-1.5e-3));
        // Render → parse is the identity.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty(2)).unwrap(), v);
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Num(2.0)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café ≠ cafè""#).unwrap();
        assert_eq!(v.as_str(), Some("café ≠ cafè"));
        let s = Json::Str("tab\there".into()).render();
        assert_eq!(s, r#""tab\there""#);
        // BMP \u escapes and surrogate pairs (how standard serializers
        // escape non-BMP characters, e.g. Python's ensure_ascii).
        assert_eq!(
            Json::parse(r#""\u00e9 \ud83d\ude00""#).unwrap().as_str(),
            Some("é 😀")
        );
        for bad in [
            r#""\ud83d""#,  // unpaired high surrogate
            r#""\ud83dA""#, // high surrogate + non-surrogate
            r#""\udc00""#,  // lone low surrogate
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }
}
