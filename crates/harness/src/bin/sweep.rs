//! The sweep CLI: run a declarative experiment grid from the shell.
//!
//! ```text
//! cargo run --release -p qmarl-harness --bin sweep -- \
//!     --spec "name=demo;scenarios=single-hop;seeds=0..3;epochs=100;checkpoint=20" \
//!     --out results/sweeps --checkpoints results/sweeps/demo-ckpt
//! ```
//!
//! `--spec` accepts the compact syntax or (when the value starts with
//! `{`) a JSON object; `--spec-file` reads either form from a file.
//! Re-running after an interruption resumes every cell from its last
//! checkpoint and completes only the missing epochs.

use std::path::PathBuf;
use std::process::ExitCode;

use qmarl_harness::prelude::*;

struct Cli {
    spec: Option<String>,
    spec_file: Option<String>,
    out: PathBuf,
    checkpoints: Option<PathBuf>,
    workers: usize,
    faults: Option<FaultPlan>,
    cell_retries: Option<u32>,
}

fn usage() -> &'static str {
    "usage: sweep --spec <spec-or-json> | --spec-file <path> \
     [--out <dir>] [--checkpoints <dir>] [--workers <n>] \
     [--faults <plan>] [--cell-retries <n>]\n\
     --faults takes a seeded fault plan, e.g. faults:kill=0.05:seed=9; \
     --cell-retries overrides the per-cell retry budget (default 6)"
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        spec: None,
        spec_file: None,
        out: PathBuf::from("results/sweeps"),
        checkpoints: None,
        workers: 0,
        faults: None,
        cell_retries: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        match flag.as_str() {
            "--spec" => cli.spec = Some(value("--spec")?),
            "--spec-file" => cli.spec_file = Some(value("--spec-file")?),
            "--out" => cli.out = PathBuf::from(value("--out")?),
            "--checkpoints" => cli.checkpoints = Some(PathBuf::from(value("--checkpoints")?)),
            "--workers" => {
                cli.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_string())?;
            }
            "--faults" => {
                cli.faults = Some(
                    value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--cell-retries" => {
                cli.cell_retries = Some(
                    value("--cell-retries")?
                        .parse()
                        .map_err(|_| "--cell-retries expects a number".to_string())?,
                );
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(cli)
}

fn load_spec(cli: &Cli) -> Result<ExperimentSpec, String> {
    let text = match (&cli.spec, &cli.spec_file) {
        (Some(s), None) => s.clone(),
        (None, Some(path)) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?
        }
        _ => {
            return Err(format!(
                "exactly one of --spec/--spec-file is required\n{}",
                usage()
            ))
        }
    };
    let text = text.trim();
    if text.starts_with('{') {
        ExperimentSpec::from_json(text).map_err(|e| e.to_string())
    } else {
        text.parse().map_err(|e: HarnessError| e.to_string())
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match load_spec(&cli) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cells = spec.expand();
    println!(
        "== sweep {}: {} cells ({} scenarios x {} frameworks x {} backends x {} engines x {} seeds), {} epochs each ==",
        spec.name,
        cells.len(),
        spec.scenarios.len(),
        spec.frameworks.len(),
        spec.backends.len(),
        spec.engines.len(),
        spec.seeds.len(),
        spec.epochs,
    );
    if let Some(plan) = &cli.faults {
        println!("fault injection: {plan}");
    }
    let mut retry = RetryPolicy::default();
    if let Some(n) = cli.cell_retries {
        retry.max_retries = n;
    }
    let opts = SweepOptions {
        workers: cli.workers,
        checkpoint_dir: cli.checkpoints.clone(),
        faults: cli.faults,
        retry,
    };
    let result = match run_sweep(&spec, &opts) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for cell in &result.cells {
        let resumed = cell
            .resumed_at
            .map_or(String::new(), |e| format!(" (resumed at epoch {e})"));
        println!(
            "  {:<60} reward {:>8.2}  {:>6.1}s{resumed}",
            cell.id.label(),
            cell.history.final_reward(spec.tail()).unwrap_or(f64::NAN),
            cell.wall_secs,
        );
    }
    for q in &result.quarantined {
        println!(
            "  {:<60} QUARANTINED after {} attempt(s): {}",
            q.id.label(),
            q.attempts,
            q.error,
        );
    }
    if result.faults.is_some() {
        println!(
            "chaos: {} kill(s) injected, {} retry attempt(s), {} cell(s) quarantined",
            result.kills_injected,
            result.cell_retries,
            result.quarantined.len(),
        );
    }
    println!(
        "\n{:<52} {:>10} {:>8} {:>10}",
        "group", "reward", "±ci95", "queue"
    );
    for g in &result.groups {
        println!(
            "{:<52} {:>10.2} {:>8.2} {:>10.3}",
            g.group.label(),
            g.reward.mean,
            g.reward.ci95,
            g.queue.mean,
        );
    }
    match result.write_artifacts(&spec, &cli.out) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("artifact write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("total wall time: {:.1}s", result.wall_secs);
    ExitCode::SUCCESS
}
