//! Declarative experiment grids.
//!
//! An [`ExperimentSpec`] names everything a sweep needs: the **grid
//! axes** — scenario × framework × execution backend × update engine ×
//! seed — and the per-cell training shape (epochs, episodes per epoch,
//! lanes, rollout mode, checkpoint cadence). Like scenarios and
//! backends it is string-constructible, and additionally
//! JSON-constructible:
//!
//! ```
//! use qmarl_harness::spec::ExperimentSpec;
//!
//! let spec: ExperimentSpec =
//!     "name=demo;scenarios=single-hop,two-tier;backends=ideal,sampled:shots=64;\
//!      seeds=0..3;epochs=10;episodes=2;lanes=2;checkpoint=5"
//!         .parse()?;
//! assert_eq!(spec.expand().len(), 2 * 2 * 3);
//!
//! let same = ExperimentSpec::from_json(
//!     r#"{"name":"demo","scenarios":["single-hop","two-tier"],
//!         "backends":["ideal","sampled:shots=64"],"seeds":"0..3",
//!         "epochs":10,"episodes":2,"lanes":2,"checkpoint":5}"#,
//! )?;
//! assert_eq!(same, spec);
//! # Ok::<(), qmarl_harness::error::HarnessError>(())
//! ```

use std::str::FromStr;

use qmarl_core::config::TrainConfig;
use qmarl_core::framework::FrameworkKind;
use qmarl_core::trainer::UpdateEngine;
use qmarl_runtime::backend::ExecutionBackend;

use crate::error::HarnessError;
use crate::json::Json;

/// How a cell collects its training episodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RolloutMode {
    /// The vectorized lockstep collector
    /// ([`CtdeTrainer::run_epoch_vec`](qmarl_core::trainer::CtdeTrainer::run_epoch_vec)):
    /// episode randomness derives from `(seed, round)`, which is what
    /// makes checkpoint-resume bit-identical. The default.
    #[default]
    Vec,
    /// The serial single-episode collector
    /// ([`CtdeTrainer::run_epoch`](qmarl_core::trainer::CtdeTrainer::run_epoch)) —
    /// the figure binaries' historical semantics. Serial episode streams
    /// thread live environment state from epoch to epoch, which a
    /// checkpoint cannot carry, so serial cells refuse checkpointing.
    Serial,
}

impl RolloutMode {
    /// The spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            RolloutMode::Vec => "vec",
            RolloutMode::Serial => "serial",
        }
    }
}

/// One grid cell: a single training run's coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellId {
    /// Scenario registry name.
    pub scenario: String,
    /// Which of the paper's frameworks to train.
    pub framework: FrameworkKind,
    /// Circuit execution backend.
    pub backend: ExecutionBackend,
    /// Update-sweep engine.
    pub engine: UpdateEngine,
    /// The cell's master seed (`TrainConfig::seed`).
    pub seed: u64,
}

impl CellId {
    /// Human-readable coordinates, `scenario/framework/backend/engine/s<seed>`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/s{}",
            self.scenario,
            self.framework,
            self.backend,
            engine_name(self.engine),
            self.seed
        )
    }

    /// Filesystem-safe label (checkpoint and artifact file stems).
    pub fn slug(&self) -> String {
        self.label()
            .chars()
            .map(|c| match c {
                '/' | ':' | '=' | '.' => '-',
                c => c,
            })
            .collect()
    }

    /// The cell's aggregation group: every coordinate except the seed.
    pub fn group(&self) -> GroupId {
        GroupId {
            scenario: self.scenario.clone(),
            framework: self.framework,
            backend: self.backend.clone(),
            engine: self.engine,
        }
    }
}

/// A seed-aggregation group: grid coordinates minus the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupId {
    /// Scenario registry name.
    pub scenario: String,
    /// Framework.
    pub framework: FrameworkKind,
    /// Execution backend.
    pub backend: ExecutionBackend,
    /// Update engine.
    pub engine: UpdateEngine,
}

impl GroupId {
    /// Human-readable coordinates.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.scenario,
            self.framework,
            self.backend,
            engine_name(self.engine)
        )
    }

    /// Filesystem-safe label.
    pub fn slug(&self) -> String {
        self.label()
            .chars()
            .map(|c| match c {
                '/' | ':' | '=' | '.' => '-',
                c => c,
            })
            .collect()
    }
}

/// The "converged" tail over which final metrics are averaged — the
/// last tenth of training, at least one epoch. One definition shared by
/// the sweep aggregator, the CLI and the figure binaries, so their
/// notions of convergence can never drift apart.
pub fn tail_epochs(epochs: usize) -> usize {
    (epochs / 10).max(1)
}

/// The spec spelling of an engine.
pub(crate) fn engine_name(engine: UpdateEngine) -> &'static str {
    match engine {
        UpdateEngine::Serial => "serial",
        UpdateEngine::Batched => "batched",
    }
}

/// A declarative multi-seed experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Sweep name (artifact file stem).
    pub name: String,
    /// Scenario registry names (grid axis).
    pub scenarios: Vec<String>,
    /// Frameworks (grid axis; default `[Proposed]`).
    pub frameworks: Vec<FrameworkKind>,
    /// Execution backends (grid axis; default `[Ideal]`).
    pub backends: Vec<ExecutionBackend>,
    /// Update engines (grid axis; default `[Batched]`).
    pub engines: Vec<UpdateEngine>,
    /// Seeds (grid axis).
    pub seeds: Vec<u64>,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Episodes collected per epoch (default 1).
    pub episodes_per_epoch: usize,
    /// Vector-environment lanes for [`RolloutMode::Vec`] (default:
    /// `episodes_per_epoch`).
    pub lanes: usize,
    /// Episode collection mode (default [`RolloutMode::Vec`]).
    pub mode: RolloutMode,
    /// Checkpoint every this many epochs; `0` disables checkpointing.
    pub checkpoint_every: usize,
    /// Overrides each scenario's native episode length.
    pub episode_limit: Option<usize>,
    /// Base training configuration; each cell gets a copy with `seed` set
    /// to the cell seed and `epochs` set to the spec's epoch budget.
    pub train: TrainConfig,
}

impl ExperimentSpec {
    /// A spec with the paper-default configuration and empty grid axes
    /// (fill in at least `scenarios`, `seeds` and `epochs`).
    pub fn named(name: &str) -> Self {
        ExperimentSpec {
            name: name.to_string(),
            scenarios: Vec::new(),
            frameworks: vec![FrameworkKind::Proposed],
            backends: vec![ExecutionBackend::Ideal],
            engines: vec![UpdateEngine::Batched],
            seeds: Vec::new(),
            epochs: 0,
            episodes_per_epoch: 1,
            lanes: 0,
            mode: RolloutMode::Vec,
            checkpoint_every: 0,
            episode_limit: None,
            train: TrainConfig::paper_default(),
        }
    }

    /// Checks the grid for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidSpec`] naming the first problem:
    /// empty axes, a zero epoch/episode budget, an unknown scenario,
    /// checkpointing on the serial collector, or a framework × backend
    /// pair with no circuits to execute (classical × stochastic).
    pub fn validate(&self) -> Result<(), HarnessError> {
        let bad = |msg: String| Err(HarnessError::InvalidSpec(msg));
        if self.name.is_empty() {
            return bad("sweep needs a name".into());
        }
        if self.scenarios.is_empty()
            || self.frameworks.is_empty()
            || self.backends.is_empty()
            || self.engines.is_empty()
            || self.seeds.is_empty()
        {
            return bad("every grid axis (scenarios/frameworks/backends/engines/seeds) needs at least one entry".into());
        }
        if self.epochs == 0 {
            return bad("epochs must be positive".into());
        }
        if self.episodes_per_epoch == 0 {
            return bad("episodes per epoch must be positive".into());
        }
        for scenario in &self.scenarios {
            if qmarl_env::scenario::find_scenario(scenario).is_none() {
                return bad(format!("unknown scenario {scenario:?}"));
            }
        }
        for backend in &self.backends {
            backend
                .validate()
                .map_err(|e| HarnessError::InvalidSpec(e.to_string()))?;
            for &framework in &self.frameworks {
                let quantum = matches!(framework, FrameworkKind::Proposed | FrameworkKind::Comp1);
                if !quantum && !backend.is_ideal() {
                    return bad(format!(
                        "cell {framework} × {backend} has no quantum circuits to execute; \
                         classical frameworks sweep only under ideal"
                    ));
                }
                if framework == FrameworkKind::RandomWalk {
                    return bad("RandomWalk is not trainable and cannot be swept".into());
                }
            }
        }
        if self.checkpoint_every > 0 && self.mode == RolloutMode::Serial {
            return bad(
                "checkpointing requires mode=vec: serial episode streams thread live \
                 environment state between epochs, so a resumed serial cell would \
                 silently diverge from the uninterrupted run"
                    .into(),
            );
        }
        if self.mode == RolloutMode::Serial && (self.episodes_per_epoch != 1 || self.lanes != 0) {
            return bad(
                "episodes/lanes require mode=vec: the serial collector always rolls \
                 exactly one episode per epoch, so accepting a larger budget would \
                 silently run a different experiment than the spec declares"
                    .into(),
            );
        }
        let mut dedup = self.seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != self.seeds.len() {
            return bad("duplicate seeds would silently double-count in the aggregate".into());
        }
        let mut train = self.train.clone();
        train.epochs = self.epochs;
        train.validate()?;
        Ok(())
    }

    /// The effective lane count ([`ExperimentSpec::lanes`], defaulting to
    /// `episodes_per_epoch` when unset).
    pub fn effective_lanes(&self) -> usize {
        if self.lanes == 0 {
            self.episodes_per_epoch
        } else {
            self.lanes
        }
    }

    /// The convergence-tail length of this spec's cells:
    /// [`tail_epochs`]`(self.epochs)`.
    pub fn tail(&self) -> usize {
        tail_epochs(self.epochs)
    }

    /// Expands the grid into cells, in the deterministic nesting order
    /// scenario → framework → backend → engine → seed (seeds keep the
    /// spec's order, so per-seed outputs line up with the declaration).
    pub fn expand(&self) -> Vec<CellId> {
        let mut cells = Vec::new();
        for scenario in &self.scenarios {
            for &framework in &self.frameworks {
                for backend in &self.backends {
                    for &engine in &self.engines {
                        for &seed in &self.seeds {
                            cells.push(CellId {
                                scenario: scenario.clone(),
                                framework,
                                backend: backend.clone(),
                                engine,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// The aggregation groups of the grid, in expansion order.
    pub fn groups(&self) -> Vec<GroupId> {
        let mut groups = Vec::new();
        for cell in self.expand() {
            let g = cell.group();
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        groups
    }

    /// Builds a spec from a JSON object with the same keys as the string
    /// syntax (see [`ExperimentSpec::from_str`]); list-valued axes are
    /// JSON arrays, and `seeds` also accepts the `"a..b"` range string.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidSpec`] on syntax or validation
    /// problems.
    pub fn from_json(text: &str) -> Result<Self, HarnessError> {
        let bad = |msg: String| HarnessError::InvalidSpec(msg);
        let doc = Json::parse(text).map_err(|e| bad(format!("JSON: {e}")))?;
        let Json::Obj(pairs) = &doc else {
            return Err(bad("spec JSON must be an object".into()));
        };
        let mut spec = ExperimentSpec::named("");
        let str_list = |v: &Json, key: &str| -> Result<Vec<String>, HarnessError> {
            v.as_arr()
                .map(|items| {
                    items
                        .iter()
                        .map(|i| i.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                })
                .ok_or_else(|| bad(format!("{key} must be an array of strings")))?
                .ok_or_else(|| bad(format!("{key} must be an array of strings")))
        };
        let uint = |v: &Json, key: &str| -> Result<u64, HarnessError> {
            v.as_u64()
                .ok_or_else(|| bad(format!("{key} must be a non-negative integer")))
        };
        for (key, value) in pairs {
            match key.as_str() {
                "name" => {
                    spec.name = value
                        .as_str()
                        .ok_or_else(|| bad("name must be a string".into()))?
                        .to_string();
                }
                "scenarios" => spec.scenarios = str_list(value, key)?,
                "frameworks" => {
                    spec.frameworks = str_list(value, key)?
                        .iter()
                        .map(|s| {
                            s.parse()
                                .map_err(|e: qmarl_core::error::CoreError| bad(e.to_string()))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "backends" => {
                    spec.backends = str_list(value, key)?
                        .iter()
                        .map(|s| parse_backend(s))
                        .collect::<Result<_, _>>()?;
                }
                "engines" => {
                    spec.engines = str_list(value, key)?
                        .iter()
                        .map(|s| parse_engine(s))
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => {
                    spec.seeds = match value {
                        Json::Str(s) => parse_seeds(s)?,
                        Json::Arr(items) => items
                            .iter()
                            .map(|i| uint(i, "seeds[..]"))
                            .collect::<Result<_, _>>()?,
                        _ => return Err(bad("seeds must be an array or a range string".into())),
                    };
                }
                "epochs" => spec.epochs = uint(value, key)? as usize,
                "episodes" => spec.episodes_per_epoch = uint(value, key)? as usize,
                "lanes" => spec.lanes = uint(value, key)? as usize,
                "mode" => {
                    spec.mode = parse_mode(
                        value
                            .as_str()
                            .ok_or_else(|| bad("mode must be a string".into()))?,
                    )?;
                }
                "checkpoint" => spec.checkpoint_every = uint(value, key)? as usize,
                "limit" => spec.episode_limit = Some(uint(value, key)? as usize),
                other => return Err(bad(format!("unknown spec key {other:?}"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec in the compact string syntax (round-trips through
    /// [`ExperimentSpec::from_str`] for specs with default train config).
    pub fn to_spec_string(&self) -> String {
        let mut out = format!("name={}", self.name);
        out.push_str(&format!(";scenarios={}", self.scenarios.join(",")));
        out.push_str(&format!(
            ";frameworks={}",
            self.frameworks
                .iter()
                .map(|k| k.name().to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            ";backends={}",
            self.backends
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            ";engines={}",
            self.engines
                .iter()
                .map(|&e| engine_name(e).to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            ";seeds={}",
            self.seeds
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(";epochs={}", self.epochs));
        out.push_str(&format!(";episodes={}", self.episodes_per_epoch));
        if self.lanes != 0 {
            out.push_str(&format!(";lanes={}", self.lanes));
        }
        if self.mode != RolloutMode::Vec {
            out.push_str(&format!(";mode={}", self.mode.name()));
        }
        if self.checkpoint_every != 0 {
            out.push_str(&format!(";checkpoint={}", self.checkpoint_every));
        }
        if let Some(t) = self.episode_limit {
            out.push_str(&format!(";limit={t}"));
        }
        out
    }
}

fn parse_backend(s: &str) -> Result<ExecutionBackend, HarnessError> {
    s.parse()
        .map_err(|e: qmarl_runtime::error::RuntimeError| HarnessError::InvalidSpec(e.to_string()))
}

fn parse_engine(s: &str) -> Result<UpdateEngine, HarnessError> {
    match s.to_ascii_lowercase().as_str() {
        "serial" => Ok(UpdateEngine::Serial),
        "batched" => Ok(UpdateEngine::Batched),
        other => Err(HarnessError::InvalidSpec(format!(
            "unknown engine {other:?}; expected serial or batched"
        ))),
    }
}

fn parse_mode(s: &str) -> Result<RolloutMode, HarnessError> {
    match s.to_ascii_lowercase().as_str() {
        "vec" => Ok(RolloutMode::Vec),
        "serial" => Ok(RolloutMode::Serial),
        other => Err(HarnessError::InvalidSpec(format!(
            "unknown mode {other:?}; expected vec or serial"
        ))),
    }
}

/// Parses a seed list: comma-separated entries, each a number or a
/// half-open `a..b` range (`"0..3,100"` → `[0, 1, 2, 100]`).
fn parse_seeds(s: &str) -> Result<Vec<u64>, HarnessError> {
    let bad = |msg: String| HarnessError::InvalidSpec(msg);
    let mut seeds = Vec::new();
    for entry in s.split(',') {
        let entry = entry.trim();
        if let Some((a, b)) = entry.split_once("..") {
            let lo: u64 = a
                .trim()
                .parse()
                .map_err(|_| bad(format!("malformed seed range start {a:?}")))?;
            let hi: u64 = b
                .trim()
                .parse()
                .map_err(|_| bad(format!("malformed seed range end {b:?}")))?;
            if hi <= lo {
                return Err(bad(format!("empty seed range {entry:?}")));
            }
            seeds.extend(lo..hi);
        } else {
            seeds.push(
                entry
                    .parse()
                    .map_err(|_| bad(format!("malformed seed {entry:?}")))?,
            );
        }
    }
    Ok(seeds)
}

impl FromStr for ExperimentSpec {
    type Err = HarnessError;

    /// Parses the compact `key=value;key=value` syntax. Keys:
    ///
    /// | key | value | default |
    /// |---|---|---|
    /// | `name` | sweep name | required |
    /// | `scenarios` | comma list of registry names | required |
    /// | `frameworks` | comma list of `Proposed`/`Comp1`/`Comp2`/`Comp3` | `Proposed` |
    /// | `backends` | comma list of backend specs (`ideal`, `sampled:shots=64`, `noisy:p1=0.01:p2=0.02`, `trajectory:p1=0.01:p2=0.02:samples=16`, …) | `ideal` |
    /// | `engines` | comma list of `batched`/`serial` | `batched` |
    /// | `seeds` | numbers and `a..b` half-open ranges | required |
    /// | `epochs` | training epochs per cell | required |
    /// | `episodes` | episodes per epoch | `1` |
    /// | `lanes` | vector-env lanes | `episodes` |
    /// | `mode` | `vec` / `serial` | `vec` |
    /// | `checkpoint` | checkpoint cadence in epochs, `0` = off | `0` |
    /// | `limit` | episode-length override | scenario native |
    fn from_str(text: &str) -> Result<Self, HarnessError> {
        let bad = |msg: String| HarnessError::InvalidSpec(msg);
        let mut spec = ExperimentSpec::named("");
        for field in text.split(';') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("spec field {field:?} is not key=value")))?;
            let value = value.trim();
            match key.trim() {
                "name" => spec.name = value.to_string(),
                "scenarios" => {
                    spec.scenarios = value.split(',').map(|s| s.trim().to_string()).collect();
                }
                "frameworks" => {
                    spec.frameworks = value
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .map_err(|e: qmarl_core::error::CoreError| bad(e.to_string()))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "backends" => {
                    spec.backends = value
                        .split(',')
                        .map(|s| parse_backend(s.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "engines" => {
                    spec.engines = value
                        .split(',')
                        .map(|s| parse_engine(s.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => spec.seeds = parse_seeds(value)?,
                "epochs" => {
                    spec.epochs = value
                        .parse()
                        .map_err(|_| bad(format!("malformed epochs {value:?}")))?;
                }
                "episodes" => {
                    spec.episodes_per_epoch = value
                        .parse()
                        .map_err(|_| bad(format!("malformed episodes {value:?}")))?;
                }
                "lanes" => {
                    spec.lanes = value
                        .parse()
                        .map_err(|_| bad(format!("malformed lanes {value:?}")))?;
                }
                "mode" => spec.mode = parse_mode(value)?,
                "checkpoint" => {
                    spec.checkpoint_every = value
                        .parse()
                        .map_err(|_| bad(format!("malformed checkpoint cadence {value:?}")))?;
                }
                "limit" => {
                    spec.episode_limit = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("malformed episode limit {value:?}")))?,
                    );
                }
                other => return Err(bad(format!("unknown spec key {other:?}"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ExperimentSpec {
        "name=t;scenarios=single-hop;seeds=0..2;epochs=3"
            .parse()
            .unwrap()
    }

    #[test]
    fn parses_defaults_and_full_grids() {
        let spec = demo_spec();
        assert_eq!(spec.frameworks, vec![FrameworkKind::Proposed]);
        assert_eq!(spec.backends, vec![ExecutionBackend::Ideal]);
        assert_eq!(spec.engines, vec![UpdateEngine::Batched]);
        assert_eq!(spec.seeds, vec![0, 1]);
        assert_eq!(spec.episodes_per_epoch, 1);
        assert_eq!(spec.effective_lanes(), 1);
        assert_eq!(spec.mode, RolloutMode::Vec);

        let full: ExperimentSpec =
            "name=grid;scenarios=single-hop,two-tier;frameworks=Proposed,Comp2;\
             backends=ideal;engines=batched,serial;seeds=3,10..12;epochs=2;\
             episodes=4;lanes=2;limit=9"
                .parse()
                .unwrap();
        assert_eq!(full.seeds, vec![3, 10, 11]);
        // 2 scenarios × 2 frameworks × 1 backend × 2 engines × 3 seeds.
        assert_eq!(full.expand().len(), 24);
        assert_eq!(full.groups().len(), 2 * 2 * 2);
        assert_eq!(full.episode_limit, Some(9));
        assert_eq!(full.effective_lanes(), 2);
    }

    #[test]
    fn expansion_order_is_deterministic_and_seed_major() {
        let spec: ExperimentSpec =
            "name=o;scenarios=single-hop;engines=serial,batched;seeds=5,1;epochs=1"
                .parse()
                .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 4);
        // Seeds iterate innermost, in declaration order.
        assert_eq!(cells[0].seed, 5);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[0].engine, UpdateEngine::Serial);
        assert_eq!(cells[2].engine, UpdateEngine::Batched);
    }

    #[test]
    fn json_and_string_constructions_agree() {
        let from_str: ExperimentSpec =
            "name=j;scenarios=single-hop;backends=ideal,sampled:shots=32:seed=9;\
             seeds=0..3;epochs=5;episodes=2;checkpoint=2"
                .parse()
                .unwrap();
        let from_json = ExperimentSpec::from_json(
            r#"{"name":"j","scenarios":["single-hop"],
                "backends":["ideal","sampled:shots=32:seed=9"],
                "seeds":[0,1,2],"epochs":5,"episodes":2,"checkpoint":2}"#,
        )
        .unwrap();
        assert_eq!(from_str, from_json);
        // And the rendered spec string round-trips.
        let rendered: ExperimentSpec = from_str.to_spec_string().parse().unwrap();
        assert_eq!(rendered, from_str);
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let cases = [
            "scenarios=single-hop;seeds=0;epochs=1",            // no name
            "name=x;seeds=0;epochs=1",                          // no scenario
            "name=x;scenarios=nope;seeds=0;epochs=1",           // unknown scenario
            "name=x;scenarios=single-hop;epochs=1",             // no seeds
            "name=x;scenarios=single-hop;seeds=0;epochs=0",     // zero epochs
            "name=x;scenarios=single-hop;seeds=0,0;epochs=1",   // duplicate seeds
            "name=x;scenarios=single-hop;seeds=3..3;epochs=1",  // empty range
            "name=x;scenarios=single-hop;seeds=0;epochs=1;episodes=0",
            "name=x;scenarios=single-hop;seeds=0;epochs=1;mode=serial;checkpoint=2",
            "name=x;scenarios=single-hop;seeds=0;epochs=1;mode=serial;episodes=4",
            "name=x;scenarios=single-hop;seeds=0;epochs=1;mode=serial;lanes=2",
            "name=x;scenarios=single-hop;frameworks=Comp2;backends=sampled:shots=8;seeds=0;epochs=1",
            "name=x;scenarios=single-hop;frameworks=RandomWalk;seeds=0;epochs=1",
            "name=x;scenarios=single-hop;seeds=0;epochs=1;bogus=3",
            "name=x;scenarios=single-hop;seeds=0;epochs=1;engines=warp",
        ];
        for case in cases {
            assert!(case.parse::<ExperimentSpec>().is_err(), "{case:?}");
        }
        assert!(ExperimentSpec::from_json("[1,2]").is_err());
        assert!(ExperimentSpec::from_json(r#"{"name":3}"#).is_err());
    }

    #[test]
    fn labels_and_slugs_are_path_safe() {
        let cell = CellId {
            scenario: "single-hop".into(),
            framework: FrameworkKind::Proposed,
            backend: "sampled:shots=64:seed=3".parse().unwrap(),
            engine: UpdateEngine::Batched,
            seed: 7,
        };
        assert_eq!(
            cell.label(),
            "single-hop/Proposed/sampled:shots=64:seed=3/batched/s7"
        );
        let slug = cell.slug();
        assert!(!slug.contains('/') && !slug.contains(':') && !slug.contains('='));
        assert_eq!(
            cell.group().label(),
            "single-hop/Proposed/sampled:shots=64:seed=3/batched"
        );
    }
}
