//! The harness error type.

use qmarl_core::error::CoreError;

/// Anything that can go wrong declaring or executing a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The experiment spec is malformed or inconsistent.
    InvalidSpec(String),
    /// A cell's trainer construction or training step failed.
    Core(CoreError),
    /// Filesystem trouble around checkpoints or artifacts.
    Io(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::InvalidSpec(msg) => write!(f, "invalid experiment spec: {msg}"),
            HarnessError::Core(e) => write!(f, "cell execution: {e}"),
            HarnessError::Io(msg) => write!(f, "harness I/O: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CoreError> for HarnessError {
    fn from(e: CoreError) -> Self {
        HarnessError::Core(e)
    }
}
