//! The harness error type.

use qmarl_core::error::CoreError;

/// Anything that can go wrong declaring or executing a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The experiment spec is malformed or inconsistent.
    InvalidSpec(String),
    /// A cell's trainer construction or training step failed.
    Core(CoreError),
    /// Filesystem trouble around checkpoints or artifacts.
    Io(String),
    /// Every cell of a sweep exhausted its retry budget — there are no
    /// results to aggregate, so the sweep as a whole is an error rather
    /// than an (empty) partial result.
    SweepFailed(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::InvalidSpec(msg) => write!(f, "invalid experiment spec: {msg}"),
            HarnessError::Core(e) => write!(f, "cell execution: {e}"),
            HarnessError::Io(msg) => write!(f, "harness I/O: {msg}"),
            HarnessError::SweepFailed(msg) => write!(f, "sweep failed: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CoreError> for HarnessError {
    fn from(e: CoreError) -> Self {
        HarnessError::Core(e)
    }
}

/// How one cell attempt failed — the typed outcome panic isolation and
/// the sweep retry loop trade in.
///
/// The three variants are deliberately distinguishable: an injected
/// chaos [`Killed`](CellError::Killed) is *expected* under a fault plan
/// (retry, resume, carry on), a [`Panicked`](CellError::Panicked) cell
/// is a genuine bug that must be reported loudly but must never poison
/// sibling cells, and a [`Failed`](CellError::Failed) cell returned a
/// typed error through the normal path.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// A seeded chaos kill fired after this many completed epochs.
    Killed {
        /// Epochs the cell had completed when the kill fired.
        epoch: usize,
    },
    /// The cell panicked for a reason other than an injected kill.
    Panicked {
        /// The rendered panic payload.
        message: String,
    },
    /// The cell returned an error without panicking.
    Failed(HarnessError),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Killed { epoch } => write!(f, "injected kill after epoch {epoch}"),
            CellError::Panicked { message } => write!(f, "cell panicked: {message}"),
            CellError::Failed(e) => write!(f, "{e}"),
        }
    }
}
