//! The sweep engine: a whole experiment grid over the worker pool, with
//! streaming per-group aggregation and stable artifacts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

use qmarl_chaos::{fnv1a, site, FaultPlan, InjectedKill, RetryPolicy};
use qmarl_qsim::par::{default_workers, panic_message, parallel_map};

use crate::cell::{run_cell, CellOptions, CellResult};
use crate::error::{CellError, HarnessError};
use crate::json::Json;
use crate::spec::{engine_name, CellId, ExperimentSpec, GroupId};
use crate::welford::Welford;

/// Sweep-level execution knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads for the cell pool (`0` auto-detects).
    pub workers: usize,
    /// Directory for per-cell checkpoints; required when the spec sets a
    /// checkpoint cadence. Cells with an existing checkpoint resume from
    /// it, so re-running an interrupted sweep completes only the missing
    /// work.
    pub checkpoint_dir: Option<PathBuf>,
    /// Seeded chaos injection: cells are killed (`panic_any`, caught by
    /// per-cell isolation) at fault-plan-chosen epochs and retried.
    /// Decisions key off `(cell label, attempt)` only, so they are
    /// worker-count invariant and bit-reproducible. `None` (and any
    /// all-zero-rate plan) is fully inert.
    pub faults: Option<FaultPlan>,
    /// Per-cell retry budget and backoff for failed or killed attempts.
    /// A cell that exhausts it is quarantined, not fatal: the sweep
    /// completes with deterministic partial results.
    pub retry: RetryPolicy,
}

/// Seed-aggregated statistics of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Seeds aggregated.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// 95% normal-approximation confidence half-width.
    pub ci95: f64,
}

impl Stats {
    fn of(w: &Welford) -> Stats {
        Stats {
            n: w.count(),
            mean: w.mean(),
            std: w.std(),
            ci95: w.ci95_half_width(),
        }
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::Num(self.n as f64)),
            ("mean".into(), Json::Num(self.mean)),
            ("std".into(), Json::Num(self.std)),
            ("ci95".into(), Json::Num(self.ci95)),
        ])
    }
}

/// One aggregation group's summary: seeds folded with Welford.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// The group coordinates (grid minus seed).
    pub group: GroupId,
    /// The seeds aggregated, in spec order.
    pub seeds: Vec<u64>,
    /// Final reward (mean over the last `max(epochs/10, 1)` epochs of
    /// each seed's curve, then Welford over seeds).
    pub reward: Stats,
    /// Final average queue backlog, same protocol.
    pub queue: Stats,
    /// Per-cell wall-clock seconds.
    pub wall_secs: Stats,
    /// Per-epoch across-seed mean/CI curves:
    /// `(reward mean, reward ci95, queue mean, queue ci95, critic-loss mean)`.
    pub curves: Vec<(f64, f64, f64, f64, f64)>,
}

impl GroupSummary {
    /// The group's per-epoch curve CSV (the multi-seed Fig. 3 panel
    /// shape: mean and 95% CI per metric per epoch).
    pub fn curves_csv(&self) -> String {
        let mut out = String::from(
            "epoch,reward_mean,reward_ci95,avg_queue_mean,avg_queue_ci95,critic_loss_mean\n",
        );
        for (epoch, (rm, rc, qm, qc, lm)) in self.curves.iter().enumerate() {
            out.push_str(&format!(
                "{epoch},{rm:.6},{rc:.6},{qm:.6},{qc:.6},{lm:.6}\n"
            ));
        }
        out
    }
}

/// A cell that exhausted its retry budget and was excluded from the
/// aggregates instead of failing the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedCell {
    /// The failed cell's grid coordinates.
    pub id: CellId,
    /// Attempts made (first run plus retries).
    pub attempts: u32,
    /// The last attempt's typed error.
    pub error: CellError,
}

/// A finished sweep: every surviving cell's result plus per-group
/// aggregates and the quarantine ledger.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-cell results in grid expansion order (quarantined cells are
    /// absent — see [`SweepResult::quarantined`]).
    pub cells: Vec<CellResult>,
    /// Per-group aggregates in grid group order, folded over the
    /// surviving seeds only.
    pub groups: Vec<GroupSummary>,
    /// Cells that exhausted their retry budget, in grid expansion order.
    pub quarantined: Vec<QuarantinedCell>,
    /// Total retry attempts across all cells (0 on a clean run).
    pub cell_retries: u64,
    /// Injected chaos kills absorbed by retries or quarantine.
    pub kills_injected: u64,
    /// The fault plan the sweep ran under, if any.
    pub faults: Option<FaultPlan>,
    /// Whole-sweep wall-clock seconds.
    pub wall_secs: f64,
}

impl SweepResult {
    /// The cells of one group, in seed order.
    pub fn cells_of(&self, group: &GroupId) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| &c.id.group() == group)
            .collect()
    }

    /// The sweep summary as a stable JSON document: the spec, per-group
    /// statistics, and per-cell coordinates with final rewards.
    /// Deterministic training makes everything except `wall_secs`
    /// reproducible byte for byte.
    pub fn summary_json(&self, spec: &ExperimentSpec) -> String {
        let tail = spec.tail();
        let mut groups = Vec::new();
        for g in &self.groups {
            groups.push(Json::Obj(vec![
                ("scenario".into(), Json::Str(g.group.scenario.clone())),
                (
                    "framework".into(),
                    Json::Str(g.group.framework.name().into()),
                ),
                ("backend".into(), Json::Str(g.group.backend.to_string())),
                (
                    "engine".into(),
                    Json::Str(engine_name(g.group.engine).into()),
                ),
                (
                    "seeds".into(),
                    Json::Arr(g.seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
                ("reward".into(), g.reward.json()),
                ("avg_queue".into(), g.queue.json()),
                ("wall_secs".into(), g.wall_secs.json()),
            ]));
        }
        let mut cells = Vec::new();
        for c in &self.cells {
            cells.push(Json::Obj(vec![
                ("cell".into(), Json::Str(c.id.label())),
                (
                    "final_reward".into(),
                    Json::Num(c.history.final_reward(tail).unwrap_or(f64::NAN)),
                ),
                ("epochs".into(), Json::Num(c.history.len() as f64)),
                (
                    "resumed_at".into(),
                    c.resumed_at.map_or(Json::Null, |e| Json::Num(e as f64)),
                ),
                ("wall_secs".into(), Json::Num(c.wall_secs)),
            ]));
        }
        let quarantined = self
            .quarantined
            .iter()
            .map(|q| {
                Json::Obj(vec![
                    ("cell".into(), Json::Str(q.id.label())),
                    ("attempts".into(), Json::Num(q.attempts as f64)),
                    ("error".into(), Json::Str(q.error.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(spec.name.clone())),
            ("spec".into(), Json::Str(spec.to_spec_string())),
            ("tail_epochs".into(), Json::Num(tail as f64)),
            ("groups".into(), Json::Arr(groups)),
            ("cells".into(), Json::Arr(cells)),
            ("quarantined".into(), Json::Arr(quarantined)),
        ])
        .render_pretty(2)
    }

    /// The summary with every run-dependent field (`wall_secs`,
    /// `resumed_at`) scrubbed: what's left is a pure function of the
    /// spec, the seeds and the surviving cells. A chaos run whose kills
    /// were all absorbed by checkpoint-resume + retry fingerprints
    /// **byte-identically** to a clean run — the chaos E2E suite holds
    /// this as an `assert_eq`.
    pub fn fingerprint_json(&self, spec: &ExperimentSpec) -> String {
        fn scrub(v: &mut Json) {
            match v {
                Json::Obj(pairs) => {
                    for (k, v) in pairs {
                        if k.contains("wall") || k == "resumed_at" {
                            *v = Json::Null;
                        } else {
                            scrub(v);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(scrub),
                _ => {}
            }
        }
        let mut doc = Json::parse(&self.summary_json(spec)).expect("own summary is valid JSON");
        scrub(&mut doc);
        doc.render_pretty(2)
    }

    /// The chaos report: fault plan, retry/kill totals and the
    /// quarantine ledger, as stable JSON (the CI chaos-smoke artifact).
    pub fn fault_report_json(&self, spec: &ExperimentSpec) -> String {
        let quarantined = self
            .quarantined
            .iter()
            .map(|q| {
                Json::Obj(vec![
                    ("cell".into(), Json::Str(q.id.label())),
                    ("attempts".into(), Json::Num(q.attempts as f64)),
                    ("error".into(), Json::Str(q.error.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(spec.name.clone())),
            (
                "faults".into(),
                self.faults.map_or(Json::Null, |p| Json::Str(p.to_string())),
            ),
            (
                "cells_total".into(),
                Json::Num((self.cells.len() + self.quarantined.len()) as f64),
            ),
            ("cells_ok".into(), Json::Num(self.cells.len() as f64)),
            (
                "cells_quarantined".into(),
                Json::Num(self.quarantined.len() as f64),
            ),
            ("cell_retries".into(), Json::Num(self.cell_retries as f64)),
            (
                "kills_injected".into(),
                Json::Num(self.kills_injected as f64),
            ),
            ("quarantined".into(), Json::Arr(quarantined)),
        ])
        .render_pretty(2)
    }

    /// Writes the sweep artifacts into `dir`: `<name>_summary.json` plus
    /// one `<name>_<group>_curves.csv` per group. Returns the paths.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on filesystem trouble.
    pub fn write_artifacts(
        &self,
        spec: &ExperimentSpec,
        dir: &Path,
    ) -> Result<Vec<PathBuf>, HarnessError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| HarnessError::Io(format!("create {}: {e}", dir.display())))?;
        let mut paths = Vec::new();
        let write = |path: PathBuf, content: &str| -> Result<PathBuf, HarnessError> {
            std::fs::write(&path, content)
                .map_err(|e| HarnessError::Io(format!("write {}: {e}", path.display())))?;
            Ok(path)
        };
        paths.push(write(
            dir.join(format!("{}_summary.json", spec.name)),
            &self.summary_json(spec),
        )?);
        if self.faults.is_some() || !self.quarantined.is_empty() {
            paths.push(write(
                dir.join(format!("{}_faults.json", spec.name)),
                &self.fault_report_json(spec),
            )?);
        }
        for g in &self.groups {
            paths.push(write(
                dir.join(format!("{}_{}_curves.csv", spec.name, g.group.slug())),
                &g.curves_csv(),
            )?);
        }
        Ok(paths)
    }
}

/// One cell's retry-loop outcome (private to the sweep engine).
struct CellOutcome {
    result: Result<CellResult, QuarantinedCell>,
    retries: u64,
    kills: u64,
}

/// Runs one cell under panic isolation and the sweep's retry budget.
///
/// Every attempt is wrapped in `catch_unwind`, so neither an injected
/// kill nor a genuine cell panic can poison the worker pool. Kill
/// decisions (and their epochs, and the backoff jitter) are pure
/// functions of `(fault seed, cell label, attempt)` — never of worker
/// scheduling — so a chaos sweep is bit-reproducible at any worker
/// count. When checkpointing is on, a killed attempt resumes from the
/// last checkpoint; either way the retried cell recomputes exactly what
/// an uninterrupted run would have.
fn run_cell_with_retries(
    spec: &ExperimentSpec,
    id: &CellId,
    base: &CellOptions,
    plan: Option<FaultPlan>,
    retry: &RetryPolicy,
) -> CellOutcome {
    let cell_key = fnv1a(id.label().as_bytes());
    let (mut retries, mut kills) = (0u64, 0u64);
    let mut attempt: u32 = 0;
    loop {
        let attempt_key = FaultPlan::key2(cell_key, attempt as u64);
        let kill_after = plan.and_then(|p| {
            if p.fires(p.kill, site::CELL_KILL, attempt_key) {
                // A seeded epoch in [1, epochs]: kills land anywhere in
                // the run, including right after the final checkpoint.
                let roll = p.roll(site::CELL_KILL_EPOCH, attempt_key);
                Some(((roll * spec.epochs as f64) as usize + 1).min(spec.epochs.max(1)))
            } else {
                None
            }
        });
        let cell_opts = CellOptions {
            panic_after: kill_after,
            ..base.clone()
        };
        let error = match catch_unwind(AssertUnwindSafe(|| run_cell(spec, id, &cell_opts))) {
            Ok(Ok(result)) => {
                return CellOutcome {
                    result: Ok(result),
                    retries,
                    kills,
                }
            }
            Ok(Err(e)) => CellError::Failed(e),
            Err(payload) => match payload.downcast::<InjectedKill>() {
                Ok(kill) => {
                    kills += 1;
                    CellError::Killed { epoch: kill.epoch }
                }
                Err(other) => CellError::Panicked {
                    message: panic_message(other.as_ref()),
                },
            },
        };
        if attempt >= retry.max_retries {
            return CellOutcome {
                result: Err(QuarantinedCell {
                    id: id.clone(),
                    attempts: attempt + 1,
                    error,
                }),
                retries,
                kills,
            };
        }
        let jitter = plan.map_or(0.5, |p| p.roll(site::RETRY_JITTER, attempt_key));
        std::thread::sleep(retry.delay(attempt, jitter));
        retries += 1;
        attempt += 1;
    }
}

/// Runs every cell of the grid over the work-stealing pool and folds the
/// per-seed results into group aggregates. Cell execution order is
/// whatever the pool schedules; results land in grid expansion order and
/// the aggregation is seed-order-deterministic, so the sweep output is
/// reproducible run to run (and bit-identical when resumed — see
/// [`run_cell`]).
///
/// Failures are isolated, retried with capped backoff, and finally
/// quarantined: the sweep completes with deterministic partial results
/// (groups aggregate surviving seeds only) and the quarantine ledger in
/// [`SweepResult::quarantined`] / the summary JSON.
///
/// # Errors
///
/// Validates the spec (and the fault plan), and fails outright only
/// when *every* cell was quarantined — partial failure is a result, not
/// an error.
pub fn run_sweep(spec: &ExperimentSpec, opts: &SweepOptions) -> Result<SweepResult, HarnessError> {
    spec.validate()?;
    if spec.checkpoint_every > 0 && opts.checkpoint_dir.is_none() {
        return Err(HarnessError::InvalidSpec(format!(
            "spec {} checkpoints every {} epochs but SweepOptions.checkpoint_dir is unset",
            spec.name, spec.checkpoint_every
        )));
    }
    if let Some(plan) = &opts.faults {
        plan.validate()
            .map_err(|e| HarnessError::InvalidSpec(e.to_string()))?;
        qmarl_chaos::silence_injected_kills();
    }
    // xcheck: allow(determinism) — sweep wall time is reporting metadata
    // in the summary JSON; it never feeds results, seeds, or fingerprints.
    let started = Instant::now();
    let cells = spec.expand();
    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };
    let cell_opts = CellOptions {
        checkpoint_dir: opts.checkpoint_dir.clone(),
        stop_after: None,
        panic_after: None,
    };
    let outcomes: Vec<CellOutcome> = parallel_map(&cells, workers, |_, id| {
        run_cell_with_retries(spec, id, &cell_opts, opts.faults, &opts.retry)
    });

    let mut results = Vec::new();
    let mut quarantined = Vec::new();
    let (mut cell_retries, mut kills_injected) = (0u64, 0u64);
    for outcome in outcomes {
        cell_retries += outcome.retries;
        kills_injected += outcome.kills;
        match outcome.result {
            Ok(result) => results.push(result),
            Err(q) => quarantined.push(q),
        }
    }
    if results.is_empty() && !quarantined.is_empty() {
        let first = &quarantined[0];
        return Err(HarnessError::SweepFailed(format!(
            "all {} cells quarantined; first: {} after {} attempt(s): {}",
            quarantined.len(),
            first.id.label(),
            first.attempts,
            first.error,
        )));
    }

    let tail = spec.tail();
    let mut groups = Vec::new();
    for group in spec.groups() {
        let members: Vec<&CellResult> = results.iter().filter(|c| c.id.group() == group).collect();
        let mut reward = Welford::new();
        let mut queue = Welford::new();
        let mut wall = Welford::new();
        let epochs = members.iter().map(|c| c.history.len()).min().unwrap_or(0);
        let mut curve_acc: Vec<(Welford, Welford, Welford)> =
            vec![(Welford::new(), Welford::new(), Welford::new()); epochs];
        for cell in &members {
            reward.push(cell.history.final_reward(tail).unwrap_or(0.0));
            queue.push(
                cell.history
                    .final_metric(tail, |r| r.metrics.avg_queue)
                    .unwrap_or(0.0),
            );
            wall.push(cell.wall_secs);
            for (acc, rec) in curve_acc.iter_mut().zip(cell.history.records()) {
                acc.0.push(rec.metrics.total_reward);
                acc.1.push(rec.metrics.avg_queue);
                acc.2.push(rec.critic_loss);
            }
        }
        groups.push(GroupSummary {
            group,
            // Surviving seeds only: quarantined cells drop out of the
            // aggregates (and out of this list) deterministically.
            seeds: members.iter().map(|c| c.id.seed).collect(),
            reward: Stats::of(&reward),
            queue: Stats::of(&queue),
            wall_secs: Stats::of(&wall),
            curves: curve_acc
                .iter()
                .map(|(r, q, l)| {
                    (
                        r.mean(),
                        r.ci95_half_width(),
                        q.mean(),
                        q.ci95_half_width(),
                        l.mean(),
                    )
                })
                .collect(),
        });
    }

    Ok(SweepResult {
        cells: results,
        groups,
        quarantined,
        cell_retries,
        kills_injected,
        faults: opts.faults,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        "name=sweep-test;scenarios=single-hop;engines=batched;seeds=0..3;epochs=2;limit=6"
            .parse()
            .unwrap()
    }

    #[test]
    fn sweep_runs_grid_and_aggregates() {
        let result = run_sweep(&spec(), &SweepOptions::default()).unwrap();
        assert_eq!(result.cells.len(), 3);
        assert_eq!(result.groups.len(), 1);
        let g = &result.groups[0];
        assert_eq!(g.reward.n, 3);
        assert_eq!(g.curves.len(), 2);
        assert!(g.reward.std >= 0.0);
        assert!(g.wall_secs.mean > 0.0);
        // Per-seed curves differ, so the CI is non-trivial.
        assert!(g.reward.ci95 > 0.0);
        // The aggregate mean matches the hand-computed mean of the cells.
        let hand: f64 = result
            .cells
            .iter()
            .map(|c| c.history.final_reward(1).unwrap())
            .sum::<f64>()
            / 3.0;
        assert!((g.reward.mean - hand).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let histories = |workers: usize| {
            let r = run_sweep(
                &spec(),
                &SweepOptions {
                    workers,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            r.cells
                .iter()
                .map(|c| c.history.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(histories(1), histories(3));
    }

    #[test]
    fn artifacts_are_stable_and_parse() {
        let s = spec();
        let a = run_sweep(&s, &SweepOptions::default()).unwrap();
        let b = run_sweep(&s, &SweepOptions::default()).unwrap();
        // Deterministic modulo wall-clock: scrub every wall_secs value.
        fn scrub(v: &mut Json) {
            match v {
                Json::Obj(pairs) => {
                    for (k, v) in pairs {
                        if k.contains("wall") {
                            *v = Json::Null;
                        } else {
                            scrub(v);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(scrub),
                _ => {}
            }
        }
        let strip = |text: &str| {
            let mut doc = Json::parse(text).expect("valid JSON");
            scrub(&mut doc);
            doc.render()
        };
        assert_eq!(strip(&a.summary_json(&s)), strip(&b.summary_json(&s)));
        assert_eq!(a.groups[0].curves_csv(), b.groups[0].curves_csv());
        // The summary parses back as JSON.
        let doc = Json::parse(&a.summary_json(&s)).expect("valid JSON");
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("sweep-test"));
        assert_eq!(
            doc.get("cells").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        // And the files land on disk.
        let dir = std::env::temp_dir().join("qmarl_sweep_artifacts_test");
        let paths = a.write_artifacts(&s, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.exists());
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn checkpointed_spec_requires_directory() {
        let mut s = spec();
        s.checkpoint_every = 1;
        assert!(run_sweep(&s, &SweepOptions::default()).is_err());
    }
}
