//! Executing one grid cell: build, (maybe) resume, train, checkpoint.

use std::path::{Path, PathBuf};
use std::time::Instant;

use qmarl_core::checkpoint::{FrameworkSnapshot, TrainerCheckpoint};
use qmarl_core::framework::build_kind_scenario_trainer;
use qmarl_core::trainer::TrainingHistory;

use crate::error::HarnessError;
use crate::spec::{CellId, ExperimentSpec, RolloutMode};

/// Per-cell execution knobs beyond the spec itself.
#[derive(Debug, Clone, Default)]
pub struct CellOptions {
    /// Directory for per-cell checkpoint files; required when the spec
    /// sets a checkpoint cadence. An existing checkpoint in this
    /// directory is resumed from automatically.
    pub checkpoint_dir: Option<PathBuf>,
    /// Stop (without error) once this many epochs are complete — the
    /// cooperative stand-in for a killed process in resume tests and
    /// budgeted partial sweeps. `None` runs to the spec's epoch budget.
    pub stop_after: Option<usize>,
    /// Chaos hook: `panic_any(InjectedKill)` once this many epochs are
    /// complete, *after* any checkpoint for that epoch is on disk — the
    /// uncooperative stand-in for a process killed mid-sweep. The sweep
    /// engine's panic isolation catches the typed payload and retries;
    /// see [`crate::sweep::SweepOptions::faults`].
    pub panic_after: Option<usize>,
}

/// The outcome of one cell run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's grid coordinates.
    pub id: CellId,
    /// Per-epoch training history (the full curve, including epochs
    /// replayed from a resumed checkpoint).
    pub history: TrainingHistory,
    /// The trained parameters.
    pub snapshot: FrameworkSnapshot,
    /// Wall-clock seconds this invocation spent (excludes epochs already
    /// banked in a resumed checkpoint).
    pub wall_secs: f64,
    /// `Some(epoch)` when the run resumed from a checkpoint taken after
    /// that many completed epochs.
    pub resumed_at: Option<usize>,
    /// `false` when [`CellOptions::stop_after`] interrupted the run
    /// before the spec's epoch budget.
    pub completed: bool,
}

/// The checkpoint path of a cell inside `dir`.
pub fn checkpoint_path(dir: &Path, id: &CellId) -> PathBuf {
    dir.join(format!("{}.ckpt", id.slug()))
}

/// The experiment-shape fingerprint written as a cell checkpoint's label
/// and required to match on resume. Everything that changes what an
/// uninterrupted run would compute is included — the sweep name, the
/// cell coordinates, the epoch/episode budgets, mode, episode limit and
/// the training hyper-parameters — so a checkpoint from an edited spec
/// (or another sweep sharing the directory) is rejected instead of
/// silently resumed into bit-different results. Lane count is excluded:
/// vectorized collection is lane-count-invariant by construction.
fn cell_context(spec: &ExperimentSpec, id: &CellId) -> String {
    let t = &spec.train;
    format!(
        "{}|{}|epochs={}|episodes={}|mode={}|limit={:?}|gamma={}|lr={}/{}|target={}|\
         batch={}|replay={}|qubits={}|params={}/{}|beta={}|grad={:?}",
        spec.name,
        id.label(),
        spec.epochs,
        spec.episodes_per_epoch,
        spec.mode.name(),
        spec.episode_limit,
        t.gamma,
        t.lr_actor,
        t.lr_critic,
        t.target_update_period,
        t.batch_episodes,
        t.replay_capacity,
        t.n_qubits,
        t.actor_params,
        t.critic_params,
        t.entropy_coef,
        t.grad_method,
    )
}

/// Runs one cell of `spec` to its epoch budget (or
/// [`CellOptions::stop_after`]), checkpointing every
/// `spec.checkpoint_every` epochs when a checkpoint directory is given,
/// and resuming from an existing checkpoint **bit-identically**: the
/// resumed run's history and final parameters are `assert_eq`-equal to
/// an uninterrupted run's (vectorized collection; see
/// [`TrainerCheckpoint`]).
///
/// # Errors
///
/// Validates the spec (a hand-constructed `ExperimentSpec` gets the
/// same serial-mode/checkpoint and grid checks as a parsed one), then
/// propagates construction, training and checkpoint-I/O errors, and
/// rejects a checkpoint cadence without a directory, a corrupt
/// checkpoint file, or a checkpoint written by a different experiment
/// shape.
pub fn run_cell(
    spec: &ExperimentSpec,
    id: &CellId,
    opts: &CellOptions,
) -> Result<CellResult, HarnessError> {
    // xcheck: allow(determinism) — wall_secs is reporting metadata on the
    // CellResult; it never feeds metrics, seeds, or fingerprints.
    let started = Instant::now();
    spec.validate()?;
    if spec.checkpoint_every > 0 && opts.checkpoint_dir.is_none() {
        return Err(HarnessError::InvalidSpec(format!(
            "spec {} checkpoints every {} epochs but no checkpoint directory was given",
            spec.name, spec.checkpoint_every
        )));
    }
    let mut train = spec.train.clone();
    train.seed = id.seed;
    train.epochs = spec.epochs;
    let mut trainer = build_kind_scenario_trainer(
        id.framework,
        &id.scenario,
        &id.backend,
        &train,
        spec.episode_limit,
    )?;
    trainer.set_update_engine(id.engine);

    let ckpt_path = opts
        .checkpoint_dir
        .as_deref()
        .map(|dir| checkpoint_path(dir, id));
    let context = cell_context(spec, id);
    let mut resumed_at = None;
    if let Some(path) = &ckpt_path {
        if path.exists() {
            let ckpt = TrainerCheckpoint::load(path)?;
            if ckpt.label != context {
                return Err(HarnessError::InvalidSpec(format!(
                    "checkpoint {} was written by a different experiment shape — resuming \
                     it would produce results bit-different from an uninterrupted run.\n\
                     checkpoint: {}\n  this run: {context}\n\
                     (use a fresh checkpoint directory, or restore the original spec)",
                    path.display(),
                    ckpt.label,
                )));
            }
            trainer.restore_state(&ckpt)?;
            resumed_at = Some(trainer.epochs_done());
        }
    }

    let label = id.label();
    let lanes = spec.effective_lanes();
    let mut interrupted = false;
    while trainer.epochs_done() < spec.epochs {
        if let Some(stop) = opts.stop_after {
            if trainer.epochs_done() >= stop {
                interrupted = true;
                break;
            }
        }
        match spec.mode {
            RolloutMode::Vec => {
                trainer.run_epoch_vec(spec.episodes_per_epoch, lanes)?;
            }
            RolloutMode::Serial => {
                trainer.run_epoch()?;
            }
        }
        let done = trainer.epochs_done();
        if spec.checkpoint_every > 0
            && (done.is_multiple_of(spec.checkpoint_every) || done == spec.epochs)
        {
            let path = ckpt_path.as_ref().expect("validated above");
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| HarnessError::Io(format!("create {}: {e}", dir.display())))?;
            }
            trainer.capture_state(&context).save(path)?;
        }
        if let Some(kill_at) = opts.panic_after {
            if done >= kill_at {
                std::panic::panic_any(qmarl_chaos::InjectedKill {
                    cell: label.clone(),
                    epoch: done,
                });
            }
        }
    }

    Ok(CellResult {
        id: id.clone(),
        history: trainer.history().clone(),
        snapshot: FrameworkSnapshot::capture(&label, &trainer),
        wall_secs: started.elapsed().as_secs_f64(),
        resumed_at,
        completed: !interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        "name=cell-test;scenarios=single-hop;seeds=3;epochs=2;limit=6"
            .parse()
            .unwrap()
    }

    #[test]
    fn cell_runs_and_reports() {
        let spec = tiny_spec();
        let cells = spec.expand();
        assert_eq!(cells.len(), 1);
        let r = run_cell(&spec, &cells[0], &CellOptions::default()).unwrap();
        assert_eq!(r.history.len(), 2);
        assert!(r.completed);
        assert!(r.resumed_at.is_none());
        assert!(r.wall_secs > 0.0);
        assert_eq!(r.snapshot.actor_params.len(), 4);
        // Deterministic: a rerun reproduces the history bit for bit.
        let again = run_cell(&spec, &cells[0], &CellOptions::default()).unwrap();
        assert_eq!(again.history, r.history);
        assert_eq!(again.snapshot, r.snapshot);
    }

    #[test]
    fn checkpoint_cadence_without_directory_is_rejected() {
        let mut spec = tiny_spec();
        spec.checkpoint_every = 1;
        let cell = spec.expand().remove(0);
        assert!(run_cell(&spec, &cell, &CellOptions::default()).is_err());
    }

    #[test]
    fn stop_after_interrupts_without_error() {
        let spec = tiny_spec();
        let cell = spec.expand().remove(0);
        let r = run_cell(
            &spec,
            &cell,
            &CellOptions {
                stop_after: Some(1),
                ..CellOptions::default()
            },
        )
        .unwrap();
        assert!(!r.completed);
        assert_eq!(r.history.len(), 1);
    }
}
