//! # qmarl-harness — declarative experiment orchestration
//!
//! The paper's results are averages over repeated seeded runs; this
//! crate is the engine that produces them at scale. An
//! [`spec::ExperimentSpec`] — string- or JSON-constructible, like
//! scenarios and backends — names a grid of **cells**
//! (scenario × framework × execution backend × update engine × seed),
//! and [`sweep::run_sweep`] executes the cells in parallel over the
//! runtime's work-stealing pool, each cell training with the vectorized
//! CTDE trainer and (optionally) writing periodic full-state checkpoints
//! so an interrupted sweep **resumes bit-identically** to an
//! uninterrupted one. Streaming [`welford::Welford`] aggregation folds
//! per-seed metrics into mean/CI summaries and emits stable JSON/CSV
//! artifacts.
//!
//! Cell failures are contained, not fatal: every attempt runs under
//! panic isolation, failed or chaos-killed cells are retried with
//! capped backoff, and cells that exhaust the budget are quarantined so
//! the sweep still completes with deterministic partial results. A
//! seeded [`qmarl_chaos::FaultPlan`] (`SweepOptions::faults`) turns
//! this machinery into a self-test: kills injected at plan-chosen
//! epochs compose with checkpoint-resume + retry to reproduce a clean
//! run's summary byte for byte.
//!
//! ```no_run
//! use qmarl_harness::prelude::*;
//!
//! let spec: ExperimentSpec =
//!     "name=demo;scenarios=single-hop;seeds=0..3;epochs=50;checkpoint=10".parse()?;
//! let result = run_sweep(
//!     &spec,
//!     &SweepOptions {
//!         checkpoint_dir: Some("results/sweeps/demo/ckpt".into()),
//!         ..SweepOptions::default()
//!     },
//! )?;
//! result.write_artifacts(&spec, "results/sweeps/demo".as_ref())?;
//! # Ok::<(), qmarl_harness::error::HarnessError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod error;
pub mod json;
pub mod pool;
pub mod spec;
pub mod sweep;
pub mod welford;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::cell::{run_cell, CellOptions, CellResult};
    pub use crate::error::{CellError, HarnessError};
    pub use crate::json::Json;
    pub use crate::pool::{run_tasks, run_tasks_isolated, try_run_tasks, Timed};
    pub use crate::spec::{tail_epochs, CellId, ExperimentSpec, GroupId, RolloutMode};
    pub use crate::sweep::{
        run_sweep, GroupSummary, QuarantinedCell, Stats, SweepOptions, SweepResult,
    };
    pub use crate::welford::Welford;
    pub use qmarl_chaos::{silence_injected_kills, FaultPlan, RetryPolicy};
}
