//! Generic timed fan-out over the runtime's work-stealing pool.
//!
//! [`run_tasks`] is the harness's escape hatch for experiment arms that
//! are not `CtdeTrainer` cells (supervised regressions, scaling probes,
//! the independent-learner ablation): the same shared work queue as the
//! sweep engine (`qsim::par`), the same input-order results, plus
//! per-task wall-clock.

use std::time::Instant;

use qmarl_qsim::par::{default_workers, parallel_map, parallel_map_isolated};

/// One task's result with its wall-clock cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Timed<R> {
    /// The task's return value.
    pub value: R,
    /// Wall-clock seconds the task took on its worker.
    pub wall_secs: f64,
}

/// Runs `f(index, &items[index])` for every item over the shared work
/// queue (`workers == 0` auto-detects), returning timed results **in
/// input order** — output is positionally identical to a serial loop no
/// matter how tasks were scheduled.
pub fn run_tasks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<Timed<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    parallel_map(items, workers, |i, item| {
        // xcheck: allow(determinism) — per-task wall time is reporting
        // metadata on Timed; it never feeds results, seeds, or fingerprints.
        let t0 = Instant::now();
        let value = f(i, item);
        Timed {
            value,
            wall_secs: t0.elapsed().as_secs_f64(),
        }
    })
}

/// [`run_tasks`] for fallible tasks: every task runs, then the
/// lowest-indexed error (if any) is returned.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task.
pub fn try_run_tasks<T, R, E, F>(items: &[T], workers: usize, f: F) -> Result<Vec<Timed<R>>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    run_tasks(items, workers, f)
        .into_iter()
        .map(|t| {
            t.value.map(|value| Timed {
                value,
                wall_secs: t.wall_secs,
            })
        })
        .collect()
}

/// [`run_tasks`] with per-task panic isolation: a panicking task yields
/// `Err(payload)` at its own index and *never poisons its siblings* —
/// every other task still runs to completion on the shared pool. The
/// payload is the raw unwind box so callers can downcast typed panics
/// (the sweep engine downcasts [`qmarl_chaos::InjectedKill`]); render
/// anything else with [`qmarl_qsim::par::panic_message`].
pub fn run_tasks_isolated<T, R, F>(
    items: &[T],
    workers: usize,
    f: F,
) -> Vec<Result<Timed<R>, Box<dyn std::any::Any + Send>>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    parallel_map_isolated(items, workers, |i, item| {
        // xcheck: allow(determinism) — per-task wall time is reporting
        // metadata on Timed; it never feeds results, seeds, or fingerprints.
        let t0 = Instant::now();
        let value = f(i, item);
        Timed {
            value,
            wall_secs: t0.elapsed().as_secs_f64(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_times() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [0, 1, 4] {
            let out = run_tasks(&items, workers, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(
                out.iter().map(|t| t.value).collect::<Vec<_>>(),
                items.iter().map(|x| x * 3).collect::<Vec<_>>()
            );
            assert!(out.iter().all(|t| t.wall_secs >= 0.0));
        }
    }

    #[test]
    fn try_variant_surfaces_first_error() {
        let items: Vec<u32> = (0..20).collect();
        let res: Result<Vec<Timed<u32>>, u32> =
            try_run_tasks(
                &items,
                4,
                |_, &x| if x == 7 || x == 13 { Err(x) } else { Ok(x) },
            );
        assert_eq!(res.unwrap_err(), 7);
        let ok: Result<Vec<Timed<u32>>, u32> = try_run_tasks(&items, 4, |_, &x| Ok(x));
        assert_eq!(ok.unwrap().len(), 20);
    }

    #[test]
    fn isolated_tasks_survive_typed_panics_from_siblings() {
        qmarl_chaos::silence_injected_kills();
        let items: Vec<u64> = (0..16).collect();
        for workers in [1, 4] {
            let out = run_tasks_isolated(&items, workers, |_, &x| {
                if x % 5 == 3 {
                    std::panic::panic_any(qmarl_chaos::InjectedKill {
                        cell: format!("task-{x}"),
                        epoch: x as usize,
                    });
                }
                x * 2
            });
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(t) => {
                        assert_ne!(i % 5, 3);
                        assert_eq!(t.value, i as u64 * 2);
                    }
                    Err(payload) => {
                        // The raw payload downcasts to the typed kill.
                        let kill = payload
                            .downcast_ref::<qmarl_chaos::InjectedKill>()
                            .expect("typed payload");
                        assert_eq!(i % 5, 3);
                        assert_eq!(kill.epoch, i);
                    }
                }
            }
        }
    }
}
