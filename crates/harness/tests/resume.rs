//! Checkpoint-resume equivalence: a killed-and-resumed harness cell is
//! **bit-identical** (`assert_eq`, no tolerances) to one that ran
//! uninterrupted, and `FrameworkSnapshot` round-trips through save/load
//! for quantum and MLP actors under every backend.

use std::path::PathBuf;

use qmarl_core::checkpoint::FrameworkSnapshot;
use qmarl_core::config::TrainConfig;
use qmarl_core::framework::{build_kind_scenario_trainer, FrameworkKind};
use qmarl_harness::prelude::*;
use qmarl_runtime::backend::ExecutionBackend;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qmarl_resume_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn assert_cells_bit_identical(a: &CellResult, b: &CellResult, context: &str) {
    assert_eq!(a.history, b.history, "{context}: full history must match");
    assert_eq!(a.snapshot, b.snapshot, "{context}: final params must match");
}

#[test]
fn killed_cell_resumes_bit_identically_at_several_epochs() {
    let spec: ExperimentSpec =
        "name=resume;scenarios=single-hop;seeds=11;epochs=6;limit=6;episodes=2;lanes=2;checkpoint=2"
            .parse()
            .unwrap();
    let cell = spec.expand().remove(0);

    // Reference: checkpointing on, never interrupted.
    let ref_dir = tmp_dir("ref");
    let reference = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(ref_dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )
    .unwrap();
    assert!(reference.completed);
    assert_eq!(reference.history.len(), 6);

    // Kill between epochs — at a checkpoint boundary (2, 4), and right
    // after an uncheckpointed epoch (3, 5: the resume must recompute the
    // lost epoch from the last checkpoint and still land identically).
    for kill_at in [1usize, 2, 3, 4, 5] {
        let dir = tmp_dir(&format!("kill{kill_at}"));
        let partial = run_cell(
            &spec,
            &cell,
            &CellOptions {
                checkpoint_dir: Some(dir.clone()),
                stop_after: Some(kill_at),
                panic_after: None,
            },
        )
        .unwrap();
        assert!(!partial.completed, "kill_at={kill_at}");
        assert_eq!(partial.history.len(), kill_at);

        let resumed = run_cell(
            &spec,
            &cell,
            &CellOptions {
                checkpoint_dir: Some(dir.clone()),
                stop_after: None,
                panic_after: None,
            },
        )
        .unwrap();
        assert!(resumed.completed);
        // Epoch 1 has no checkpoint yet (cadence 2): the resume restarts
        // from scratch; later kills resume from the floor(kill/2)*2 mark.
        let expected_resume_epoch = (kill_at / 2) * 2;
        if expected_resume_epoch > 0 {
            assert_eq!(
                resumed.resumed_at,
                Some(expected_resume_epoch),
                "kill_at={kill_at}"
            );
        } else {
            assert_eq!(resumed.resumed_at, None, "kill_at={kill_at}");
        }
        assert_cells_bit_identical(&reference, &resumed, &format!("kill_at={kill_at}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    // A finished cell re-run from its final checkpoint replays no epochs
    // and still reports the identical result.
    let rerun = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(ref_dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )
    .unwrap();
    assert_eq!(rerun.resumed_at, Some(6));
    assert_cells_bit_identical(&reference, &rerun, "finished rerun");
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn checkpoint_from_a_different_experiment_shape_is_rejected() {
    // Same grid coordinates, different training shape: the resume must
    // refuse the stale checkpoint instead of silently producing results
    // bit-different from an uninterrupted run.
    let write_spec: ExperimentSpec =
        "name=shape-a;scenarios=single-hop;seeds=3;epochs=4;limit=6;episodes=2;checkpoint=2"
            .parse()
            .unwrap();
    let cell = write_spec.expand().remove(0);
    let dir = tmp_dir("shape-guard");
    run_cell(
        &write_spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(2),
            panic_after: None,
        },
    )
    .unwrap();

    // Edited episode budget, edited epoch budget, different sweep name:
    // all rejected against the existing checkpoint.
    for edited in [
        "name=shape-a;scenarios=single-hop;seeds=3;epochs=4;limit=6;episodes=4;checkpoint=2",
        "name=shape-a;scenarios=single-hop;seeds=3;epochs=8;limit=6;episodes=2;checkpoint=2",
        "name=shape-b;scenarios=single-hop;seeds=3;epochs=4;limit=6;episodes=2;checkpoint=2",
    ] {
        let spec: ExperimentSpec = edited.parse().unwrap();
        let cell = spec.expand().remove(0);
        let err = run_cell(
            &spec,
            &cell,
            &CellOptions {
                checkpoint_dir: Some(dir.clone()),
                stop_after: None,
                panic_after: None,
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("different experiment shape"),
            "{edited}: {err}"
        );
    }

    // The unedited spec still resumes cleanly.
    let resumed = run_cell(
        &write_spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed_at, Some(2));
    assert!(resumed.completed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_cell_resumes_bit_identically_under_sampled_backend() {
    // Shot-sampled expectations are content-addressed, so resume must be
    // exact under the stochastic backend too.
    let spec: ExperimentSpec =
        "name=resume-sampled;scenarios=single-hop;backends=sampled:shots=16:seed=4;\
         seeds=5;epochs=3;limit=4;checkpoint=1"
            .parse()
            .unwrap();
    let cell = spec.expand().remove(0);
    let ref_dir = tmp_dir("sampled-ref");
    let reference = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(ref_dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )
    .unwrap();
    let dir = tmp_dir("sampled-kill");
    run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(2),
            panic_after: None,
        },
    )
    .unwrap();
    let resumed = run_cell(
        &spec,
        &cell,
        &CellOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: None,
            panic_after: None,
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed_at, Some(2));
    assert_cells_bit_identical(&reference, &resumed, "sampled backend");
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    // Whole-sweep equivalence: every cell killed at a different epoch,
    // then one resumed sweep must equal the uninterrupted sweep.
    let spec: ExperimentSpec =
        "name=resume-sweep;scenarios=single-hop;seeds=0..3;epochs=4;limit=6;checkpoint=1"
            .parse()
            .unwrap();
    let clean_dir = tmp_dir("sweep-clean");
    let uninterrupted = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            checkpoint_dir: Some(clean_dir.clone()),
            ..SweepOptions::default()
        },
    )
    .unwrap();

    let dir = tmp_dir("sweep-kill");
    for (i, cell) in spec.expand().iter().enumerate() {
        run_cell(
            &spec,
            cell,
            &CellOptions {
                checkpoint_dir: Some(dir.clone()),
                stop_after: Some(1 + i), // kill cells at epochs 1, 2, 3 (seed 2 completes)
                panic_after: None,
            },
        )
        .unwrap();
    }
    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            checkpoint_dir: Some(dir.clone()),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.cells.len(), uninterrupted.cells.len());
    for (a, b) in uninterrupted.cells.iter().zip(&resumed.cells) {
        assert!(b.resumed_at.is_some(), "{}", b.id.label());
        assert_cells_bit_identical(a, b, &a.id.label());
    }
    // Aggregates follow suit.
    assert_eq!(uninterrupted.groups[0].reward, resumed.groups[0].reward);
    assert_eq!(uninterrupted.groups[0].curves, resumed.groups[0].curves);
    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn framework_snapshot_roundtrips_for_quantum_and_mlp_under_every_backend() {
    let dir = tmp_dir("snapshots");
    let mut train = TrainConfig::paper_default();
    train.epochs = 1;
    let backends: Vec<ExecutionBackend> = vec![
        "ideal".parse().unwrap(),
        "sampled:shots=32:seed=2".parse().unwrap(),
        "noisy:p1=0.001:p2=0.002".parse().unwrap(),
    ];
    // Proposed = quantum actors + quantum critic; Comp1 = quantum actors
    // + MLP critic: together they cover both model families under every
    // backend. Fully classical stacks (Comp2/Comp3) only exist under
    // Ideal by construction.
    let mut cases: Vec<(FrameworkKind, ExecutionBackend)> = Vec::new();
    for backend in &backends {
        cases.push((FrameworkKind::Proposed, backend.clone()));
        cases.push((FrameworkKind::Comp1, backend.clone()));
    }
    cases.push((FrameworkKind::Comp2, ExecutionBackend::Ideal));
    cases.push((FrameworkKind::Comp3, ExecutionBackend::Ideal));

    for (i, (kind, backend)) in cases.iter().enumerate() {
        let context = format!("{kind} × {backend}");
        let mut seeded = train.clone();
        seeded.seed = 40 + i as u64;
        let trainer = build_kind_scenario_trainer(*kind, "single-hop", backend, &seeded, Some(4))
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let snap = FrameworkSnapshot::capture(&context, &trainer);
        let path = dir.join(format!("snap{i}.ckpt"));
        snap.save(&path)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let loaded = FrameworkSnapshot::load(&path).unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_eq!(loaded, snap, "{context}: file round-trip must be bit-exact");

        // And the loaded snapshot restores into freshly built models of
        // the same architecture (differently seeded, so initial params
        // provably differ before the restore).
        let mut env_cfg = qmarl_env::single_hop::EnvConfig::paper_default();
        env_cfg.episode_limit = 4;
        let mut other = seeded.clone();
        other.seed = 90 + i as u64;
        let mut actors = qmarl_core::framework::build_actors(*kind, &env_cfg, &other)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let mut critic = qmarl_core::framework::build_critic(*kind, &env_cfg, &other)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_ne!(actors[0].params(), snap.actor_params[0], "{context}");
        loaded
            .restore(&mut actors, critic.as_mut())
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        for (a, p) in actors.iter().zip(&snap.actor_params) {
            assert_eq!(&a.params(), p, "{context}");
        }
        assert_eq!(critic.params(), snap.critic_params, "{context}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
