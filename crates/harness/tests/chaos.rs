//! Chaos suite for the sweep engine: seeded kills, retries, quarantine.
//!
//! The headline claim is compositional determinism: checkpoint-resume
//! (PR earlier) + panic isolation + seeded retry (this PR) compose so a
//! sweep hammered by injected kills produces **byte-identical** final
//! artifacts to a clean run — and when cells do die for good, the
//! partial result is itself deterministic and worker-count invariant.

use std::path::PathBuf;

use qmarl_harness::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qmarl_chaos_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A short backoff so a kill-heavy test doesn't sleep its way to the CI
/// timeout; the budget (`max_retries`) is what each test varies.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base: std::time::Duration::from_millis(1),
        cap: std::time::Duration::from_millis(5),
    }
}

/// Kills injected at seeded epochs, absorbed by checkpoint-resume and
/// retry, reproduce a clean sweep bit for bit: every surviving cell's
/// history and parameters are `assert_eq`-equal and the scrubbed
/// summary fingerprints match byte for byte.
#[test]
fn kills_plus_resume_plus_retry_match_a_clean_run_bit_for_bit() {
    silence_injected_kills();
    let spec: ExperimentSpec =
        "name=chaos-kill;scenarios=single-hop;engines=batched;seeds=0..3;epochs=3;limit=6;\
         episodes=2;lanes=2;checkpoint=1"
            .parse()
            .unwrap();

    let clean = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint_dir: Some(tmp_dir("clean")),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    // The inert baseline: no plan means zero chaos bookkeeping.
    assert_eq!(clean.kills_injected, 0);
    assert_eq!(clean.cell_retries, 0);
    assert!(clean.quarantined.is_empty());

    // A 90% kill rate cannot stall a checkpointed sweep: every attempt
    // banks at least one epoch before its kill fires, so `epochs`
    // retries always suffice. It CAN and does fire constantly.
    let plan: FaultPlan = "faults:kill=0.9:seed=11".parse().unwrap();
    let chaos = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint_dir: Some(tmp_dir("killed")),
            faults: Some(plan),
            retry: fast_retry(8),
            ..SweepOptions::default()
        },
    )
    .unwrap();

    assert!(chaos.kills_injected > 0, "a 90% kill rate must fire");
    assert!(chaos.cell_retries > 0, "kills must force retries");
    assert!(chaos.quarantined.is_empty(), "the budget must absorb them");
    assert_eq!(chaos.cells.len(), clean.cells.len());
    for (a, b) in clean.cells.iter().zip(&chaos.cells) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.history, b.history, "{}: history must match", a.id.label());
        assert_eq!(
            a.snapshot,
            b.snapshot,
            "{}: params must match",
            a.id.label()
        );
    }
    assert_eq!(
        clean.fingerprint_json(&spec),
        chaos.fingerprint_json(&spec),
        "chaos and clean summaries must fingerprint identically"
    );
}

/// Exhausted cells are quarantined, the sweep completes with partial
/// results, and the whole outcome — which cells died, which seeds each
/// group aggregates, the summary bytes — is deterministic and invariant
/// to worker count.
#[test]
fn quarantine_yields_deterministic_partial_results() {
    silence_injected_kills();
    // No checkpoints: a killed attempt restarts from scratch, and with
    // a zero retry budget its first kill is terminal.
    let spec: ExperimentSpec =
        "name=chaos-q;scenarios=single-hop;engines=batched;seeds=0..5;epochs=2;limit=6;\
         episodes=2;lanes=2"
            .parse()
            .unwrap();
    let plan: FaultPlan = "faults:kill=0.5:seed=7".parse().unwrap();
    let sweep = |workers: usize| {
        run_sweep(
            &spec,
            &SweepOptions {
                workers,
                faults: Some(plan),
                retry: fast_retry(0),
                ..SweepOptions::default()
            },
        )
        .unwrap()
    };

    let a = sweep(1);
    assert!(
        !a.quarantined.is_empty() && !a.cells.is_empty(),
        "seed 7 must split the grid: {} quarantined / {} ok",
        a.quarantined.len(),
        a.cells.len()
    );
    assert_eq!(a.cells.len() + a.quarantined.len(), spec.expand().len());
    for q in &a.quarantined {
        assert_eq!(q.attempts, 1);
        assert!(
            matches!(q.error, CellError::Killed { .. }),
            "quarantine cause must be the typed injected kill, got {}",
            q.error
        );
    }
    // Groups aggregate exactly the surviving seeds.
    let survivors: Vec<u64> = a.cells.iter().map(|c| c.id.seed).collect();
    assert_eq!(a.groups[0].seeds, survivors);
    assert_eq!(a.groups[0].reward.n, survivors.len() as u64);
    // The summary carries the quarantine ledger.
    let summary = a.summary_json(&spec);
    let doc = Json::parse(&summary).expect("valid JSON");
    assert_eq!(
        doc.get("quarantined")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(a.quarantined.len())
    );

    // Worker-count invariance and run-to-run determinism, byte for byte.
    let b = sweep(3);
    let c = sweep(3);
    assert_eq!(a.quarantined, b.quarantined);
    assert_eq!(a.fingerprint_json(&spec), b.fingerprint_json(&spec));
    assert_eq!(b.fingerprint_json(&spec), c.fingerprint_json(&spec));
    assert_eq!(b.fault_report_json(&spec), c.fault_report_json(&spec));
}

/// When every cell dies for good the sweep is an error — an empty
/// partial result would silently aggregate nothing.
#[test]
fn a_fully_quarantined_sweep_is_a_typed_error() {
    silence_injected_kills();
    let spec: ExperimentSpec =
        "name=chaos-all;scenarios=single-hop;engines=batched;seeds=0..2;epochs=2;limit=6;\
         episodes=2;lanes=2"
            .parse()
            .unwrap();
    let err = run_sweep(
        &spec,
        &SweepOptions {
            faults: Some("faults:kill=1:seed=1".parse().unwrap()),
            retry: fast_retry(1),
            ..SweepOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, HarnessError::SweepFailed(_)),
        "expected SweepFailed, got {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("quarantined"), "unhelpful error: {msg}");
}
