//! Property tests for the sweep metrics aggregator.
//!
//! The issue contract: Welford matches the naive two-pass computation
//! within `1e-12`, is permutation-invariant over seed order (same
//! tolerance), and its CI half-width shrinks monotonically as the seed
//! count grows at fixed spread.

use proptest::prelude::*;
use qmarl_harness::welford::Welford;

fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4f64..1e4, 2..max_len)
}

/// The naive two-pass mean and unbiased variance.
fn two_pass(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// A deterministic in-place shuffle driven by a SplitMix-style counter.
fn shuffled(xs: &[f64], key: u64) -> Vec<f64> {
    let mut out = xs.to_vec();
    let mut state = key;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    /// Streaming moments match the two-pass reference within 1e-12
    /// (relative to the sample scale).
    #[test]
    fn welford_matches_two_pass(xs in arb_samples(60)) {
        let w = Welford::from_samples(&xs);
        let (mean, var) = two_pass(&xs);
        let scale = 1.0 + xs.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        prop_assert!((w.mean() - mean).abs() <= 1e-12 * scale,
            "mean {} vs two-pass {mean}", w.mean());
        prop_assert!((w.variance() - var).abs() <= 1e-12 * scale * scale,
            "variance {} vs two-pass {var}", w.variance());
        prop_assert_eq!(w.count() as usize, xs.len());
    }

    /// Folding the seeds in any order gives the same aggregate within
    /// 1e-12 — cells may finish in any pool order.
    #[test]
    fn welford_is_permutation_invariant(xs in arb_samples(40), key in 0u64..1_000_000_000) {
        let a = Welford::from_samples(&xs);
        let b = Welford::from_samples(&shuffled(&xs, key));
        let scale = 1.0 + xs.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        prop_assert!((a.mean() - b.mean()).abs() <= 1e-12 * scale);
        prop_assert!((a.variance() - b.variance()).abs() <= 1e-12 * scale * scale);
        prop_assert!((a.ci95_half_width() - b.ci95_half_width()).abs() <= 1e-12 * scale);
    }

    /// Merging partial aggregates (the streaming cross-cell path) equals
    /// folding the concatenated stream, within 1e-12.
    #[test]
    fn welford_merge_matches_sequential(xs in arb_samples(50), split in 0usize..50) {
        let split = split.min(xs.len());
        let merged = Welford::from_samples(&xs[..split]).merge(&Welford::from_samples(&xs[split..]));
        let all = Welford::from_samples(&xs);
        let scale = 1.0 + xs.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        prop_assert!((merged.mean() - all.mean()).abs() <= 1e-12 * scale);
        prop_assert!((merged.variance() - all.variance()).abs() <= 1e-12 * scale * scale);
    }

    /// At fixed spread, the CI half-width strictly shrinks as the seed
    /// count grows: replicating the whole sample m times leaves the
    /// spread in place but multiplies n, so `m+1` replicas must yield a
    /// strictly narrower interval than `m`.
    #[test]
    fn ci_half_width_shrinks_with_seed_count(xs in arb_samples(20), m in 1usize..6) {
        // Skip degenerate all-equal samples: their CI is 0 at any n.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread <= 1e-9 {
            return Ok(());
        }
        let replicate = |times: usize| {
            let mut w = Welford::new();
            for _ in 0..times {
                for &x in &xs {
                    w.push(x);
                }
            }
            w.ci95_half_width()
        };
        let wider = replicate(m);
        let narrower = replicate(m + 1);
        prop_assert!(narrower < wider,
            "ci at {}x replication ({narrower}) must be < ci at {}x ({wider})", m + 1, m);
    }
}

#[test]
fn ci_shrinks_along_a_growing_seed_ladder() {
    // The deterministic version of the monotonicity property on a
    // concrete ladder: 2, 4, 8, … replicas of the same seed set.
    let xs = [-3.0, -1.0, 0.5, 2.0, 4.5];
    let mut last = f64::INFINITY;
    for m in [1usize, 2, 4, 8, 16] {
        let mut w = Welford::new();
        for _ in 0..m {
            for &x in &xs {
                w.push(x);
            }
        }
        let ci = w.ci95_half_width();
        assert!(ci < last, "m={m}: {ci} !< {last}");
        last = ci;
    }
}
