//! AVX2 implementations of the gate kernels (internal, `x86_64` only).
//!
//! Each function is the wide twin of a scalar kernel in [`crate::apply`]
//! and is **bit-identical** to it by construction: the same expression is
//! evaluated per element in the same association order, with separate
//! multiply and add instructions (no FMA contraction), relying only on
//! IEEE-754 identities the scalar code already uses (`x·(−s) ≡ −(x·s)`,
//! `a + (−t) ≡ a − t`, commutativity of `+`/`·`). See [`crate::simd`].
//!
//! `Complex64` is `#[repr(C)] { re, im }`, so an amplitude slice is viewed
//! as an interleaved `f64` buffer `[re0, im0, re1, im1, …]`: one 256-bit
//! register holds two adjacent amplitudes, one 128-bit register holds one.
//! Pair kernels iterate contiguous runs produced by direct block
//! enumeration (no skip-scan); a run of odd length ends with a 128-bit
//! step, so every `(control, target)` combination — including stride-1
//! wires — stays on the vector path.
//!
//! # Safety
//!
//! Every function requires AVX2 (they are only reachable through
//! [`crate::simd::level`], which verifies support at runtime) and valid,
//! distinct, in-range qubit masks (asserted at entry — the pointers handed
//! to the step helpers are derived from those masks).

use core::arch::x86_64::*;

use crate::complex::Complex64;
use crate::gate::{Gate1, Gate2};

/// Splats one complex coefficient into broadcast (re, im) registers.
///
/// # Safety
///
/// Register-only (no memory access); `unsafe` solely because AVX2 must
/// be enabled, which every caller guarantees by being `#[target_feature
/// (enable = "avx2")]` itself and reachable only via [`crate::simd::level`].
#[target_feature(enable = "avx2")]
#[inline]
pub(crate) unsafe fn splat(m: Complex64) -> (__m256d, __m256d) {
    (_mm256_set1_pd(m.re), _mm256_set1_pd(m.im))
}

/// Low halves of a splat pair, for 128-bit remainder steps.
///
/// # Safety
///
/// Register-only cast; requires AVX2 to be enabled (guaranteed by the
/// `#[target_feature]` callers), nothing else.
#[target_feature(enable = "avx2")]
#[inline]
pub(crate) unsafe fn halve(m: (__m256d, __m256d)) -> (__m128d, __m128d) {
    (_mm256_castpd256_pd128(m.0), _mm256_castpd256_pd128(m.1))
}

/// `m · v` for two packed complexes, coefficient pre-splat as `(re, im)`:
/// `addsub(re·v, im·swap(v))` reproduces the scalar
/// `(m.re·v.re − m.im·v.im, m.re·v.im + m.im·v.re)` bit for bit.
///
/// # Safety
///
/// Register-only arithmetic; requires AVX2 to be enabled (guaranteed by
/// the `#[target_feature]` callers), nothing else.
#[target_feature(enable = "avx2")]
#[inline]
pub(crate) unsafe fn cmul(m: (__m256d, __m256d), v: __m256d) -> __m256d {
    let t1 = _mm256_mul_pd(m.0, v);
    let t2 = _mm256_mul_pd(m.1, _mm256_permute_pd(v, 0b0101));
    _mm256_addsub_pd(t1, t2)
}

/// 128-bit [`cmul`], for run remainders.
///
/// # Safety
///
/// Register-only arithmetic; requires AVX2 to be enabled (guaranteed by
/// the `#[target_feature]` callers), nothing else.
#[target_feature(enable = "avx2")]
#[inline]
pub(crate) unsafe fn cmul1(m: (__m128d, __m128d), v: __m128d) -> __m128d {
    let t1 = _mm_mul_pd(m.0, v);
    let t2 = _mm_mul_pd(m.1, _mm_shuffle_pd(v, v, 0b01));
    _mm_addsub_pd(t1, t2)
}

/// Generic 2×2 update of two 2-amplitude rows:
/// `a0' = m00·a0 + m01·a1`, `a1' = m10·a0 + m11·a1`.
///
/// # Safety
///
/// `p` must point into a live interleaved amplitude buffer valid for
/// reads and writes of `f64`s `[2·i0, 2·i0+4)` and `[2·i1, 2·i1+4)`
/// (two amplitudes per row), with `{i0, i0+1} ∩ {i1, i1+1} = ∅` so the
/// two load/store pairs never overlap. Callers derive `i1 = i0 + stride`
/// or `i0 | mt` with `stride/mt ≥ 2` on this path, which guarantees
/// disjointness. AVX2 must be enabled (callers are `#[target_feature]`).
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn g1_step(
    p: *mut f64,
    i0: usize,
    i1: usize,
    m00: (__m256d, __m256d),
    m01: (__m256d, __m256d),
    m10: (__m256d, __m256d),
    m11: (__m256d, __m256d),
) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm256_loadu_pd(pa);
    let a1 = _mm256_loadu_pd(pb);
    let r0 = _mm256_add_pd(cmul(m00, a0), cmul(m01, a1));
    let r1 = _mm256_add_pd(cmul(m10, a0), cmul(m11, a1));
    _mm256_storeu_pd(pa, r0);
    _mm256_storeu_pd(pb, r1);
}

/// 128-bit [`g1_step`] (one amplitude per row).
///
/// # Safety
///
/// `p` must be valid for reads and writes of `f64`s `[2·i0, 2·i0+2)`
/// and `[2·i1, 2·i1+2)` with `i0 ≠ i1`. AVX2 must be enabled (callers
/// are `#[target_feature]`).
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn g1_step1(
    p: *mut f64,
    i0: usize,
    i1: usize,
    m00: (__m128d, __m128d),
    m01: (__m128d, __m128d),
    m10: (__m128d, __m128d),
    m11: (__m128d, __m128d),
) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm_loadu_pd(pa);
    let a1 = _mm_loadu_pd(pb);
    let r0 = _mm_add_pd(cmul1(m00, a0), cmul1(m01, a1));
    let r1 = _mm_add_pd(cmul1(m10, a0), cmul1(m11, a1));
    _mm_storeu_pd(pa, r0);
    _mm_storeu_pd(pb, r1);
}

/// Rx pair update: `a0' = c·a0 + [s,−s]·swap(a1)` and symmetrically,
/// matching the scalar `(c·a0.re + s·a1.im, c·a0.im − s·a1.re)` form.
///
/// # Safety
///
/// Same contract as [`g1_step`]: `p` valid for reads/writes of two
/// amplitudes at `i0` and two at `i1`, rows disjoint, AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn rx_step(p: *mut f64, i0: usize, i1: usize, cv: __m256d, sv: __m256d) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm256_loadu_pd(pa);
    let a1 = _mm256_loadu_pd(pb);
    let r0 = _mm256_add_pd(
        _mm256_mul_pd(cv, a0),
        _mm256_mul_pd(sv, _mm256_permute_pd(a1, 0b0101)),
    );
    let r1 = _mm256_add_pd(
        _mm256_mul_pd(cv, a1),
        _mm256_mul_pd(sv, _mm256_permute_pd(a0, 0b0101)),
    );
    _mm256_storeu_pd(pa, r0);
    _mm256_storeu_pd(pb, r1);
}

/// 128-bit [`rx_step`].
///
/// # Safety
///
/// Same contract as [`g1_step1`]: one amplitude at `i0`, one at `i1`,
/// `i0 ≠ i1`, AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn rx_step1(p: *mut f64, i0: usize, i1: usize, cv: __m128d, sv: __m128d) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm_loadu_pd(pa);
    let a1 = _mm_loadu_pd(pb);
    let r0 = _mm_add_pd(
        _mm_mul_pd(cv, a0),
        _mm_mul_pd(sv, _mm_shuffle_pd(a1, a1, 0b01)),
    );
    let r1 = _mm_add_pd(
        _mm_mul_pd(cv, a1),
        _mm_mul_pd(sv, _mm_shuffle_pd(a0, a0, 0b01)),
    );
    _mm_storeu_pd(pa, r0);
    _mm_storeu_pd(pb, r1);
}

/// Ry pair update (purely real matrix): `a0' = c·a0 + (−s)·a1`,
/// `a1' = s·a0 + c·a1`, elementwise.
///
/// # Safety
///
/// Same contract as [`g1_step`]: `p` valid for reads/writes of two
/// amplitudes at `i0` and two at `i1`, rows disjoint, AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn ry_step(p: *mut f64, i0: usize, i1: usize, cv: __m256d, nsv: __m256d, psv: __m256d) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm256_loadu_pd(pa);
    let a1 = _mm256_loadu_pd(pb);
    let r0 = _mm256_add_pd(_mm256_mul_pd(cv, a0), _mm256_mul_pd(nsv, a1));
    let r1 = _mm256_add_pd(_mm256_mul_pd(psv, a0), _mm256_mul_pd(cv, a1));
    _mm256_storeu_pd(pa, r0);
    _mm256_storeu_pd(pb, r1);
}

/// 128-bit [`ry_step`].
///
/// # Safety
///
/// Same contract as [`g1_step1`]: one amplitude at `i0`, one at `i1`,
/// `i0 ≠ i1`, AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn ry_step1(p: *mut f64, i0: usize, i1: usize, cv: __m128d, nsv: __m128d, psv: __m128d) {
    let pa = p.add(2 * i0);
    let pb = p.add(2 * i1);
    let a0 = _mm_loadu_pd(pa);
    let a1 = _mm_loadu_pd(pb);
    let r0 = _mm_add_pd(_mm_mul_pd(cv, a0), _mm_mul_pd(nsv, a1));
    let r1 = _mm_add_pd(_mm_mul_pd(psv, a0), _mm_mul_pd(cv, a1));
    _mm_storeu_pd(pa, r0);
    _mm_storeu_pd(pb, r1);
}

/// Diagonal phase over a contiguous run of `count` amplitudes:
/// `a' = pr·a + [−pi, pi]·swap(a)`, which is the scalar
/// `(a.re·pr − a.im·pi, a.re·pi + a.im·pr)` bit for bit. `mv` carries the
/// `[−pi, pi]` pattern per amplitude.
///
/// # Safety
///
/// `p` must be valid for reads and writes of `f64`s
/// `[2·start, 2·(start+count))` — the whole run, including the odd
/// 128-bit remainder. In-place diagonal update, so no aliasing concern
/// beyond the run itself. AVX2 enabled (callers are `#[target_feature]`).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn phase_run(p: *mut f64, start: usize, count: usize, prv: __m256d, mv: __m256d) {
    let mut i = start;
    while i + 1 < start + count {
        let ptr = p.add(2 * i);
        let v = _mm256_loadu_pd(ptr);
        let r = _mm256_add_pd(
            _mm256_mul_pd(prv, v),
            _mm256_mul_pd(mv, _mm256_permute_pd(v, 0b0101)),
        );
        _mm256_storeu_pd(ptr, r);
        i += 2;
    }
    if i < start + count {
        let ptr = p.add(2 * i);
        let v = _mm_loadu_pd(ptr);
        let r = _mm_add_pd(
            _mm_mul_pd(_mm256_castpd256_pd128(prv), v),
            _mm_mul_pd(_mm256_castpd256_pd128(mv), _mm_shuffle_pd(v, v, 0b01)),
        );
        _mm_storeu_pd(ptr, r);
    }
}

/// Generic single-qubit gate over qubit `q`.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gate1(amps: &mut [Complex64], q: usize, gate: &Gate1) {
    let len = amps.len();
    let stride = 1usize << q;
    assert!(stride < len, "qubit {q} out of range for {len} amplitudes");
    let m = gate.matrix();
    let p = amps.as_mut_ptr() as *mut f64;
    if stride == 1 {
        // One register holds the whole (a0, a1) pair: duplicate each
        // amplitude across both halves and combine matrix columns
        // in-register. `m0`/`m1` pack column 0/1 as [row0, row1].
        let m0 = _mm256_setr_pd(m[0][0].re, m[0][0].im, m[1][0].re, m[1][0].im);
        let m1 = _mm256_setr_pd(m[0][1].re, m[0][1].im, m[1][1].re, m[1][1].im);
        let m0s = (_mm256_movedup_pd(m0), _mm256_permute_pd(m0, 0b1111));
        let m1s = (_mm256_movedup_pd(m1), _mm256_permute_pd(m1, 0b1111));
        let mut i = 0;
        while i < len {
            let ptr = p.add(2 * i);
            let v = _mm256_loadu_pd(ptr);
            let lo = _mm256_permute2f128_pd(v, v, 0x00);
            let hi = _mm256_permute2f128_pd(v, v, 0x11);
            let r = _mm256_add_pd(cmul(m0s, lo), cmul(m1s, hi));
            _mm256_storeu_pd(ptr, r);
            i += 2;
        }
    } else {
        let (m00, m01, m10, m11) = (
            splat(m[0][0]),
            splat(m[0][1]),
            splat(m[1][0]),
            splat(m[1][1]),
        );
        let mut base = 0;
        while base < len {
            let mut i0 = base;
            while i0 < base + stride {
                g1_step(p, i0, i0 + stride, m00, m01, m10, m11);
                i0 += 2;
            }
            base += stride << 1;
        }
    }
}

/// Generic two-qubit gate; direct block enumeration over `(qa, qb)`-clear
/// indices, runs of the smaller stride.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gate2(amps: &mut [Complex64], qa: usize, qb: usize, gate: &Gate2) {
    let len = amps.len();
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    assert!(ma < len && mb < len && ma != mb, "bad wires ({qa}, {qb})");
    let m = gate.matrix();
    let p = amps.as_mut_ptr() as *mut f64;
    let lo = ma.min(mb);
    let hi = ma.max(mb);
    let mut ms = [[(_mm256_setzero_pd(), _mm256_setzero_pd()); 4]; 4];
    for (r, row) in m.iter().enumerate() {
        for (c, &e) in row.iter().enumerate() {
            ms[r][c] = splat(e);
        }
    }
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            let mut i = b;
            while i + 1 < b + lo {
                g2_step(p, i, ma, mb, &ms);
                i += 2;
            }
            if i < b + lo {
                g2_step1(p, i, ma, mb, &ms);
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}

/// One 2-amplitude chunk of a 4×4 update; all four rows are loaded before
/// any store, and each row accumulates from a zero register in column
/// order, matching the scalar `mul_acc` chain exactly.
///
/// # Safety
///
/// `p` must be valid for reads and writes of two amplitudes at each of
/// the four row indices `i00`, `i00|ma`, `i00|mb`, `i00|ma|mb`, which
/// must be pairwise disjoint as 2-amplitude rows — callers pass `i00`
/// with both wire bits clear and `ma ≠ mb` both ≥ 2 on this path (the
/// lane-1 remainders use [`g2_step1`]). All rows are loaded before any
/// store, so in-place update is sound. AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn g2_step(
    p: *mut f64,
    i00: usize,
    ma: usize,
    mb: usize,
    ms: &[[(__m256d, __m256d); 4]; 4],
) {
    let idx = [i00, i00 | ma, i00 | mb, i00 | ma | mb];
    let v = [
        _mm256_loadu_pd(p.add(2 * idx[0])),
        _mm256_loadu_pd(p.add(2 * idx[1])),
        _mm256_loadu_pd(p.add(2 * idx[2])),
        _mm256_loadu_pd(p.add(2 * idx[3])),
    ];
    for (row, &out) in idx.iter().enumerate() {
        let mut acc = _mm256_setzero_pd();
        for (col, &vc) in v.iter().enumerate() {
            acc = _mm256_add_pd(cmul(ms[row][col], vc), acc);
        }
        _mm256_storeu_pd(p.add(2 * out), acc);
    }
}

/// 128-bit [`g2_step`] (run remainder).
///
/// # Safety
///
/// Same as [`g2_step`] with single-amplitude rows: `p` valid for one
/// amplitude at each of the four distinct indices. AVX2 enabled.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn g2_step1(
    p: *mut f64,
    i00: usize,
    ma: usize,
    mb: usize,
    ms: &[[(__m256d, __m256d); 4]; 4],
) {
    let idx = [i00, i00 | ma, i00 | mb, i00 | ma | mb];
    let v = [
        _mm_loadu_pd(p.add(2 * idx[0])),
        _mm_loadu_pd(p.add(2 * idx[1])),
        _mm_loadu_pd(p.add(2 * idx[2])),
        _mm_loadu_pd(p.add(2 * idx[3])),
    ];
    for (row, &out) in idx.iter().enumerate() {
        let mut acc = _mm_setzero_pd();
        for (col, &vc) in v.iter().enumerate() {
            acc = _mm_add_pd(cmul1(halve(ms[row][col]), vc), acc);
        }
        _mm_storeu_pd(p.add(2 * out), acc);
    }
}

/// Controlled single-qubit gate: direct enumeration over
/// (control = 1, target = 0) indices.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn controlled_gate1(
    amps: &mut [Complex64],
    control: usize,
    target: usize,
    gate: &Gate1,
) {
    let len = amps.len();
    let mc = 1usize << control;
    let mt = 1usize << target;
    assert!(
        mc < len && mt < len && mc != mt,
        "bad wires ({control}, {target})"
    );
    let m = gate.matrix();
    let p = amps.as_mut_ptr() as *mut f64;
    let lo = mc.min(mt);
    let hi = mc.max(mt);
    let (m00, m01, m10, m11) = (
        splat(m[0][0]),
        splat(m[0][1]),
        splat(m[1][0]),
        splat(m[1][1]),
    );
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            let mut i = b;
            while i + 1 < b + lo {
                let i0 = i | mc;
                g1_step(p, i0, i0 | mt, m00, m01, m10, m11);
                i += 2;
            }
            if i < b + lo {
                let i0 = i | mc;
                g1_step1(
                    p,
                    i0,
                    i0 | mt,
                    halve(m00),
                    halve(m01),
                    halve(m10),
                    halve(m11),
                );
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}

/// Rx rotation with precomputed `(sin, cos)` of the half angle.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn rx_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    let len = amps.len();
    let stride = 1usize << q;
    assert!(stride < len, "qubit {q} out of range for {len} amplitudes");
    let p = amps.as_mut_ptr() as *mut f64;
    let cv = _mm256_set1_pd(c);
    let sv = _mm256_setr_pd(s, -s, s, -s);
    if stride == 1 {
        // Full reverse of the in-register pair supplies both cross terms.
        let mut i = 0;
        while i < len {
            let ptr = p.add(2 * i);
            let v = _mm256_loadu_pd(ptr);
            let rev = _mm256_permute_pd(_mm256_permute2f128_pd(v, v, 0x01), 0b0101);
            let r = _mm256_add_pd(_mm256_mul_pd(cv, v), _mm256_mul_pd(sv, rev));
            _mm256_storeu_pd(ptr, r);
            i += 2;
        }
    } else {
        let mut base = 0;
        while base < len {
            let mut i0 = base;
            while i0 < base + stride {
                rx_step(p, i0, i0 + stride, cv, sv);
                i0 += 2;
            }
            base += stride << 1;
        }
    }
}

/// Ry rotation with precomputed `(sin, cos)` of the half angle.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ry_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    let len = amps.len();
    let stride = 1usize << q;
    assert!(stride < len, "qubit {q} out of range for {len} amplitudes");
    let p = amps.as_mut_ptr() as *mut f64;
    let cv = _mm256_set1_pd(c);
    if stride == 1 {
        // Cross-half swap pairs each amplitude with its partner.
        let sv = _mm256_setr_pd(-s, -s, s, s);
        let mut i = 0;
        while i < len {
            let ptr = p.add(2 * i);
            let v = _mm256_loadu_pd(ptr);
            let cross = _mm256_permute2f128_pd(v, v, 0x01);
            let r = _mm256_add_pd(_mm256_mul_pd(cv, v), _mm256_mul_pd(sv, cross));
            _mm256_storeu_pd(ptr, r);
            i += 2;
        }
    } else {
        let nsv = _mm256_set1_pd(-s);
        let psv = _mm256_set1_pd(s);
        let mut base = 0;
        while base < len {
            let mut i0 = base;
            while i0 < base + stride {
                ry_step(p, i0, i0 + stride, cv, nsv, psv);
                i0 += 2;
            }
            base += stride << 1;
        }
    }
}

/// Rz rotation (diagonal) with precomputed `(sin, cos)` of the half angle.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn rz_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    let len = amps.len();
    let stride = 1usize << q;
    assert!(stride < len, "qubit {q} out of range for {len} amplitudes");
    let p = amps.as_mut_ptr() as *mut f64;
    let prv = _mm256_set1_pd(c);
    if stride == 1 {
        // Phases alternate per amplitude: pi = −s on even, +s on odd.
        let mv = _mm256_setr_pd(s, -s, -s, s);
        phase_run(p, 0, len, prv, mv);
    } else {
        let mv0 = _mm256_setr_pd(s, -s, s, -s); // pi = −s (bit clear)
        let mv1 = _mm256_setr_pd(-s, s, -s, s); // pi = +s (bit set)
        let mut base = 0;
        while base < len {
            phase_run(p, base, stride, prv, mv0);
            phase_run(p, base + stride, stride, prv, mv1);
            base += stride << 1;
        }
    }
}

/// Controlled Rx with precomputed trig.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn crx_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    let len = amps.len();
    let mc = 1usize << control;
    let mt = 1usize << target;
    assert!(
        mc < len && mt < len && mc != mt,
        "bad wires ({control}, {target})"
    );
    let p = amps.as_mut_ptr() as *mut f64;
    let lo = mc.min(mt);
    let hi = mc.max(mt);
    let cv = _mm256_set1_pd(c);
    let sv = _mm256_setr_pd(s, -s, s, -s);
    let cv1 = _mm256_castpd256_pd128(cv);
    let sv1 = _mm256_castpd256_pd128(sv);
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            let mut i = b;
            while i + 1 < b + lo {
                let i0 = i | mc;
                rx_step(p, i0, i0 | mt, cv, sv);
                i += 2;
            }
            if i < b + lo {
                let i0 = i | mc;
                rx_step1(p, i0, i0 | mt, cv1, sv1);
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}

/// Controlled Ry with precomputed trig.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn cry_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    let len = amps.len();
    let mc = 1usize << control;
    let mt = 1usize << target;
    assert!(
        mc < len && mt < len && mc != mt,
        "bad wires ({control}, {target})"
    );
    let p = amps.as_mut_ptr() as *mut f64;
    let lo = mc.min(mt);
    let hi = mc.max(mt);
    let cv = _mm256_set1_pd(c);
    let nsv = _mm256_set1_pd(-s);
    let psv = _mm256_set1_pd(s);
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            let mut i = b;
            while i + 1 < b + lo {
                let i0 = i | mc;
                ry_step(p, i0, i0 | mt, cv, nsv, psv);
                i += 2;
            }
            if i < b + lo {
                let i0 = i | mc;
                ry_step1(
                    p,
                    i0,
                    i0 | mt,
                    _mm256_castpd256_pd128(cv),
                    _mm256_castpd256_pd128(nsv),
                    _mm256_castpd256_pd128(psv),
                );
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}

/// Controlled Rz with precomputed trig: phase `(c, −s)` on the
/// (control = 1, target = 0) runs, `(c, +s)` on their partners.
///
/// # Safety
///
/// The CPU must support AVX2 — callers reach this only through the
/// [`crate::simd::level`] dispatch, which verifies support at runtime.
/// Wire masks are asserted in range at entry, and every pointer handed
/// to the step helpers is derived from those asserted masks, so it
/// stays within `amps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn crz_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    let len = amps.len();
    let mc = 1usize << control;
    let mt = 1usize << target;
    assert!(
        mc < len && mt < len && mc != mt,
        "bad wires ({control}, {target})"
    );
    let p = amps.as_mut_ptr() as *mut f64;
    let lo = mc.min(mt);
    let hi = mc.max(mt);
    let prv = _mm256_set1_pd(c);
    let mv0 = _mm256_setr_pd(s, -s, s, -s);
    let mv1 = _mm256_setr_pd(-s, s, -s, s);
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            let mut i = b;
            while i < b + lo {
                // Runs may not start 2-aligned relative to each other, so
                // hand whole runs to phase_run (it handles remainders).
                let i0 = i | mc;
                let n = b + lo - i;
                phase_run(p, i0, n, prv, mv0);
                phase_run(p, i0 | mt, n, prv, mv1);
                i += n;
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}
