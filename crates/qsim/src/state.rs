//! The exact statevector backend.
//!
//! A [`StateVector`] stores all `2^n` complex amplitudes of an `n`-qubit
//! register. This is the same mathematical object GPU simulators such as
//! torchquantum (used by the paper) compute with; at the 4–16 qubit scale of
//! the QMARL experiments it fits comfortably in cache.

use crate::apply;
use crate::complex::Complex64;
use crate::error::QsimError;
use crate::gate::{Gate1, Gate2};

/// Tolerance used when checking that a state is normalised.
pub const NORM_TOL: f64 = 1e-9;

/// An exact `n`-qubit pure state: `2^n` complex amplitudes in the
/// computational basis, little-endian (qubit `q` is bit `q` of the index).
///
/// # Examples
///
/// ```
/// use qmarl_qsim::state::StateVector;
/// use qmarl_qsim::gate::Gate1;
///
/// let mut psi = StateVector::zero(2);
/// psi.apply_gate1(0, &Gate1::hadamard())?;
/// psi.apply_cnot(0, 1)?;               // Bell state (|00⟩+|11⟩)/√2
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// # Ok::<(), qmarl_qsim::error::QsimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` on `n_qubits` wires.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or large enough that `2^n` overflows
    /// `usize` (practically, ≥ 48 is rejected to keep allocations sane).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "register must have at least one qubit");
        assert!(
            n_qubits < 28,
            "register of {n_qubits} qubits is too large to simulate exactly"
        );
        let mut amps = vec![Complex64::ZERO; 1usize << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// The computational-basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] if `index ≥ 2^n`.
    pub fn basis(n_qubits: usize, index: usize) -> Result<Self, QsimError> {
        let mut s = StateVector::zero(n_qubits);
        if index >= s.amps.len() {
            return Err(QsimError::QubitOutOfRange {
                qubit: index,
                n_qubits,
            });
        }
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        Ok(s)
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Errors
    ///
    /// * [`QsimError::InvalidDimension`] if the length is not a power of two.
    /// * [`QsimError::NotNormalized`] if the 2-norm differs from 1 by more
    ///   than [`NORM_TOL`].
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Result<Self, QsimError> {
        let len = amps.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(QsimError::InvalidDimension { len });
        }
        let n_qubits = len.trailing_zeros() as usize;
        let s = StateVector { n_qubits, amps };
        let norm = s.norm();
        if (norm - 1.0).abs() > NORM_TOL {
            return Err(QsimError::NotNormalized { norm });
        }
        Ok(s)
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always `false`: a state vector has at least two amplitudes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable view of the amplitudes. Callers must preserve normalisation
    /// before using measurement APIs; [`StateVector::renormalize`] can
    /// restore it.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^n`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// The 2-norm of the amplitude vector (1 for a valid state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales the amplitudes to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is numerically the zero vector.
    pub fn renormalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalise the zero vector");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    fn check_qubit(&self, q: usize) -> Result<(), QsimError> {
        if q >= self.n_qubits {
            Err(QsimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit gate to qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn apply_gate1(&mut self, q: usize, gate: &Gate1) -> Result<(), QsimError> {
        self.check_qubit(q)?;
        apply::apply_gate1(&mut self.amps, q, gate);
        Ok(())
    }

    /// Applies a two-qubit gate; `qa` is bit 0 of the gate's index
    /// convention (the control for [`Gate2::cnot`]).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] or [`QsimError::DuplicateQubit`].
    pub fn apply_gate2(&mut self, qa: usize, qb: usize, gate: &Gate2) -> Result<(), QsimError> {
        self.check_qubit(qa)?;
        self.check_qubit(qb)?;
        if qa == qb {
            return Err(QsimError::DuplicateQubit { qubit: qa });
        }
        apply::apply_gate2(&mut self.amps, qa, qb, gate);
        Ok(())
    }

    /// Applies a CNOT via the swap fast path.
    ///
    /// # Errors
    ///
    /// Same as [`StateVector::apply_gate2`].
    pub fn apply_cnot(&mut self, control: usize, target: usize) -> Result<(), QsimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QsimError::DuplicateQubit { qubit: control });
        }
        apply::apply_cnot(&mut self.amps, control, target);
        Ok(())
    }

    /// Applies a Toffoli (CCX): flips `target` when both controls are
    /// `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] or [`QsimError::DuplicateQubit`].
    pub fn apply_toffoli(
        &mut self,
        control1: usize,
        control2: usize,
        target: usize,
    ) -> Result<(), QsimError> {
        self.check_qubit(control1)?;
        self.check_qubit(control2)?;
        self.check_qubit(target)?;
        if control1 == control2 || control1 == target || control2 == target {
            return Err(QsimError::DuplicateQubit {
                qubit: control1.min(control2).min(target),
            });
        }
        apply::apply_toffoli(&mut self.amps, control1, control2, target);
        Ok(())
    }

    /// Applies `gate` on `target` controlled on `control`.
    ///
    /// # Errors
    ///
    /// Same as [`StateVector::apply_gate2`].
    pub fn apply_controlled_gate1(
        &mut self,
        control: usize,
        target: usize,
        gate: &Gate1,
    ) -> Result<(), QsimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QsimError::DuplicateQubit { qubit: control });
        }
        apply::apply_controlled_gate1(&mut self.amps, control, target, gate);
        Ok(())
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] for differing widths.
    pub fn inner(&self, other: &StateVector) -> Result<Complex64, QsimError> {
        if self.n_qubits != other.n_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.n_qubits,
                actual: other.n_qubits,
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// The fidelity `|⟨self|other⟩|²` between two pure states.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] for differing widths.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, QsimError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// The probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^n`.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// All `2^n` basis probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The marginal probability that qubit `q` reads `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn prob_qubit_one(&self, q: usize) -> Result<f64, QsimError> {
        self.check_qubit(q)?;
        let mask = 1usize << q;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// The reduced (1-qubit) density matrix of qubit `q`, obtained by
    /// tracing out every other wire. Used for Bloch-vector extraction and
    /// the Fig. 4 qubit-state heatmaps.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn reduced_density(&self, q: usize) -> Result<[[Complex64; 2]; 2], QsimError> {
        self.check_qubit(q)?;
        let mask = 1usize << q;
        let mut rho = [[Complex64::ZERO; 2]; 2];
        for (i, a) in self.amps.iter().enumerate() {
            let bi = usize::from(i & mask != 0);
            for (bj, slot) in rho[bi].iter_mut().enumerate() {
                // Partner index with qubit q forced to bj, all others equal.
                let j = (i & !mask) | (bj << q);
                // ρ_{bi,bj} += a_i · conj(a_j); only pairs sharing the other
                // bits contribute, which (i & !mask) | … enumerates exactly.
                *slot += *a * self.amps[j].conj();
            }
        }
        Ok(rho)
    }

    /// The Kronecker product `self ⊗ other`: `other`'s qubits become the
    /// **low** bits of the combined register.
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let n = self.n_qubits + other.n_qubits;
        let mut amps = Vec::with_capacity(1usize << n);
        for a in &self.amps {
            for b in &other.amps {
                amps.push(*a * *b);
            }
        }
        StateVector { n_qubits: n, amps }
    }
}

impl std::fmt::Display for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "StateVector({} qubits)", self.n_qubits)?;
        for (i, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > 1e-12 {
                writeln!(f, "  |{:0width$b}⟩: {}", i, a, width = self.n_qubits)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::RotationAxis;

    #[test]
    fn zero_state_is_normalised() {
        for n in 1..=6 {
            let s = StateVector::zero(n);
            assert_eq!(s.n_qubits(), n);
            assert_eq!(s.len(), 1 << n);
            assert!((s.norm() - 1.0).abs() < 1e-15);
            assert_eq!(s.amplitude(0), Complex64::ONE);
        }
    }

    #[test]
    fn basis_state_constructor() {
        let s = StateVector::basis(3, 0b101).unwrap();
        assert_eq!(s.probability(0b101), 1.0);
        assert!(StateVector::basis(2, 4).is_err());
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(matches!(
            StateVector::from_amplitudes(vec![Complex64::ONE; 3]),
            Err(QsimError::InvalidDimension { len: 3 })
        ));
        assert!(matches!(
            StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ONE]),
            Err(QsimError::NotNormalized { .. })
        ));
        let ok = StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ZERO]);
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_qubit_rejected() {
        let mut s = StateVector::zero(2);
        assert!(s.apply_gate1(2, &Gate1::pauli_x()).is_err());
        assert!(s.apply_cnot(0, 0).is_err());
        assert!(s.apply_gate2(0, 0, &Gate2::cnot()).is_err());
        assert!(s.prob_qubit_one(5).is_err());
    }

    #[test]
    fn rotations_preserve_norm() {
        let mut s = StateVector::zero(4);
        for (q, axis) in RotationAxis::ALL.iter().cycle().take(12).enumerate() {
            s.apply_gate1(q % 4, &axis.gate(0.17 * (q as f64 + 1.0)))
                .unwrap();
        }
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_probabilities() {
        let mut s = StateVector::zero(3);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        s.apply_cnot(1, 2).unwrap();
        assert!((s.probability(0b000) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b111) - 0.5).abs() < 1e-12);
        for q in 0..3 {
            assert!((s.prob_qubit_one(q).unwrap() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::zero(2);
        let mut b = StateVector::zero(2);
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-15);
        b.apply_gate1(0, &Gate1::pauli_x()).unwrap();
        assert!(a.fidelity(&b).unwrap() < 1e-15);
        let c = StateVector::zero(3);
        assert!(a.inner(&c).is_err());
    }

    #[test]
    fn reduced_density_of_product_state() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        let rho0 = s.reduced_density(0).unwrap();
        // Qubit 0 in |+⟩: ρ = [[1/2, 1/2], [1/2, 1/2]].
        for row in &rho0 {
            for e in row {
                assert!((e.re - 0.5).abs() < 1e-12 && e.im.abs() < 1e-15);
            }
        }
        let rho1 = s.reduced_density(1).unwrap();
        assert!((rho1[0][0].re - 1.0).abs() < 1e-12);
        assert!(rho1[1][1].abs() < 1e-15);
    }

    #[test]
    fn reduced_density_of_bell_pair_is_maximally_mixed() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        for q in 0..2 {
            let rho = s.reduced_density(q).unwrap();
            assert!((rho[0][0].re - 0.5).abs() < 1e-12);
            assert!((rho[1][1].re - 0.5).abs() < 1e-12);
            assert!(rho[0][1].abs() < 1e-12);
        }
    }

    #[test]
    fn toffoli_truth_table() {
        // Only |11x⟩ flips the target.
        for (input, expect) in [
            (0b000usize, 0b000usize),
            (0b001, 0b001),
            (0b010, 0b010),
            (0b011, 0b111), // both controls set (bits 0, 1) → flip bit 2
            (0b111, 0b011),
            (0b101, 0b101),
        ] {
            let mut s = StateVector::basis(3, input).unwrap();
            s.apply_toffoli(0, 1, 2).unwrap();
            assert!(
                (s.probability(expect) - 1.0).abs() < 1e-15,
                "input {input:03b}"
            );
        }
    }

    #[test]
    fn toffoli_is_involution_and_validates() {
        let mut s = StateVector::zero(3);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_gate1(1, &Gate1::ry(0.7)).unwrap();
        let before = s.clone();
        s.apply_toffoli(0, 1, 2).unwrap();
        s.apply_toffoli(0, 1, 2).unwrap();
        assert!((s.fidelity(&before).unwrap() - 1.0).abs() < 1e-12);
        assert!(s.apply_toffoli(0, 0, 2).is_err());
        assert!(s.apply_toffoli(0, 1, 1).is_err());
        assert!(s.apply_toffoli(0, 1, 5).is_err());
    }

    #[test]
    fn toffoli_matches_controlled_controlled_decomposition() {
        // CCX on |++1⟩-style superpositions keeps norm and equals the
        // brute-force permutation of amplitudes.
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::u3(0.6 + q as f64, 0.2, -0.4))
                .unwrap();
        }
        let mut manual = s.clone();
        s.apply_toffoli(1, 2, 0).unwrap();
        // Manual permutation: swap amplitudes of indices with bits 1,2 set.
        let amps = manual.amplitudes_mut();
        for i in 0..8 {
            if i & 0b110 == 0b110 && i & 0b001 == 0 {
                amps.swap(i, i | 0b001);
            }
        }
        assert!((s.fidelity(&manual).unwrap() - 1.0).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_product_widths_and_values() {
        let mut a = StateVector::zero(1);
        a.apply_gate1(0, &Gate1::pauli_x()).unwrap(); // |1⟩
        let b = StateVector::zero(2); // |00⟩
        let t = a.tensor(&b); // |1⟩⊗|00⟩ → high bit set
        assert_eq!(t.n_qubits(), 3);
        assert!((t.probability(0b100) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::zero(2);
        s.amplitudes_mut()[0] = Complex64::new(2.0, 0.0);
        s.renormalize();
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn display_lists_nonzero_amplitudes() {
        let s = StateVector::basis(2, 0b10).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("|10⟩"));
        assert!(!txt.contains("|01⟩"));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut s = StateVector::zero(4);
        for q in 0..4 {
            s.apply_gate1(q, &Gate1::ry(0.3 + q as f64)).unwrap();
        }
        s.apply_cnot(0, 3).unwrap();
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
