//! Measurement: Pauli observables, expectation values, sampling, collapse.
//!
//! The paper's VQCs read out `⟨Z_i⟩` on each wire (the measurement step `M`
//! of Fig. 1, with `|M| ≤ n_qubit`). This module provides that readout plus
//! general Pauli-string observables, Born-rule sampling and projective
//! measurement with collapse — everything a policy or value head needs.

use rand::Rng;

use crate::complex::Complex64;
use crate::error::QsimError;
use crate::state::StateVector;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli operators on selected wires, e.g. `Z₀ ⊗ X₂`.
///
/// Wires not mentioned carry the identity.
///
/// # Examples
///
/// ```
/// use qmarl_qsim::measure::{PauliString, Pauli, expectation};
/// use qmarl_qsim::state::StateVector;
///
/// let obs = PauliString::z(0);
/// let psi = StateVector::zero(2);
/// assert!((expectation(&psi, &obs)? - 1.0).abs() < 1e-12); // ⟨0|Z|0⟩ = +1
/// # Ok::<(), qmarl_qsim::error::QsimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PauliString {
    factors: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// The empty product (identity observable).
    pub fn identity() -> Self {
        PauliString {
            factors: Vec::new(),
        }
    }

    /// Single-wire `Z_q` — the readout used by the paper's VQCs.
    pub fn z(q: usize) -> Self {
        PauliString {
            factors: vec![(q, Pauli::Z)],
        }
    }

    /// Single-wire `X_q`.
    pub fn x(q: usize) -> Self {
        PauliString {
            factors: vec![(q, Pauli::X)],
        }
    }

    /// Single-wire `Y_q`.
    pub fn y(q: usize) -> Self {
        PauliString {
            factors: vec![(q, Pauli::Y)],
        }
    }

    /// Builds a string from `(wire, Pauli)` factors. Later factors on the
    /// same wire replace earlier ones; identity factors are dropped.
    pub fn from_factors<I: IntoIterator<Item = (usize, Pauli)>>(factors: I) -> Self {
        let mut out: Vec<(usize, Pauli)> = Vec::new();
        for (q, p) in factors {
            out.retain(|(q2, _)| *q2 != q);
            if p != Pauli::I {
                out.push((q, p));
            }
        }
        out.sort_by_key(|(q, _)| *q);
        PauliString { factors: out }
    }

    /// Adds a factor, replacing any existing factor on that wire.
    pub fn with(mut self, q: usize, p: Pauli) -> Self {
        self.factors.retain(|(q2, _)| *q2 != q);
        if p != Pauli::I {
            self.factors.push((q, p));
            self.factors.sort_by_key(|(q, _)| *q);
        }
        self
    }

    /// The `(wire, Pauli)` factors, sorted by wire.
    pub fn factors(&self) -> &[(usize, Pauli)] {
        &self.factors
    }

    /// The highest wire index referenced, or `None` for the identity.
    pub fn max_qubit(&self) -> Option<usize> {
        self.factors.iter().map(|(q, _)| *q).max()
    }

    /// Applies the string to a copy of `state`, returning `P|ψ⟩`.
    fn apply_to(&self, state: &StateVector) -> Result<StateVector, QsimError> {
        let mut out = state.clone();
        for &(q, p) in &self.factors {
            if q >= state.n_qubits() {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: state.n_qubits(),
                });
            }
            let amps = out.amplitudes_mut();
            let mask = 1usize << q;
            match p {
                Pauli::I => {}
                Pauli::X => {
                    for i in 0..amps.len() {
                        if i & mask == 0 {
                            amps.swap(i, i | mask);
                        }
                    }
                }
                Pauli::Y => {
                    for i in 0..amps.len() {
                        if i & mask == 0 {
                            let a0 = amps[i];
                            let a1 = amps[i | mask];
                            // Y = [[0, −i], [i, 0]]
                            amps[i] = Complex64::new(a1.im, -a1.re);
                            amps[i | mask] = Complex64::new(-a0.im, a0.re);
                        }
                    }
                }
                Pauli::Z => {
                    for (i, a) in amps.iter_mut().enumerate() {
                        if i & mask != 0 {
                            *a = -*a;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The expectation value `⟨ψ|P|ψ⟩` of a Pauli string (always real).
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] if the string references a wire
/// outside the register.
pub fn expectation(state: &StateVector, obs: &PauliString) -> Result<f64, QsimError> {
    // Fast path: diagonal (Z-only) strings need no state copy.
    if obs.factors.iter().all(|(_, p)| *p == Pauli::Z) {
        let mut mask = 0usize;
        for &(q, _) in &obs.factors {
            if q >= state.n_qubits() {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: state.n_qubits(),
                });
            }
            mask |= 1usize << q;
        }
        let mut acc = 0.0;
        for (i, a) in state.amplitudes().iter().enumerate() {
            let parity = (i & mask).count_ones() & 1;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            acc += sign * a.norm_sqr();
        }
        return Ok(acc);
    }
    let transformed = obs.apply_to(state)?;
    Ok(state.inner(&transformed)?.re)
}

/// The `⟨Z_q⟩` expectation — the per-wire readout of Fig. 1's measurement
/// step, equal to `P(q=0) − P(q=1)`.
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
pub fn expectation_z(state: &StateVector, q: usize) -> Result<f64, QsimError> {
    if q >= state.n_qubits() {
        return Err(QsimError::QubitOutOfRange {
            qubit: q,
            n_qubits: state.n_qubits(),
        });
    }
    let mask = 1usize << q;
    let mut acc = 0.0;
    for (i, a) in state.amplitudes().iter().enumerate() {
        if i & mask == 0 {
            acc += a.norm_sqr();
        } else {
            acc -= a.norm_sqr();
        }
    }
    Ok(acc)
}

/// All per-wire `⟨Z⟩` readouts, wire 0 first.
pub fn expectation_z_all(state: &StateVector) -> Vec<f64> {
    (0..state.n_qubits())
        .map(|q| expectation_z(state, q).expect("wire in range by construction"))
        .collect()
}

/// Samples a computational-basis outcome index according to the Born rule.
pub fn sample_basis<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> usize {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, a) in state.amplitudes().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i;
        }
    }
    state.len() - 1
}

/// Projectively measures qubit `q`, collapsing the state in place.
/// Returns the observed bit.
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
pub fn measure_qubit<R: Rng + ?Sized>(
    state: &mut StateVector,
    q: usize,
    rng: &mut R,
) -> Result<bool, QsimError> {
    let p1 = state.prob_qubit_one(q)?;
    let outcome = rng.gen::<f64>() < p1;
    let mask = 1usize << q;
    let keep_set = outcome;
    for (i, a) in state.amplitudes_mut().iter_mut().enumerate() {
        if (i & mask != 0) != keep_set {
            *a = Complex64::ZERO;
        }
    }
    state.renormalize();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z_expectation_of_basis_states() {
        let s0 = StateVector::zero(1);
        assert!((expectation_z(&s0, 0).unwrap() - 1.0).abs() < 1e-15);
        let s1 = StateVector::basis(1, 1).unwrap();
        assert!((expectation_z(&s1, 0).unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn z_expectation_after_ry_matches_cos() {
        for theta in [0.0, 0.3, 1.1, 2.2, std::f64::consts::PI] {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &Gate1::ry(theta)).unwrap();
            assert!(
                (expectation_z(&s, 0).unwrap() - theta.cos()).abs() < 1e-12,
                "theta={theta}"
            );
        }
    }

    #[test]
    fn x_expectation_of_plus_state() {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        assert!((expectation(&s, &PauliString::x(0)).unwrap() - 1.0).abs() < 1e-12);
        assert!(expectation_z(&s, 0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn y_expectation_of_circular_state() {
        // S·H|0⟩ = (|0⟩ + i|1⟩)/√2 has ⟨Y⟩ = +1.
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_gate1(0, &Gate1::s()).unwrap();
        assert!((expectation(&s, &PauliString::y(0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_correlation_of_bell_pair() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let zz = PauliString::from_factors([(0, Pauli::Z), (1, Pauli::Z)]);
        assert!((expectation(&s, &zz).unwrap() - 1.0).abs() < 1e-12);
        let xx = PauliString::from_factors([(0, Pauli::X), (1, Pauli::X)]);
        assert!((expectation(&s, &xx).unwrap() - 1.0).abs() < 1e-12);
        // Single-qubit marginals are maximally mixed.
        assert!(expectation_z(&s, 0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn identity_expectation_is_one() {
        let mut s = StateVector::zero(3);
        s.apply_gate1(1, &Gate1::ry(0.9)).unwrap();
        assert!((expectation(&s, &PauliString::identity()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_observable_rejected() {
        let s = StateVector::zero(2);
        assert!(expectation(&s, &PauliString::z(5)).is_err());
        assert!(expectation(&s, &PauliString::x(2)).is_err());
        assert!(expectation_z(&s, 2).is_err());
    }

    #[test]
    fn from_factors_dedups_and_sorts() {
        let p =
            PauliString::from_factors([(3, Pauli::X), (1, Pauli::Z), (3, Pauli::Y), (0, Pauli::I)]);
        assert_eq!(p.factors(), &[(1, Pauli::Z), (3, Pauli::Y)]);
        assert_eq!(p.max_qubit(), Some(3));
        assert_eq!(PauliString::identity().max_qubit(), None);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::ry(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[sample_basis(&s, &mut rng)] += 1;
        }
        let probs = s.probabilities();
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "basis {i}: {freq} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn measurement_collapses_state() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut s = StateVector::zero(2);
            s.apply_gate1(0, &Gate1::hadamard()).unwrap();
            s.apply_cnot(0, 1).unwrap();
            let bit0 = measure_qubit(&mut s, 0, &mut rng).unwrap();
            // Bell pair: qubit 1 must agree with qubit 0 deterministically.
            let p1 = s.prob_qubit_one(1).unwrap();
            if bit0 {
                assert!((p1 - 1.0).abs() < 1e-12);
            } else {
                assert!(p1 < 1e-12);
            }
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expectation_values_bounded() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::u3(0.7 * q as f64, 0.2, 1.4))
                .unwrap();
        }
        for q in 0..3 {
            let z = expectation_z(&s, q).unwrap();
            assert!((-1.0..=1.0).contains(&z));
        }
        let all = expectation_z_all(&s);
        assert_eq!(all.len(), 3);
    }
}
