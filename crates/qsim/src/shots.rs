//! Finite-shot measurement: estimating expectations from samples.
//!
//! Real quantum hardware never returns exact expectation values — it
//! returns `n_shots` computational-basis samples, and `⟨Z_q⟩` is estimated
//! as the mean of `±1` outcomes. Everything downstream (policies, values,
//! gradients) then carries *shot noise* of magnitude `O(1/√shots)`. This
//! module provides the sampled readout path used by the shot-budget
//! ablation; the exact path in [`crate::measure`] is the
//! `shots → ∞` limit.

use rand::Rng;

use crate::density::DensityMatrix;
use crate::error::QsimError;
use crate::state::StateVector;

/// A batch of computational-basis measurement outcomes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShotRecord {
    counts: Vec<(usize, usize)>,
    shots: usize,
    n_qubits: usize,
}

impl ShotRecord {
    /// Total number of shots taken.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// `(basis index, count)` pairs, sorted by basis index; zero-count
    /// outcomes are omitted.
    pub fn counts(&self) -> &[(usize, usize)] {
        &self.counts
    }

    /// The empirical probability of a basis outcome.
    pub fn frequency(&self, index: usize) -> f64 {
        self.counts
            .iter()
            .find(|(i, _)| *i == index)
            .map_or(0.0, |(_, c)| *c as f64 / self.shots as f64)
    }

    /// The shot-estimated `⟨Z_q⟩`: mean of `+1` (bit clear) / `−1`
    /// (bit set) over the recorded outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn expectation_z(&self, q: usize) -> Result<f64, QsimError> {
        if q >= self.n_qubits {
            return Err(QsimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        let mask = 1usize << q;
        let mut acc = 0i64;
        for &(i, c) in &self.counts {
            if i & mask == 0 {
                acc += c as i64;
            } else {
                acc -= c as i64;
            }
        }
        Ok(acc as f64 / self.shots as f64)
    }

    /// Shot-estimated `⟨Z⟩` on every wire. One sample batch serves all
    /// wires because the `Z_q` all commute.
    pub fn expectation_z_all(&self) -> Vec<f64> {
        (0..self.n_qubits)
            .map(|q| {
                self.expectation_z(q)
                    .expect("wire in range by construction")
            })
            .collect()
    }
}

/// Measures `shots` computational-basis samples from a state.
///
/// # Errors
///
/// Returns [`QsimError::InvalidProbability`] when `shots == 0`.
pub fn measure_shots<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Result<ShotRecord, QsimError> {
    measure_shots_probs(&state.probabilities(), state.n_qubits(), shots, rng)
}

/// Measures `shots` computational-basis samples from a mixed state: the
/// density-matrix twin of [`measure_shots`], sampling the diagonal of
/// `ρ` — the finite-shot readout of noisy hardware execution.
///
/// # Errors
///
/// Returns [`QsimError::InvalidProbability`] when `shots == 0`.
pub fn measure_shots_density<R: Rng + ?Sized>(
    rho: &DensityMatrix,
    shots: usize,
    rng: &mut R,
) -> Result<ShotRecord, QsimError> {
    // Kraus arithmetic can leave the diagonal a rounding error below
    // zero; clamp so physical states always sample.
    let probs: Vec<f64> = rho.probabilities().iter().map(|p| p.max(0.0)).collect();
    measure_shots_probs(&probs, rho.n_qubits(), shots, rng)
}

/// Measures `shots` samples from an explicit computational-basis
/// distribution (shared by the pure- and mixed-state entry points).
///
/// # Errors
///
/// Returns [`QsimError::InvalidProbability`] when `shots == 0` or any
/// entry is negative/non-finite, and [`QsimError::InvalidDimension`]
/// when the distribution does not cover an `n_qubits` register.
pub fn measure_shots_probs<R: Rng + ?Sized>(
    probs: &[f64],
    n_qubits: usize,
    shots: usize,
    rng: &mut R,
) -> Result<ShotRecord, QsimError> {
    if shots == 0 {
        return Err(QsimError::InvalidProbability { value: 0.0 });
    }
    if probs.len() != 1usize << n_qubits {
        return Err(QsimError::InvalidDimension { len: probs.len() });
    }
    if let Some(&bad) = probs.iter().find(|p| !p.is_finite() || **p < 0.0) {
        return Err(QsimError::InvalidProbability { value: bad });
    }
    // A zero-mass distribution has no state to sample; rejecting it here
    // keeps the sampler's no-zero-probability-outcome guarantee total.
    if probs.iter().sum::<f64>() <= 0.0 {
        return Err(QsimError::NotNormalized { norm: 0.0 });
    }
    // Inverse-CDF sampling over the cumulative distribution; for the few
    // thousand shots typical of NISQ jobs a per-shot scan of the 2^n
    // probabilities is fine at this register size, but we presort once.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in probs {
        acc += p;
        cdf.push(acc);
    }
    let mut histogram = vec![0usize; probs.len()];
    for _ in 0..shots {
        let r: f64 = rng.gen::<f64>() * acc;
        // `c <= r` (not `c < r`) keeps zero-probability states out of
        // reach: a flat CDF segment contributes an empty interval, so in
        // particular `r == 0.0` lands on the first *positive*-mass state,
        // never on a zero-amplitude prefix entry.
        let mut idx = cdf.partition_point(|&c| c <= r);
        if idx >= probs.len() {
            // `gen::<f64>() * acc` can round up to `acc` itself; fold the
            // boundary onto the last positive-mass state.
            idx = probs.iter().rposition(|&p| p > 0.0).unwrap_or(0);
        }
        debug_assert!(probs[idx] > 0.0, "sampled a zero-probability state");
        histogram[idx] += 1;
    }
    let counts: Vec<(usize, usize)> = histogram
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .collect();
    Ok(ShotRecord {
        counts,
        shots,
        n_qubits,
    })
}

/// The standard error of a shot-estimated `⟨Z⟩` with true value `z`:
/// `√((1 − z²) / shots)`.
pub fn z_standard_error(z: f64, shots: usize) -> f64 {
    ((1.0 - z * z).max(0.0) / shots as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_measures_deterministically() {
        let s = StateVector::basis(3, 0b101).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let rec = measure_shots(&s, 100, &mut rng).unwrap();
        assert_eq!(rec.shots(), 100);
        assert_eq!(rec.counts(), &[(0b101, 100)]);
        assert_eq!(rec.frequency(0b101), 1.0);
        assert_eq!(rec.frequency(0b000), 0.0);
        assert_eq!(rec.expectation_z(0).unwrap(), -1.0);
        assert_eq!(rec.expectation_z(1).unwrap(), 1.0);
    }

    #[test]
    fn estimates_converge_to_exact() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::ry(0.9)).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let exact = crate::measure::expectation_z_all(&s);
        let mut rng = StdRng::seed_from_u64(5);
        let rec = measure_shots(&s, 200_000, &mut rng).unwrap();
        for (q, &e) in exact.iter().enumerate() {
            let est = rec.expectation_z(q).unwrap();
            assert!((est - e).abs() < 0.01, "wire {q}: {est} vs {e}");
        }
    }

    #[test]
    fn error_shrinks_with_shot_count() {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap(); // ⟨Z⟩ = 0, max variance
        let spread = |shots: usize| -> f64 {
            let mut errs = Vec::new();
            for seed in 0..30 {
                let mut rng = StdRng::seed_from_u64(seed);
                let rec = measure_shots(&s, shots, &mut rng).unwrap();
                errs.push(rec.expectation_z(0).unwrap().abs());
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let coarse = spread(16);
        let fine = spread(4096);
        assert!(
            fine < coarse / 3.0,
            "shot noise must shrink ~1/√shots: {coarse} vs {fine}"
        );
    }

    #[test]
    fn one_batch_serves_all_wires() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::ry(0.4 + q as f64)).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(9);
        let rec = measure_shots(&s, 10_000, &mut rng).unwrap();
        let all = rec.expectation_z_all();
        assert_eq!(all.len(), 3);
        for (q, est) in all.iter().enumerate() {
            let exact = crate::measure::expectation_z(&s, q).unwrap();
            assert!((est - exact).abs() < 0.05, "wire {q}");
        }
    }

    #[test]
    fn zero_shots_rejected_and_bad_wire() {
        let s = StateVector::zero(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(measure_shots(&s, 0, &mut rng).is_err());
        let rec = measure_shots(&s, 10, &mut rng).unwrap();
        assert!(rec.expectation_z(5).is_err());
    }

    #[test]
    fn seeded_measurement_is_reproducible() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(1, &Gate1::ry(1.2)).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            measure_shots(&s, 500, &mut rng).unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn standard_error_formula() {
        assert!((z_standard_error(0.0, 100) - 0.1).abs() < 1e-12);
        assert_eq!(z_standard_error(1.0, 100), 0.0);
        assert!((z_standard_error(0.6, 400) - (0.64f64 / 400.0).sqrt()).abs() < 1e-12);
    }

    /// An RNG that always returns 0, forcing `r == 0.0` in the sampler.
    struct ZeroRng;
    impl rand::RngCore for ZeroRng {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn zero_probability_prefix_is_never_sampled() {
        // Amplitude 0 is *exactly* zero: |ψ⟩ = |1⟩ on one wire. The old
        // `partition_point(|&c| c < r)` selected basis state 0 whenever
        // r == 0.0 because the zero-mass prefix entry satisfies `c < 0.0`
        // for no c but `partition_point` returns index 0.
        let s = StateVector::basis(1, 1).unwrap();
        let mut zero = ZeroRng;
        let rec = measure_shots(&s, 50, &mut zero).unwrap();
        assert_eq!(rec.counts(), &[(1, 50)], "r == 0.0 must skip P=0 states");

        // The same holds for interior flat CDF segments.
        let probs = [0.5, 0.0, 0.5, 0.0];
        let mut rng = StdRng::seed_from_u64(3);
        let rec = measure_shots_probs(&probs, 2, 4096, &mut rng).unwrap();
        assert_eq!(rec.frequency(1), 0.0, "flat CDF segment must be skipped");
        assert!(rec.frequency(0) > 0.3 && rec.frequency(2) > 0.3);
    }

    #[test]
    fn explicit_distributions_are_validated() {
        let mut rng = StdRng::seed_from_u64(1);
        // Length must cover the claimed register.
        assert!(matches!(
            measure_shots_probs(&[0.5, 0.5, 0.0], 1, 10, &mut rng),
            Err(QsimError::InvalidDimension { len: 3 })
        ));
        // Negative and non-finite masses are rejected, not silently
        // folded into the CDF.
        assert!(measure_shots_probs(&[1.5, -0.5], 1, 10, &mut rng).is_err());
        assert!(measure_shots_probs(&[f64::NAN, 1.0], 1, 10, &mut rng).is_err());
        // Zero total mass leaves nothing to sample.
        assert!(matches!(
            measure_shots_probs(&[0.0, 0.0], 1, 10, &mut rng),
            Err(QsimError::NotNormalized { .. })
        ));
        assert!(measure_shots_probs(&[0.5, 0.5], 1, 10, &mut rng).is_ok());
    }

    #[test]
    fn density_shots_match_pure_state_distribution() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::ry(0.9)).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let rho = crate::density::DensityMatrix::from_state_vector(&s);
        let mut rng = StdRng::seed_from_u64(7);
        let rec = measure_shots_density(&rho, 100_000, &mut rng).unwrap();
        for q in 0..2 {
            let exact = crate::measure::expectation_z(&s, q).unwrap();
            let est = rec.expectation_z(q).unwrap();
            assert!((est - exact).abs() < 0.02, "wire {q}: {est} vs {exact}");
        }
        assert!(measure_shots_density(&rho, 0, &mut rng).is_err());
    }

    #[test]
    fn density_shots_skip_zero_probability_rows() {
        // A rank-one mixed state whose diagonal has exact zeros —
        // including a zero *prefix* and interior flat CDF segments. The
        // shared inverse-CDF sampler must never land on a zero-mass row,
        // whatever the rounding of the running sum.
        use crate::complex::Complex64;
        let dim = 8usize;
        let mut flat = vec![Complex64::ZERO; dim * dim];
        // diag = [0, 0.25, 0, 0, 0.5, 0, 0.25, 0]: zero prefix, two
        // interior flat segments, zero tail.
        for (i, p) in [(1usize, 0.25), (4, 0.5), (6, 0.25)] {
            flat[i * dim + i] = Complex64::from_real(p);
        }
        let rho = crate::density::DensityMatrix::from_flat(3, flat);
        let mut rng = StdRng::seed_from_u64(11);
        let rec = measure_shots_density(&rho, 50_000, &mut rng).unwrap();
        for &(idx, count) in rec.counts() {
            assert!(
                matches!(idx, 1 | 4 | 6),
                "sampled zero-probability outcome {idx} ({count} times)"
            );
        }
        assert!((rec.frequency(4) - 0.5).abs() < 0.02);
        assert_eq!(rec.frequency(0), 0.0);
        assert_eq!(rec.frequency(7), 0.0);
    }

    #[test]
    fn density_shots_clamp_negative_rounding_noise() {
        // Kraus arithmetic can leave diagonal entries a rounding error
        // below zero; the density entry point clamps them before the
        // positivity check so physical states always sample.
        use crate::complex::Complex64;
        let dim = 4usize;
        let mut flat = vec![Complex64::ZERO; dim * dim];
        flat[0] = Complex64::from_real(-1e-17);
        flat[5] = Complex64::from_real(1.0);
        let rho = crate::density::DensityMatrix::from_flat(2, flat);
        let mut rng = StdRng::seed_from_u64(3);
        let rec = measure_shots_density(&rho, 1000, &mut rng).unwrap();
        assert_eq!(rec.counts(), &[(1, 1000)]);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::hadamard()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(17);
        let rec = measure_shots(&s, 4096, &mut rng).unwrap();
        let total: f64 = (0..8).map(|i| rec.frequency(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
