//! Finite-shot measurement: estimating expectations from samples.
//!
//! Real quantum hardware never returns exact expectation values — it
//! returns `n_shots` computational-basis samples, and `⟨Z_q⟩` is estimated
//! as the mean of `±1` outcomes. Everything downstream (policies, values,
//! gradients) then carries *shot noise* of magnitude `O(1/√shots)`. This
//! module provides the sampled readout path used by the shot-budget
//! ablation; the exact path in [`crate::measure`] is the
//! `shots → ∞` limit.

use rand::Rng;

use crate::error::QsimError;
use crate::state::StateVector;

/// A batch of computational-basis measurement outcomes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShotRecord {
    counts: Vec<(usize, usize)>,
    shots: usize,
    n_qubits: usize,
}

impl ShotRecord {
    /// Total number of shots taken.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// `(basis index, count)` pairs, sorted by basis index; zero-count
    /// outcomes are omitted.
    pub fn counts(&self) -> &[(usize, usize)] {
        &self.counts
    }

    /// The empirical probability of a basis outcome.
    pub fn frequency(&self, index: usize) -> f64 {
        self.counts
            .iter()
            .find(|(i, _)| *i == index)
            .map_or(0.0, |(_, c)| *c as f64 / self.shots as f64)
    }

    /// The shot-estimated `⟨Z_q⟩`: mean of `+1` (bit clear) / `−1`
    /// (bit set) over the recorded outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn expectation_z(&self, q: usize) -> Result<f64, QsimError> {
        if q >= self.n_qubits {
            return Err(QsimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        let mask = 1usize << q;
        let mut acc = 0i64;
        for &(i, c) in &self.counts {
            if i & mask == 0 {
                acc += c as i64;
            } else {
                acc -= c as i64;
            }
        }
        Ok(acc as f64 / self.shots as f64)
    }

    /// Shot-estimated `⟨Z⟩` on every wire. One sample batch serves all
    /// wires because the `Z_q` all commute.
    pub fn expectation_z_all(&self) -> Vec<f64> {
        (0..self.n_qubits)
            .map(|q| {
                self.expectation_z(q)
                    .expect("wire in range by construction")
            })
            .collect()
    }
}

/// Measures `shots` computational-basis samples from a state.
///
/// # Errors
///
/// Returns [`QsimError::InvalidProbability`] when `shots == 0`.
pub fn measure_shots<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Result<ShotRecord, QsimError> {
    if shots == 0 {
        return Err(QsimError::InvalidProbability { value: 0.0 });
    }
    // Inverse-CDF sampling over the cumulative distribution; for the few
    // thousand shots typical of NISQ jobs a per-shot scan of the 2^n
    // probabilities is fine at this register size, but we presort once.
    let probs = state.probabilities();
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let mut histogram = vec![0usize; probs.len()];
    for _ in 0..shots {
        let r: f64 = rng.gen::<f64>() * acc;
        let idx = cdf.partition_point(|&c| c < r).min(probs.len() - 1);
        histogram[idx] += 1;
    }
    let counts: Vec<(usize, usize)> = histogram
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .collect();
    Ok(ShotRecord {
        counts,
        shots,
        n_qubits: state.n_qubits(),
    })
}

/// The standard error of a shot-estimated `⟨Z⟩` with true value `z`:
/// `√((1 − z²) / shots)`.
pub fn z_standard_error(z: f64, shots: usize) -> f64 {
    ((1.0 - z * z).max(0.0) / shots as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_measures_deterministically() {
        let s = StateVector::basis(3, 0b101).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let rec = measure_shots(&s, 100, &mut rng).unwrap();
        assert_eq!(rec.shots(), 100);
        assert_eq!(rec.counts(), &[(0b101, 100)]);
        assert_eq!(rec.frequency(0b101), 1.0);
        assert_eq!(rec.frequency(0b000), 0.0);
        assert_eq!(rec.expectation_z(0).unwrap(), -1.0);
        assert_eq!(rec.expectation_z(1).unwrap(), 1.0);
    }

    #[test]
    fn estimates_converge_to_exact() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::ry(0.9)).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let exact = crate::measure::expectation_z_all(&s);
        let mut rng = StdRng::seed_from_u64(5);
        let rec = measure_shots(&s, 200_000, &mut rng).unwrap();
        for (q, &e) in exact.iter().enumerate() {
            let est = rec.expectation_z(q).unwrap();
            assert!((est - e).abs() < 0.01, "wire {q}: {est} vs {e}");
        }
    }

    #[test]
    fn error_shrinks_with_shot_count() {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap(); // ⟨Z⟩ = 0, max variance
        let spread = |shots: usize| -> f64 {
            let mut errs = Vec::new();
            for seed in 0..30 {
                let mut rng = StdRng::seed_from_u64(seed);
                let rec = measure_shots(&s, shots, &mut rng).unwrap();
                errs.push(rec.expectation_z(0).unwrap().abs());
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let coarse = spread(16);
        let fine = spread(4096);
        assert!(
            fine < coarse / 3.0,
            "shot noise must shrink ~1/√shots: {coarse} vs {fine}"
        );
    }

    #[test]
    fn one_batch_serves_all_wires() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::ry(0.4 + q as f64)).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(9);
        let rec = measure_shots(&s, 10_000, &mut rng).unwrap();
        let all = rec.expectation_z_all();
        assert_eq!(all.len(), 3);
        for (q, est) in all.iter().enumerate() {
            let exact = crate::measure::expectation_z(&s, q).unwrap();
            assert!((est - exact).abs() < 0.05, "wire {q}");
        }
    }

    #[test]
    fn zero_shots_rejected_and_bad_wire() {
        let s = StateVector::zero(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(measure_shots(&s, 0, &mut rng).is_err());
        let rec = measure_shots(&s, 10, &mut rng).unwrap();
        assert!(rec.expectation_z(5).is_err());
    }

    #[test]
    fn seeded_measurement_is_reproducible() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(1, &Gate1::ry(1.2)).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            measure_shots(&s, 500, &mut rng).unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn standard_error_formula() {
        assert!((z_standard_error(0.0, 100) - 0.1).abs() < 1e-12);
        assert_eq!(z_standard_error(1.0, 100), 0.0);
        assert!((z_standard_error(0.6, 400) - (0.64f64 / 400.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply_gate1(q, &Gate1::hadamard()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(17);
        let rec = measure_shots(&s, 4096, &mut rng).unwrap();
        let total: f64 = (0..8).map(|i| rec.frequency(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
