//! # qmarl-qsim — exact quantum circuit simulation for QMARL
//!
//! The quantum substrate of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443): an exact
//! statevector simulator, a density-matrix backend with NISQ noise
//! channels, a gate library, measurement primitives and the Bloch/HLS
//! visualisation used by the paper's Fig. 4.
//!
//! The paper ran its experiments on `torchquantum`'s simulator; this crate
//! plays that role (see `DESIGN.md` §1 for the substitution argument).
//!
//! ## Quick example
//!
//! ```
//! use qmarl_qsim::prelude::*;
//!
//! // Build a Bell pair and read out ⟨Z₀Z₁⟩ = 1.
//! let mut psi = StateVector::zero(2);
//! psi.apply_gate1(0, &Gate1::hadamard())?;
//! psi.apply_cnot(0, 1)?;
//! let zz = PauliString::from_factors([(0, Pauli::Z), (1, Pauli::Z)]);
//! assert!((expectation(&psi, &zz)? - 1.0).abs() < 1e-12);
//! # Ok::<(), qmarl_qsim::error::QsimError>(())
//! ```
//!
//! ## Conventions
//!
//! * **Little-endian**: qubit `q` is bit `q` of the basis index.
//! * All angles are radians; `Rσ(θ) = e^{−iθσ/2}`.
//! * `f64` precision throughout; states stay normalised to ~1e-12 under
//!   unitary evolution (property-tested).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod bloch;
pub mod complex;
pub mod density;
pub mod error;
pub mod gate;
pub mod measure;
pub mod noise;
pub mod par;
pub mod rows;
pub mod shots;
pub mod simd;
pub mod state;
pub mod superop;
#[cfg(target_arch = "x86_64")]
mod wide;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::bloch::{amplitude_color, amplitude_grid, bloch_vector, BlochVector, Rgb};
    pub use crate::complex::Complex64;
    pub use crate::density::DensityMatrix;
    pub use crate::error::QsimError;
    pub use crate::gate::{Gate1, Gate2, RotationAxis};
    pub use crate::measure::{
        expectation, expectation_z, expectation_z_all, measure_qubit, sample_basis, Pauli,
        PauliString,
    };
    pub use crate::noise::{NoiseChannel, NoiseModel};
    pub use crate::shots::{measure_shots, z_standard_error, ShotRecord};
    pub use crate::state::StateVector;
}
