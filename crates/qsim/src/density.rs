//! The density-matrix backend: mixed states for NISQ noise modelling.
//!
//! The paper motivates its state-encoding design by the growth of quantum
//! errors with register size in the NISQ era, and names noisy execution on
//! real quantum clouds as future work. This backend makes that mechanism
//! simulable: a [`DensityMatrix`] evolves under the same gate set as
//! [`StateVector`](crate::state::StateVector) but additionally supports
//! completely-positive trace-preserving channels via Kraus operators
//! (see [`crate::noise`]).

use crate::complex::Complex64;
use crate::error::QsimError;
use crate::gate::{Gate1, Gate2};
use crate::state::StateVector;

/// A mixed `n`-qubit state: a `2^n × 2^n` Hermitian, unit-trace matrix,
/// stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or too large to simulate (≥ 14, since
    /// the density matrix is quadratically bigger than a statevector).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "register must have at least one qubit");
        assert!(
            n_qubits < 14,
            "density matrix of {n_qubits} qubits is too large"
        );
        let dim = 1usize << n_qubits;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// The rank-one density matrix `|ψ⟩⟨ψ|` of a pure state.
    pub fn from_state_vector(psi: &StateVector) -> Self {
        let dim = psi.len();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for (r, ar) in psi.amplitudes().iter().enumerate() {
            for (c, ac) in psi.amplitudes().iter().enumerate() {
                data[r * dim + c] = *ar * ac.conj();
            }
        }
        DensityMatrix {
            n_qubits: psi.n_qubits(),
            dim,
            data,
        }
    }

    /// Builds a density matrix from its row-major flat data — the
    /// vectorized form the superoperator backend evolves (index bits
    /// `0‥n` are the column, bits `n‥2n` the row; see
    /// [`crate::superop`]). No Hermiticity or trace check is performed:
    /// the caller owns the physicality of the state.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 4^n_qubits` or the register size is
    /// outside the bounds of [`DensityMatrix::zero`].
    pub fn from_flat(n_qubits: usize, data: Vec<Complex64>) -> Self {
        assert!(n_qubits > 0, "register must have at least one qubit");
        assert!(
            n_qubits < 14,
            "density matrix of {n_qubits} qubits is too large"
        );
        let dim = 1usize << n_qubits;
        assert_eq!(
            data.len(),
            dim * dim,
            "flat density data must hold dim² elements"
        );
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let mut dm = DensityMatrix::zero(n_qubits);
        let dim = dm.dim;
        dm.data.fill(Complex64::ZERO);
        let w = 1.0 / dim as f64;
        for i in 0..dim {
            dm.data[i * dim + i] = Complex64::from_real(w);
        }
        dm
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Matrix dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The matrix element `ρ[r][c]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn element(&self, r: usize, c: usize) -> Complex64 {
        assert!(r < self.dim && c < self.dim);
        self.data[r * self.dim + c]
    }

    /// The trace (1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i]).sum()
    }

    /// The purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state. This is the quantity the noise ablation tracks.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr}; ρ is Hermitian so ρ_{cr} = ρ_{rc}*.
        self.data.iter().map(|e| e.norm_sqr()).sum()
    }

    fn check_qubit(&self, q: usize) -> Result<(), QsimError> {
        if q >= self.n_qubits {
            Err(QsimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit unitary: `ρ → U ρ U†`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn apply_gate1(&mut self, q: usize, gate: &Gate1) -> Result<(), QsimError> {
        self.check_qubit(q)?;
        let dim = self.dim;
        // Left-multiply by U: treat each column as a statevector over rows.
        for c in 0..dim {
            let mut col: Vec<Complex64> = (0..dim).map(|r| self.data[r * dim + c]).collect();
            crate::apply::apply_gate1(&mut col, q, gate);
            for (r, v) in col.into_iter().enumerate() {
                self.data[r * dim + c] = v;
            }
        }
        // Right-multiply by U†: rows transform with the conjugate matrix,
        // since (ρU†)_{rc} = Σ_k ρ_{rk} (U†)_{kc} = Σ_k ρ_{rk} conj(U_{ck}).
        let conj = conj_gate1(gate);
        for r in 0..dim {
            let row = &mut self.data[r * dim..(r + 1) * dim];
            crate::apply::apply_gate1(row, q, &conj);
        }
        Ok(())
    }

    /// Applies a two-qubit unitary: `ρ → U ρ U†`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] or [`QsimError::DuplicateQubit`].
    pub fn apply_gate2(&mut self, qa: usize, qb: usize, gate: &Gate2) -> Result<(), QsimError> {
        self.check_qubit(qa)?;
        self.check_qubit(qb)?;
        if qa == qb {
            return Err(QsimError::DuplicateQubit { qubit: qa });
        }
        let dim = self.dim;
        for c in 0..dim {
            let mut col: Vec<Complex64> = (0..dim).map(|r| self.data[r * dim + c]).collect();
            crate::apply::apply_gate2(&mut col, qa, qb, gate);
            for (r, v) in col.into_iter().enumerate() {
                self.data[r * dim + c] = v;
            }
        }
        let conj = conj_gate2(gate);
        for r in 0..dim {
            let row = &mut self.data[r * dim..(r + 1) * dim];
            crate::apply::apply_gate2(row, qa, qb, &conj);
        }
        Ok(())
    }

    /// Applies a quantum channel given by single-qubit Kraus operators
    /// `{K_i}` on wire `q`: `ρ → Σ_i K_i ρ K_i†`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn apply_kraus1(&mut self, q: usize, kraus: &[Gate1]) -> Result<(), QsimError> {
        self.check_qubit(q)?;
        let dim = self.dim;
        let mut acc = vec![Complex64::ZERO; dim * dim];
        for k in kraus {
            let mut term = self.data.clone();
            // K ρ
            for c in 0..dim {
                let mut col: Vec<Complex64> = (0..dim).map(|r| term[r * dim + c]).collect();
                crate::apply::apply_gate1(&mut col, q, k);
                for (r, v) in col.into_iter().enumerate() {
                    term[r * dim + c] = v;
                }
            }
            // (K ρ) K†
            let conj = conj_gate1(k);
            for r in 0..dim {
                let row = &mut term[r * dim..(r + 1) * dim];
                crate::apply::apply_gate1(row, q, &conj);
            }
            for (a, t) in acc.iter_mut().zip(&term) {
                *a += *t;
            }
        }
        self.data = acc;
        Ok(())
    }

    /// The expectation `Tr(ρ Z_q)`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
    pub fn expectation_z(&self, q: usize) -> Result<f64, QsimError> {
        self.check_qubit(q)?;
        let mask = 1usize << q;
        let mut acc = 0.0;
        for i in 0..self.dim {
            let sign = if i & mask == 0 { 1.0 } else { -1.0 };
            acc += sign * self.data[i * self.dim + i].re;
        }
        Ok(acc)
    }

    /// All per-wire `⟨Z⟩` readouts.
    pub fn expectation_z_all(&self) -> Vec<f64> {
        (0..self.n_qubits)
            .map(|q| {
                self.expectation_z(q)
                    .expect("wire in range by construction")
            })
            .collect()
    }

    /// The fidelity `⟨ψ|ρ|ψ⟩` against a pure reference state.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] for differing widths.
    pub fn fidelity_pure(&self, psi: &StateVector) -> Result<f64, QsimError> {
        if psi.n_qubits() != self.n_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.n_qubits,
                actual: psi.n_qubits(),
            });
        }
        let mut acc = Complex64::ZERO;
        for (r, ar) in psi.amplitudes().iter().enumerate() {
            for (c, ac) in psi.amplitudes().iter().enumerate() {
                acc += ar.conj() * self.data[r * self.dim + c] * *ac;
            }
        }
        Ok(acc.re)
    }

    /// Diagonal of ρ: the Born-rule probability of each basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re)
            .collect()
    }
}

/// Element-wise conjugate of a 2×2 gate (not the adjoint).
fn conj_gate1(g: &Gate1) -> Gate1 {
    let m = g.matrix();
    Gate1::from_matrix([
        [m[0][0].conj(), m[0][1].conj()],
        [m[1][0].conj(), m[1][1].conj()],
    ])
}

/// Element-wise conjugate of a 4×4 gate (not the adjoint).
fn conj_gate2(g: &Gate2) -> Gate2 {
    let m = g.matrix();
    let mut out = [[Complex64::ZERO; 4]; 4];
    for (r, row) in m.iter().enumerate() {
        for (c, e) in row.iter().enumerate() {
            out[r][c] = e.conj();
        }
    }
    Gate2::from_matrix(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate1, Gate2};
    use crate::measure;

    #[test]
    fn zero_state_has_unit_trace_and_purity() {
        let dm = DensityMatrix::zero(3);
        assert!((dm.trace().re - 1.0).abs() < 1e-15);
        assert!((dm.purity() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn maximally_mixed_purity() {
        let dm = DensityMatrix::maximally_mixed(2);
        assert!((dm.trace().re - 1.0).abs() < 1e-15);
        assert!((dm.purity() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        // Evolve the same circuit on both backends and compare ⟨Z⟩.
        let mut psi = StateVector::zero(3);
        let mut rho = DensityMatrix::zero(3);
        let ops: [(usize, Gate1); 4] = [
            (0, Gate1::hadamard()),
            (1, Gate1::rx(0.7)),
            (2, Gate1::ry(1.3)),
            (0, Gate1::rz(-0.4)),
        ];
        for (q, g) in &ops {
            psi.apply_gate1(*q, g).unwrap();
            rho.apply_gate1(*q, g).unwrap();
        }
        psi.apply_gate2(0, 2, &Gate2::cnot()).unwrap();
        rho.apply_gate2(0, 2, &Gate2::cnot()).unwrap();
        for q in 0..3 {
            let a = measure::expectation_z(&psi, q).unwrap();
            let b = rho.expectation_z(q).unwrap();
            assert!((a - b).abs() < 1e-10, "wire {q}: {a} vs {b}");
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_state_vector_is_projector() {
        let mut psi = StateVector::zero(2);
        psi.apply_gate1(0, &Gate1::hadamard()).unwrap();
        psi.apply_cnot(0, 1).unwrap();
        let rho = DensityMatrix::from_state_vector(&psi);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_pure(&psi).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::zero(2);
        rho.apply_gate1(0, &Gate1::ry(0.9)).unwrap();
        rho.apply_gate2(0, 1, &Gate2::crx(1.1)).unwrap();
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_identity_channel_is_noop() {
        let mut rho = DensityMatrix::zero(2);
        rho.apply_gate1(0, &Gate1::hadamard()).unwrap();
        let before = rho.clone();
        rho.apply_kraus1(0, &[Gate1::identity()]).unwrap();
        for (a, b) in rho.data.iter().zip(&before.data) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rho = DensityMatrix::zero(3);
        rho.apply_gate1(1, &Gate1::u3(0.4, 0.8, -0.3)).unwrap();
        let sum: f64 = rho.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_wires_rejected() {
        let mut rho = DensityMatrix::zero(2);
        assert!(rho.apply_gate1(2, &Gate1::pauli_x()).is_err());
        assert!(rho.apply_gate2(0, 0, &Gate2::cnot()).is_err());
        assert!(rho.expectation_z(3).is_err());
        let psi = StateVector::zero(3);
        assert!(rho.fidelity_pure(&psi).is_err());
    }
}
