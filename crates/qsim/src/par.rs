//! Work-queue parallelism for embarrassingly parallel simulator workloads.
//!
//! The QMARL hot paths — batched circuit evaluation, parameter-shift
//! gradient fan-out, multi-seed rollouts — are all "N independent tasks
//! over shared read-only inputs". This module provides one shared
//! scheduler for them: a flat work queue drained by scoped worker threads
//! through an atomic cursor, so long tasks never straggle behind a static
//! chunking (the failure mode of splitting the queue into equal slices up
//! front). Results land in input order regardless of which worker ran
//! which task, so parallel output is bit-identical to serial output.
//!
//! The scheduler is deliberately dependency-free (`std::thread::scope` +
//! `AtomicUsize`), keeping the whole workspace buildable offline.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sensible worker count for CPU-bound work: the machine's available
/// parallelism, falling back to 1 when it cannot be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(index, &items[index])` for every item on `workers` threads,
/// returning the results **in input order**.
///
/// Tasks are handed out one at a time through an atomic cursor (work
/// stealing degenerate case: a single shared queue), so heterogeneous
/// task costs balance automatically. `workers <= 1`, an empty queue, or a
/// single item all run inline on the caller's thread with no spawning.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = workers.min(n);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    collected.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] for fallible tasks. Every task runs to completion
/// (there is no early abort — the queue is already distributed across
/// workers); afterwards the lowest-indexed error, if any, is returned,
/// otherwise the ordered successes.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task.
pub fn try_parallel_map<T, R, E, F>(items: &[T], workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    parallel_map(items, workers, f).into_iter().collect()
}

/// [`parallel_map`] with per-task panic isolation: a panicking task
/// yields `Err(payload)` in its slot instead of tearing down the whole
/// map. Workers keep draining the queue after a panic, so one bad task
/// never poisons its siblings — the property long-running sweeps need
/// when a single cell dies.
///
/// The closure must be [`std::panic::UnwindSafe`] in spirit: it is run
/// under `catch_unwind(AssertUnwindSafe(..))`, which is sound here
/// because tasks only share read-only inputs and each writes its own
/// output slot. Use [`panic_message`] to render a payload for humans.
pub fn parallel_map_isolated<T, R, F>(
    items: &[T],
    workers: usize,
    f: F,
) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(items, workers, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)))
    })
}

/// Best-effort human-readable rendering of a panic payload: the `&str` /
/// `String` message when the panic used one, a placeholder otherwise
/// (typed payloads like injected kills should be downcast instead).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = parallel_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn balances_heterogeneous_tasks() {
        // Tasks of wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            (0..spins).fold(x, |acc, _| {
                std::hint::black_box(acc.wrapping_mul(31).wrapping_add(1))
            });
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn try_variant_returns_first_error_by_index() {
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, usize> =
            try_parallel_map(
                &items,
                8,
                |_, &x| {
                    if x == 41 || x == 73 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            );
        assert_eq!(res.unwrap_err(), 41);
        let ok: Result<Vec<usize>, usize> = try_parallel_map(&items, 8, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn isolated_map_contains_panics_without_poisoning_siblings() {
        // Silence the default hook's backtrace for the intentional panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 4] {
            let out = parallel_map_isolated(&items, workers, |_, &x| {
                if x % 13 == 5 {
                    panic!("task {x} exploded");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 5 {
                    let payload = r.as_ref().expect_err("should have panicked");
                    assert_eq!(
                        panic_message(payload.as_ref()),
                        format!("task {i} exploded")
                    );
                } else {
                    assert_eq!(*r.as_ref().expect("should have succeeded"), i * 2);
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
        std::panic::set_hook(prev);
    }
}
