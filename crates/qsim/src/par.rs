//! Work-queue parallelism for embarrassingly parallel simulator workloads.
//!
//! The QMARL hot paths — batched circuit evaluation, parameter-shift
//! gradient fan-out, multi-seed rollouts — are all "N independent tasks
//! over shared read-only inputs". This module provides one shared
//! scheduler for them: a flat work queue drained by scoped worker threads
//! through an atomic cursor, so long tasks never straggle behind a static
//! chunking (the failure mode of splitting the queue into equal slices up
//! front). Results land in input order regardless of which worker ran
//! which task, so parallel output is bit-identical to serial output.
//!
//! The scheduler is deliberately dependency-free (`std::thread::scope` +
//! `AtomicUsize`), keeping the whole workspace buildable offline.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sensible worker count for CPU-bound work: the machine's available
/// parallelism, falling back to 1 when it cannot be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(index, &items[index])` for every item on `workers` threads,
/// returning the results **in input order**.
///
/// Tasks are handed out one at a time through an atomic cursor (work
/// stealing degenerate case: a single shared queue), so heterogeneous
/// task costs balance automatically. `workers <= 1`, an empty queue, or a
/// single item all run inline on the caller's thread with no spawning.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = workers.min(n);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    collected.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] for fallible tasks. Every task runs to completion
/// (there is no early abort — the queue is already distributed across
/// workers); afterwards the lowest-indexed error, if any, is returned,
/// otherwise the ordered successes.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task.
pub fn try_parallel_map<T, R, E, F>(items: &[T], workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    parallel_map(items, workers, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = parallel_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn balances_heterogeneous_tasks() {
        // Tasks of wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            (0..spins).fold(x, |acc, _| {
                std::hint::black_box(acc.wrapping_mul(31).wrapping_add(1))
            });
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn try_variant_returns_first_error_by_index() {
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, usize> =
            try_parallel_map(
                &items,
                8,
                |_, &x| {
                    if x == 41 || x == 73 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            );
        assert_eq!(res.unwrap_err(), 41);
        let ok: Result<Vec<usize>, usize> = try_parallel_map(&items, 8, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
