//! Lane-row kernels: SIMD updates over contiguous `Complex64` rows.
//!
//! The runtime's lane-slab executors store `L` statevectors transposed —
//! `slab[amp · L + lane]` — so a gate update touches whole contiguous
//! rows of `L` amplitudes at a time. These kernels are the row twins of
//! the pair kernels in [`crate::apply`]: a scalar reference path (the
//! exact formulas the slab executor historically inlined) plus an AVX2
//! path dispatched through [`crate::simd::level`], **bit-identical** by
//! the same argument as the statevector kernels (separate multiply and
//! add, same expression per element, same association order — see
//! [`crate::simd`]).
//!
//! ## Layout note (the SoA evaluation)
//!
//! A split re/im (structure-of-arrays) slab layout was evaluated for
//! these paths and rejected: the interleaved layout already feeds full
//! 256-bit lanes — two complex amplitudes per register, with the
//! conjugate-style shuffles done in-register (`permute_pd`) at no memory
//! cost — while SoA would double the number of streams per row walk,
//! halve effective cache-line utilisation for the pair kernels (two rows
//! → four streams), and force a layout conversion at every readout and
//! observable boundary shared with the per-circuit engines. The
//! remaining high-stride traversals (adjoint reductions, readouts) are
//! fixed by loop interchange in the runtime instead, which keeps one
//! canonical layout everywhere.
//!
//! Uniform-coefficient kernels (`*_rows`) share one coefficient across
//! the row; per-lane kernels (`*_rows_lanes`) take one coefficient pair
//! per lane, as produced for input-dependent rotations.

use crate::complex::Complex64;
use crate::gate::Gate1;
use crate::simd::{self, SimdLevel};

/// `true` when the AVX2 row path should run.
#[inline]
fn wide() -> bool {
    cfg!(target_arch = "x86_64") && simd::level() == SimdLevel::Avx2
}

/// Generator axes for the adjoint accumulation kernels ([`adj_acc_slab`]).
pub const AXIS_X: u8 = 0;
/// See [`AXIS_X`].
pub const AXIS_Y: u8 = 1;
/// See [`AXIS_X`].
pub const AXIS_Z: u8 = 2;

// ---------------------------------------------------------------------
// Scalar row bodies — the exact formulas the slab executor historically
// inlined, shared by the per-row dispatchers and the slab kernels.
// ---------------------------------------------------------------------

mod scalar {
    use crate::complex::Complex64;
    use crate::gate::Gate1;

    #[inline(always)]
    pub(super) fn rot_x(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
        for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = Complex64::new(c * x0.re + s * x1.im, c * x0.im - s * x1.re);
            *a1 = Complex64::new(s * x0.im + c * x1.re, -s * x0.re + c * x1.im);
        }
    }

    #[inline(always)]
    pub(super) fn rot_y(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
        for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = Complex64::new(c * x0.re - s * x1.re, c * x0.im - s * x1.im);
            *a1 = Complex64::new(s * x0.re + c * x1.re, s * x0.im + c * x1.im);
        }
    }

    #[inline(always)]
    pub(super) fn phase(row: &mut [Complex64], pr: f64, pi: f64) {
        for a in row.iter_mut() {
            *a = Complex64::new(a.re * pr - a.im * pi, a.re * pi + a.im * pr);
        }
    }

    #[inline(always)]
    pub(super) fn gate1(r0: &mut [Complex64], r1: &mut [Complex64], gate: &Gate1) {
        let m = gate.matrix();
        for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        }
    }

    #[inline(always)]
    pub(super) fn gate2(rows: [&mut [Complex64]; 4], m: &[[Complex64; 4]; 4]) {
        let [r0, r1, r2, r3] = rows;
        for l in 0..r0.len() {
            let x0 = r0[l];
            let x1 = r1[l];
            let x2 = r2[l];
            let x3 = r3[l];
            r0[l] = ((m[0][0] * x0 + m[0][1] * x1) + m[0][2] * x2) + m[0][3] * x3;
            r1[l] = ((m[1][0] * x0 + m[1][1] * x1) + m[1][2] * x2) + m[1][3] * x3;
            r2[l] = ((m[2][0] * x0 + m[2][1] * x1) + m[2][2] * x2) + m[2][3] * x3;
            r3[l] = ((m[3][0] * x0 + m[3][1] * x1) + m[3][2] * x2) + m[3][3] * x3;
        }
    }

    #[inline(always)]
    pub(super) fn rot_x_lanes(r0: &mut [Complex64], r1: &mut [Complex64], trig: &[(f64, f64)]) {
        for ((a0, a1), &(s, c)) in r0.iter_mut().zip(r1.iter_mut()).zip(trig) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = Complex64::new(c * x0.re + s * x1.im, c * x0.im - s * x1.re);
            *a1 = Complex64::new(s * x0.im + c * x1.re, -s * x0.re + c * x1.im);
        }
    }

    #[inline(always)]
    pub(super) fn rot_y_lanes(r0: &mut [Complex64], r1: &mut [Complex64], trig: &[(f64, f64)]) {
        for ((a0, a1), &(s, c)) in r0.iter_mut().zip(r1.iter_mut()).zip(trig) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = Complex64::new(c * x0.re - s * x1.re, c * x0.im - s * x1.im);
            *a1 = Complex64::new(s * x0.re + c * x1.re, s * x0.im + c * x1.im);
        }
    }

    #[inline(always)]
    pub(super) fn phase_lanes(row: &mut [Complex64], phases: &[(f64, f64)]) {
        for (a, &(pr, pi)) in row.iter_mut().zip(phases) {
            let x = *a;
            *a = Complex64::new(x.re * pr - x.im * pi, x.re * pi + x.im * pr);
        }
    }

    #[inline(always)]
    pub(super) fn conj_dot_im(acc: &mut [f64], l: &[Complex64], g: &[Complex64]) {
        for ((a, lv), gv) in acc.iter_mut().zip(l).zip(g) {
            *a += lv.re * gv.im - lv.im * gv.re;
        }
    }
}

/// X-rotation pair update with one `(sin θ/2, cos θ/2)` for all lanes:
/// `a0' = (c·a0.re + s·a1.im, c·a0.im − s·a1.re)`,
/// `a1' = (s·a0.im + c·a1.re, −s·a0.re + c·a1.im)`.
#[inline]
pub fn rot_x_rows(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
    assert_eq!(r0.len(), r1.len(), "pair rows must have equal lane counts");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and the
        // equal-length assert above is the kernel's only other precondition.
        unsafe { avx::rot_x_rows(r0, r1, s, c) };
        return;
    }
    scalar::rot_x(r0, r1, s, c);
}

/// Y-rotation pair update with one `(sin θ/2, cos θ/2)` for all lanes:
/// `a0' = c·a0 − s·a1`, `a1' = s·a0 + c·a1` (all-real coefficients).
#[inline]
pub fn rot_y_rows(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
    assert_eq!(r0.len(), r1.len(), "pair rows must have equal lane counts");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and the
        // equal-length assert above is the kernel's only other precondition.
        unsafe { avx::rot_y_rows(r0, r1, s, c) };
        return;
    }
    scalar::rot_y(r0, r1, s, c);
}

/// Multiplies a row by the phase `pr + i·pi`:
/// `a' = (a.re·pr − a.im·pi, a.re·pi + a.im·pr)`.
#[inline]
pub fn phase_rows(row: &mut [Complex64], pr: f64, pi: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`; the kernel
        // walks `row` by its own length, so there is no length precondition.
        unsafe { avx::phase_rows(row, pr, pi) };
        return;
    }
    scalar::phase(row, pr, pi);
}

/// Generic 2×2 pair update with one unitary for all lanes:
/// `a0' = m00·a0 + m01·a1`, `a1' = m10·a0 + m11·a1`.
#[inline]
pub fn gate1_rows(r0: &mut [Complex64], r1: &mut [Complex64], gate: &Gate1) {
    assert_eq!(r0.len(), r1.len(), "pair rows must have equal lane counts");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and the
        // equal-length assert above is the kernel's only other precondition.
        unsafe { avx::gate1_rows(r0, r1, gate) };
        return;
    }
    scalar::gate1(r0, r1, gate);
}

/// [`rot_x_rows`] with a per-lane `(sin θ/2, cos θ/2)` pair.
#[inline]
pub fn rot_x_rows_lanes(r0: &mut [Complex64], r1: &mut [Complex64], trig: &[(f64, f64)]) {
    assert_eq!(r0.len(), r1.len(), "pair rows must have equal lane counts");
    assert_eq!(r0.len(), trig.len(), "one trig pair per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`; the asserts
        // above pin the row and coefficient lengths the kernel relies on.
        unsafe { avx::rot_x_rows_lanes(r0, r1, trig) };
        return;
    }
    scalar::rot_x_lanes(r0, r1, trig);
}

/// [`rot_y_rows`] with a per-lane `(sin θ/2, cos θ/2)` pair.
#[inline]
pub fn rot_y_rows_lanes(r0: &mut [Complex64], r1: &mut [Complex64], trig: &[(f64, f64)]) {
    assert_eq!(r0.len(), r1.len(), "pair rows must have equal lane counts");
    assert_eq!(r0.len(), trig.len(), "one trig pair per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`; the asserts
        // above pin the row and coefficient lengths the kernel relies on.
        unsafe { avx::rot_y_rows_lanes(r0, r1, trig) };
        return;
    }
    scalar::rot_y_lanes(r0, r1, trig);
}

/// [`phase_rows`] with a per-lane `(pr, pi)` phase.
#[inline]
pub fn phase_rows_lanes(row: &mut [Complex64], phases: &[(f64, f64)]) {
    assert_eq!(row.len(), phases.len(), "one phase pair per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`; the assert
        // above pins the coefficient length the kernel relies on.
        unsafe { avx::phase_rows_lanes(row, phases) };
        return;
    }
    scalar::phase_lanes(row, phases);
}

/// Accumulates the imaginary part of `conj(l[k])·g[k]` into `acc[k]`,
/// per lane: `acc[k] += l.re·g.im − l.im·g.re`. This is the inner step of
/// the adjoint gradient reduction (`∂E/∂θ = Im⟨λ|G|φ⟩` folded row by
/// row); each lane is an independent accumulator, so vectorising across
/// lanes reorders nothing within any one fold.
#[inline]
pub fn conj_dot_im_rows(acc: &mut [f64], l: &[Complex64], g: &[Complex64]) {
    assert_eq!(acc.len(), l.len(), "one accumulator per λ lane");
    assert_eq!(acc.len(), g.len(), "one accumulator per generator lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`; the asserts
        // above pin `l` and `g` to `acc`'s length, which bounds every read.
        unsafe { avx::conj_dot_im_rows(acc, l, g) };
        return;
    }
    scalar::conj_dot_im(acc, l, g);
}

// ---------------------------------------------------------------------
// Slab kernels: one dispatch per gate application.
//
// The per-row dispatchers above re-check the SIMD level on every call —
// fine for one row, measurable when an 8-qubit slab walk makes hundreds
// of row calls per gate. These kernels take the whole `slab[amp·lanes +
// lane]` block plus a target mask `mt` and control mask `mc` (`0` =
// uncontrolled; rows with `i & mc != mc` are skipped), dispatch once,
// and keep the pair loop inside one `#[target_feature]` body. Pair
// enumeration order is free (pairs are disjoint) and the per-row
// arithmetic is the per-row kernels' verbatim, so every slab kernel is
// bit-identical to the equivalent per-row call sequence.
// ---------------------------------------------------------------------

/// Disjoint `(row i0, row i0|mt)` lane-row views, ascending `i0` over
/// target-clear (and control-set, when `mc != 0`) indices.
#[inline(always)]
fn for_each_pair_rows(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    mut f: impl FnMut(&mut [Complex64], &mut [Complex64]),
) {
    for i0 in 0..dim {
        if i0 & mt != 0 || i0 & mc != mc {
            continue;
        }
        let (head, tail) = slab.split_at_mut((i0 | mt) * lanes);
        f(&mut head[i0 * lanes..(i0 + 1) * lanes], &mut tail[..lanes]);
    }
}

/// Checked slab preconditions, enforced in every build profile.
///
/// The AVX2 slab kernels derive raw row pointers from `dim`, `lanes`,
/// `mt` and `mc` with no further bounds checks, so the facts that keep
/// them in-bounds are asserted once per slab call here, at the safe
/// dispatch boundary, instead of as `debug_assert!`s that vanish in
/// release builds: a power-of-two `dim` with `mt` a single bit below it
/// guarantees `i0 | mt < dim` for every enumerated pair, and
/// `len == dim·lanes` keeps every such row inside the slab.
#[inline]
fn check_slab(len: usize, lanes: usize, dim: usize, mt: usize, mc: usize) {
    assert!(lanes > 0, "slab kernels need at least one lane");
    assert!(dim.is_power_of_two(), "slab dim must be a power of two");
    assert_eq!(len, dim * lanes, "slab length must equal dim * lanes");
    assert!(
        mt.is_power_of_two() && mt < dim,
        "target mask must be a single bit below dim"
    );
    assert!(mc < dim, "control mask must lie below dim");
}

/// [`rot_x_rows`] over every `(target, control)` pair of the slab.
#[inline]
pub fn rot_x_slab(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    s: f64,
    c: f64,
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::rot_x_slab(slab, lanes, dim, mt, mc, s, c) };
        return;
    }
    for_each_pair_rows(slab, lanes, dim, mt, mc, |r0, r1| {
        scalar::rot_x(r0, r1, s, c)
    });
}

/// [`rot_y_rows`] over every `(target, control)` pair of the slab.
#[inline]
pub fn rot_y_slab(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    s: f64,
    c: f64,
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::rot_y_slab(slab, lanes, dim, mt, mc, s, c) };
        return;
    }
    for_each_pair_rows(slab, lanes, dim, mt, mc, |r0, r1| {
        scalar::rot_y(r0, r1, s, c)
    });
}

/// [`gate1_rows`] over every pair of target qubit `mt` in the slab.
#[inline]
pub fn gate1_slab(slab: &mut [Complex64], lanes: usize, dim: usize, mt: usize, gate: &Gate1) {
    check_slab(slab.len(), lanes, dim, mt, 0);
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::gate1_slab(slab, lanes, dim, mt, gate) };
        return;
    }
    for_each_pair_rows(slab, lanes, dim, mt, 0, |r0, r1| {
        scalar::gate1(r0, r1, gate)
    });
}

/// Generic two-bit 4×4 update over the whole slab: for every row index
/// with both `ma` and `mb` clear, the four rows `{i, i|ma, i|mb,
/// i|ma|mb}` transform together by `m`, with bit 0 of the 4×4 index ↔
/// `ma` and bit 1 ↔ `mb`. The matrix is **not** required to be unitary:
/// this is the superoperator kernel of the density backend, where the
/// 4×4 is a gate–channel product acting on a (column-bit, row-bit) pair
/// of vectorized ρ, as well as a generic two-qubit gate kernel.
#[inline]
pub fn gate2_slab(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    ma: usize,
    mb: usize,
    m: &[[Complex64; 4]; 4],
) {
    check_slab(slab.len(), lanes, dim, ma, 0);
    assert!(
        mb.is_power_of_two() && mb < dim,
        "second mask must be a single bit below dim"
    );
    assert_ne!(ma, mb, "gate2 masks must name distinct bits");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` plus the two asserts above proved the geometry
        // every raw row pointer is derived from: `slab.len() ==
        // dim·lanes` with `ma`, `mb` distinct single bits below the
        // power-of-two `dim`, so the four quad rows are disjoint and in
        // bounds.
        unsafe { avx::gate2_slab(slab, lanes, dim, ma, mb, m) };
        return;
    }
    for_each_quad_rows(slab, lanes, dim, ma, mb, |rows| scalar::gate2(rows, m));
}

/// Enumerates quad row groups `{i, i|ma, i|mb, i|ma|mb}` (both-clear
/// base rows) and hands each to `f` as four disjoint row slices in 4×4
/// index order (bit 0 ↔ `ma`, bit 1 ↔ `mb`). Safe twin of the AVX2
/// quad walk, built from progressive `split_at_mut`.
fn for_each_quad_rows(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    ma: usize,
    mb: usize,
    mut f: impl FnMut([&mut [Complex64]; 4]),
) {
    let mlo = ma.min(mb);
    let mhi = ma.max(mb);
    for i in 0..dim {
        if i & (ma | mb) != 0 {
            continue;
        }
        // Offsets ascend: i < i|mlo < i|mhi < i|mlo|mhi.
        let (head1, tail1) = slab.split_at_mut((i | mlo) * lanes);
        let r_base = &mut head1[i * lanes..(i + 1) * lanes];
        let (head2, tail2) = tail1.split_at_mut(((i | mhi) - (i | mlo)) * lanes);
        let r_lo = &mut head2[..lanes];
        let (head3, tail3) = tail2.split_at_mut(((i | mlo | mhi) - (i | mhi)) * lanes);
        let r_hi = &mut head3[..lanes];
        let r_both = &mut tail3[..lanes];
        if ma == mlo {
            f([r_base, r_lo, r_hi, r_both]);
        } else {
            f([r_base, r_hi, r_lo, r_both]);
        }
    }
}

/// Diagonal-rotation slab update: multiplies target-clear rows by `lo`
/// and target-set rows by `hi` (as `(pr, pi)` phases), skipping
/// control-clear rows.
#[inline]
pub fn phase_slab(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    lo: (f64, f64),
    hi: (f64, f64),
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::phase_slab(slab, lanes, dim, mt, mc, lo, hi) };
        return;
    }
    for i in 0..dim {
        if i & mc != mc {
            continue;
        }
        let (pr, pi) = if i & mt == 0 { lo } else { hi };
        scalar::phase(&mut slab[i * lanes..(i + 1) * lanes], pr, pi);
    }
}

/// [`rot_x_slab`] with per-lane trig.
#[inline]
pub fn rot_x_slab_lanes(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    trig: &[(f64, f64)],
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    assert_eq!(lanes, trig.len(), "one trig pair per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::rot_x_slab_lanes(slab, lanes, dim, mt, mc, trig) };
        return;
    }
    for_each_pair_rows(slab, lanes, dim, mt, mc, |r0, r1| {
        scalar::rot_x_lanes(r0, r1, trig)
    });
}

/// [`rot_y_slab`] with per-lane trig.
#[inline]
pub fn rot_y_slab_lanes(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    trig: &[(f64, f64)],
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    assert_eq!(lanes, trig.len(), "one trig pair per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::rot_y_slab_lanes(slab, lanes, dim, mt, mc, trig) };
        return;
    }
    for_each_pair_rows(slab, lanes, dim, mt, mc, |r0, r1| {
        scalar::rot_y_lanes(r0, r1, trig)
    });
}

/// [`phase_slab`] with per-lane phase classes: target-clear rows use
/// `zlo`, target-set rows `zhi`.
#[inline]
pub fn phase_slab_lanes(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    zlo: &[(f64, f64)],
    zhi: &[(f64, f64)],
) {
    check_slab(slab.len(), lanes, dim, mt, mc);
    assert_eq!(lanes, zlo.len(), "one phase pair per lane (target clear)");
    assert_eq!(lanes, zhi.len(), "one phase pair per lane (target set)");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and
        // `check_slab` proved the geometry every raw row pointer is derived
        // from: `slab.len() == dim·lanes`, `mt` a single bit below the
        // power-of-two `dim`, `mc < dim`.
        unsafe { avx::phase_slab_lanes(slab, lanes, dim, mt, mc, zlo, zhi) };
        return;
    }
    for i in 0..dim {
        if i & mc != mc {
            continue;
        }
        let cls = if i & mt == 0 { zlo } else { zhi };
        scalar::phase_lanes(&mut slab[i * lanes..(i + 1) * lanes], cls);
    }
}

/// Adjoint generator accumulation over the whole slab:
/// `acc[lane] += Σ_i Im(conj(λ_i,lane)·(Gφ)_i,lane)` for the rotation
/// generator on axis `AXIS` with target mask `mt` (control mask `mc`,
/// `0` = none; control-clear rows contribute exactly zero and are
/// skipped). The generator row is rebuilt from φ on the fly —
/// `X: (Gφ)ᵢ = φ_{i⊕mt}`; `Y: (x.im, −x.re)`/`(−x.im, x.re)` from
/// `x = φ_{i⊕mt}` on target-clear/-set rows; `Z: ±φᵢ` — and the fold per
/// lane runs in ascending `i` order. The AVX2 path builds the generator
/// with exact sign flips (`xor` of the sign bit ≡ scalar negation) and
/// folds with the same `mul, mul, sub, add` per term, so it is
/// bit-identical to the scalar path.
#[inline]
pub fn adj_acc_slab<const AXIS: u8>(
    acc: &mut [f64],
    lam: &[Complex64],
    phi: &[Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
) {
    check_slab(lam.len(), lanes, dim, mt, mc);
    assert_eq!(lam.len(), phi.len(), "λ and φ cover the same slab");
    assert_eq!(acc.len(), lanes, "one accumulator per lane");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and the
        // checks above proved λ and φ are full `dim·lanes` slabs (with
        // `mt` a single bit below the power-of-two `dim`, so `i ^ mt`
        // stays below `dim`) and `acc` holds one slot per lane.
        unsafe { avx::adj_acc_slab::<AXIS>(acc, lam, phi, lanes, dim, mt, mc) };
        return;
    }
    for i in 0..dim {
        if i & mc != mc {
            continue;
        }
        let lrow = &lam[i * lanes..(i + 1) * lanes];
        let src = if AXIS == AXIS_Z {
            &phi[i * lanes..(i + 1) * lanes]
        } else {
            &phi[(i ^ mt) * lanes..(i ^ mt) * lanes + lanes]
        };
        let tgt_set = i & mt != 0;
        for ((a, l), &x) in acc.iter_mut().zip(lrow).zip(src) {
            let g = match AXIS {
                AXIS_X => x,
                AXIS_Y => {
                    if tgt_set {
                        Complex64::new(-x.im, x.re)
                    } else {
                        Complex64::new(x.im, -x.re)
                    }
                }
                _ => {
                    if tgt_set {
                        -x
                    } else {
                        x
                    }
                }
            };
            *a += l.re * g.im - l.im * g.re;
        }
    }
}

/// Multi-λ variant of [`adj_acc_slab`]: folds the same generator rows
/// against every adjoint state in one slab walk. The loop runs row-major
/// over `i`, building the generator row once into the `gbuf` scratch
/// (`lanes` entries) and then folding each `lams[j]` row against it, so
/// φ is read once per row instead of once per observable. `accs` holds
/// `lams.len() * lanes` accumulators (`accs[j*lanes..]` belongs to
/// `lams[j]`). Each `(j, lane)` accumulator still folds in ascending-`i`
/// order with the identical per-term arithmetic, so the result is
/// bit-identical to calling [`adj_acc_slab`] once per observable.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn adj_acc_slab_multi<const AXIS: u8>(
    accs: &mut [f64],
    lams: &[&[Complex64]],
    phi: &[Complex64],
    gbuf: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
) {
    check_slab(phi.len(), lanes, dim, mt, mc);
    for lam in lams {
        assert_eq!(lam.len(), phi.len(), "every λ covers the same slab as φ");
    }
    assert_eq!(
        accs.len(),
        lams.len() * lanes,
        "one accumulator per (λ, lane)"
    );
    assert_eq!(gbuf.len(), lanes, "generator scratch holds one row");
    #[cfg(target_arch = "x86_64")]
    if wide() {
        // SAFETY: `wide()` just verified AVX2 via `simd::level`, and the
        // checks above proved φ and every λ are full `dim·lanes` slabs
        // (with `mt` a single bit below the power-of-two `dim`, so
        // `i ^ mt` stays below `dim`), `accs` holds `lams.len()·lanes`
        // slots, and the generator scratch holds one `lanes`-long row.
        unsafe { avx::adj_acc_slab_multi::<AXIS>(accs, lams, phi, gbuf, lanes, dim, mt, mc) };
        return;
    }
    for i in 0..dim {
        if i & mc != mc {
            continue;
        }
        let src = if AXIS == AXIS_Z {
            &phi[i * lanes..(i + 1) * lanes]
        } else {
            &phi[(i ^ mt) * lanes..(i ^ mt) * lanes + lanes]
        };
        let tgt_set = i & mt != 0;
        for (g, &x) in gbuf.iter_mut().zip(src) {
            *g = match AXIS {
                AXIS_X => x,
                AXIS_Y => {
                    if tgt_set {
                        Complex64::new(-x.im, x.re)
                    } else {
                        Complex64::new(x.im, -x.re)
                    }
                }
                _ => {
                    if tgt_set {
                        -x
                    } else {
                        x
                    }
                }
            };
        }
        for (j, lam) in lams.iter().enumerate() {
            let lrow = &lam[i * lanes..(i + 1) * lanes];
            let acc = &mut accs[j * lanes..(j + 1) * lanes];
            for ((a, l), g) in acc.iter_mut().zip(lrow).zip(gbuf.iter()) {
                *a += l.re * g.im - l.im * g.re;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use core::arch::x86_64::*;

    use crate::complex::Complex64;
    use crate::gate::Gate1;
    use crate::wide::{cmul, cmul1, halve, splat};

    /// Two interleaved row pointers plus the shared complex count.
    #[inline]
    fn ptrs2(r0: &mut [Complex64], r1: &mut [Complex64]) -> (*mut f64, *mut f64, usize) {
        (
            r0.as_mut_ptr() as *mut f64,
            r1.as_mut_ptr() as *mut f64,
            r0.len(),
        )
    }

    /// Uniform pair-row kernel.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled (the safe dispatchers check `wide()` first)
    /// and `r0.len() == r1.len()` — the loop walks both rows by the
    /// shared count from `ptrs2`, so a shorter `r1` would be written
    /// out of bounds. The dispatchers assert the equality.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_x_rows(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
        let (p0, p1, n) = ptrs2(r0, r1);
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set_pd(-s, s, -s, s); // [s, −s, s, −s] low→high
        let mut k = 0;
        while k + 2 <= n {
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm256_loadu_pd(pa);
            let a1 = _mm256_loadu_pd(pb);
            let r0v = _mm256_add_pd(
                _mm256_mul_pd(cv, a0),
                _mm256_mul_pd(sv, _mm256_permute_pd(a1, 0b0101)),
            );
            let r1v = _mm256_add_pd(
                _mm256_mul_pd(cv, a1),
                _mm256_mul_pd(sv, _mm256_permute_pd(a0, 0b0101)),
            );
            _mm256_storeu_pd(pa, r0v);
            _mm256_storeu_pd(pb, r1v);
            k += 2;
        }
        if k < n {
            rot_x_tail(p0.add(2 * k), p1.add(2 * k), s, c);
        }
    }

    /// One-complex X-rotation remainder step.
    ///
    /// # Safety
    ///
    /// `pa` and `pb` must each be valid for reads and writes of one
    /// interleaved complex (two `f64`s), and AVX2 must be enabled —
    /// both guaranteed by the `#[target_feature]` callers, which pass
    /// in-bounds tail pointers of equal-length rows.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn rot_x_tail(pa: *mut f64, pb: *mut f64, s: f64, c: f64) {
        let cv = _mm_set1_pd(c);
        let sv = _mm_set_pd(-s, s);
        let a0 = _mm_loadu_pd(pa);
        let a1 = _mm_loadu_pd(pb);
        let r0v = _mm_add_pd(
            _mm_mul_pd(cv, a0),
            _mm_mul_pd(sv, _mm_shuffle_pd(a1, a1, 0b01)),
        );
        let r1v = _mm_add_pd(
            _mm_mul_pd(cv, a1),
            _mm_mul_pd(sv, _mm_shuffle_pd(a0, a0, 0b01)),
        );
        _mm_storeu_pd(pa, r0v);
        _mm_storeu_pd(pb, r1v);
    }

    /// Uniform pair-row kernel; see [`rot_x_rows`] for the contract.
    ///
    /// # Safety
    ///
    /// AVX2 enabled and `r0.len() == r1.len()`, as asserted by the
    /// safe dispatchers.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_y_rows(r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
        let (p0, p1, n) = ptrs2(r0, r1);
        let cv = _mm256_set1_pd(c);
        let nsv = _mm256_set1_pd(-s);
        let psv = _mm256_set1_pd(s);
        let mut k = 0;
        while k + 2 <= n {
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm256_loadu_pd(pa);
            let a1 = _mm256_loadu_pd(pb);
            let r0v = _mm256_add_pd(_mm256_mul_pd(cv, a0), _mm256_mul_pd(nsv, a1));
            let r1v = _mm256_add_pd(_mm256_mul_pd(psv, a0), _mm256_mul_pd(cv, a1));
            _mm256_storeu_pd(pa, r0v);
            _mm256_storeu_pd(pb, r1v);
            k += 2;
        }
        if k < n {
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let (cv, nsv, psv) = (_mm_set1_pd(c), _mm_set1_pd(-s), _mm_set1_pd(s));
            let a0 = _mm_loadu_pd(pa);
            let a1 = _mm_loadu_pd(pb);
            let r0v = _mm_add_pd(_mm_mul_pd(cv, a0), _mm_mul_pd(nsv, a1));
            let r1v = _mm_add_pd(_mm_mul_pd(psv, a0), _mm_mul_pd(cv, a1));
            _mm_storeu_pd(pa, r0v);
            _mm_storeu_pd(pb, r1v);
        }
    }

    /// Uniform single-row phase kernel.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled (the safe dispatchers check `wide()`
    /// first); every access is bounded by `row.len()` itself.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn phase_rows(row: &mut [Complex64], pr: f64, pi: f64) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let m = splat(Complex64::new(pr, pi));
        let mut k = 0;
        while k + 2 <= n {
            let pa = p.add(2 * k);
            _mm256_storeu_pd(pa, cmul(m, _mm256_loadu_pd(pa)));
            k += 2;
        }
        if k < n {
            let pa = p.add(2 * k);
            _mm_storeu_pd(pa, cmul1(halve(m), _mm_loadu_pd(pa)));
        }
    }

    /// Uniform pair-row kernel; see [`rot_x_rows`] for the contract.
    ///
    /// # Safety
    ///
    /// AVX2 enabled and `r0.len() == r1.len()`, as asserted by the
    /// safe dispatchers.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gate1_rows(r0: &mut [Complex64], r1: &mut [Complex64], gate: &Gate1) {
        let (p0, p1, n) = ptrs2(r0, r1);
        let m = gate.matrix();
        let (m00, m01, m10, m11) = (
            splat(m[0][0]),
            splat(m[0][1]),
            splat(m[1][0]),
            splat(m[1][1]),
        );
        let mut k = 0;
        while k + 2 <= n {
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm256_loadu_pd(pa);
            let a1 = _mm256_loadu_pd(pb);
            _mm256_storeu_pd(pa, _mm256_add_pd(cmul(m00, a0), cmul(m01, a1)));
            _mm256_storeu_pd(pb, _mm256_add_pd(cmul(m10, a0), cmul(m11, a1)));
            k += 2;
        }
        if k < n {
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm_loadu_pd(pa);
            let a1 = _mm_loadu_pd(pb);
            _mm_storeu_pd(pa, _mm_add_pd(cmul1(halve(m00), a0), cmul1(halve(m01), a1)));
            _mm_storeu_pd(pb, _mm_add_pd(cmul1(halve(m10), a0), cmul1(halve(m11), a1)));
        }
    }

    /// Per-lane pair-row kernel.
    ///
    /// # Safety
    ///
    /// AVX2 enabled and `r0.len() == r1.len()`, as asserted by the safe
    /// dispatchers. `trig` is slice-indexed, so a short coefficient
    /// table panics rather than reading out of bounds (the dispatchers
    /// assert it matches the row length anyway).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_x_rows_lanes(
        r0: &mut [Complex64],
        r1: &mut [Complex64],
        trig: &[(f64, f64)],
    ) {
        let (p0, p1, n) = ptrs2(r0, r1);
        let mut k = 0;
        while k + 2 <= n {
            let (s0, c0) = trig[k];
            let (s1, c1) = trig[k + 1];
            let cv = _mm256_set_pd(c1, c1, c0, c0);
            let sv = _mm256_set_pd(-s1, s1, -s0, s0);
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm256_loadu_pd(pa);
            let a1 = _mm256_loadu_pd(pb);
            let r0v = _mm256_add_pd(
                _mm256_mul_pd(cv, a0),
                _mm256_mul_pd(sv, _mm256_permute_pd(a1, 0b0101)),
            );
            let r1v = _mm256_add_pd(
                _mm256_mul_pd(cv, a1),
                _mm256_mul_pd(sv, _mm256_permute_pd(a0, 0b0101)),
            );
            _mm256_storeu_pd(pa, r0v);
            _mm256_storeu_pd(pb, r1v);
            k += 2;
        }
        if k < n {
            let (s, c) = trig[k];
            rot_x_tail(p0.add(2 * k), p1.add(2 * k), s, c);
        }
    }

    /// Per-lane pair-row kernel; see [`rot_x_rows_lanes`].
    ///
    /// # Safety
    ///
    /// AVX2 enabled and `r0.len() == r1.len()`, as asserted by the
    /// safe dispatchers.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_y_rows_lanes(
        r0: &mut [Complex64],
        r1: &mut [Complex64],
        trig: &[(f64, f64)],
    ) {
        let (p0, p1, n) = ptrs2(r0, r1);
        let mut k = 0;
        while k + 2 <= n {
            let (s0, c0) = trig[k];
            let (s1, c1) = trig[k + 1];
            let cv = _mm256_set_pd(c1, c1, c0, c0);
            let nsv = _mm256_set_pd(-s1, -s1, -s0, -s0);
            let psv = _mm256_set_pd(s1, s1, s0, s0);
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let a0 = _mm256_loadu_pd(pa);
            let a1 = _mm256_loadu_pd(pb);
            let r0v = _mm256_add_pd(_mm256_mul_pd(cv, a0), _mm256_mul_pd(nsv, a1));
            let r1v = _mm256_add_pd(_mm256_mul_pd(psv, a0), _mm256_mul_pd(cv, a1));
            _mm256_storeu_pd(pa, r0v);
            _mm256_storeu_pd(pb, r1v);
            k += 2;
        }
        if k < n {
            let (s, c) = trig[k];
            let pa = p0.add(2 * k);
            let pb = p1.add(2 * k);
            let (cv, nsv, psv) = (_mm_set1_pd(c), _mm_set1_pd(-s), _mm_set1_pd(s));
            let a0 = _mm_loadu_pd(pa);
            let a1 = _mm_loadu_pd(pb);
            let r0v = _mm_add_pd(_mm_mul_pd(cv, a0), _mm_mul_pd(nsv, a1));
            let r1v = _mm_add_pd(_mm_mul_pd(psv, a0), _mm_mul_pd(cv, a1));
            _mm_storeu_pd(pa, r0v);
            _mm_storeu_pd(pb, r1v);
        }
    }

    /// Adjoint fold row kernel.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled, and `l.len()` and `g.len()` must equal
    /// `acc.len()` — the loop reads both through raw pointers up to
    /// `acc`'s length. The safe dispatcher asserts both equalities.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn conj_dot_im_rows(acc: &mut [f64], l: &[Complex64], g: &[Complex64]) {
        let n = acc.len();
        let pl = l.as_ptr() as *const f64;
        let pg = g.as_ptr() as *const f64;
        let pa = acc.as_mut_ptr();
        let mut k = 0;
        while k + 2 <= n {
            let lv = _mm256_loadu_pd(pl.add(2 * k));
            let gv = _mm256_loadu_pd(pg.add(2 * k));
            // p = (l.re·g.im, l.im·g.re) per complex — the two products
            // the scalar step multiplies before its subtraction.
            let p = _mm256_mul_pd(lv, _mm256_permute_pd(gv, 0b0101));
            // hsub(p, p) = (p0−p1, p0−p1, p2−p3, p2−p3): each lane's
            // Im(conj(l)·g), by the exact scalar subtraction.
            let h = _mm256_hsub_pd(p, p);
            let pair = _mm_shuffle_pd(_mm256_castpd256_pd128(h), _mm256_extractf128_pd(h, 1), 0b00);
            _mm_storeu_pd(pa.add(k), _mm_add_pd(_mm_loadu_pd(pa.add(k)), pair));
            k += 2;
        }
        if k < n {
            let lv = *l.get_unchecked(k);
            let gv = *g.get_unchecked(k);
            *pa.add(k) += lv.re * gv.im - lv.im * gv.re;
        }
    }

    /// Per-lane single-row phase kernel.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled; row accesses are bounded by `row.len()`
    /// and `phases` is slice-indexed (panics if shorter than the row,
    /// which the safe dispatcher rules out).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn phase_rows_lanes(row: &mut [Complex64], phases: &[(f64, f64)]) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let mut k = 0;
        while k + 2 <= n {
            let (pr0, pi0) = phases[k];
            let (pr1, pi1) = phases[k + 1];
            let m = (
                _mm256_set_pd(pr1, pr1, pr0, pr0),
                _mm256_set_pd(pi1, pi1, pi0, pi0),
            );
            let pa = p.add(2 * k);
            _mm256_storeu_pd(pa, cmul(m, _mm256_loadu_pd(pa)));
            k += 2;
        }
        if k < n {
            let (pr, pi) = phases[k];
            let m = (_mm_set1_pd(pr), _mm_set1_pd(pi));
            let pa = p.add(2 * k);
            _mm_storeu_pd(pa, cmul1(m, _mm_loadu_pd(pa)));
        }
    }

    // --- slab kernels: the whole pair/row loop in one AVX2 body -------

    /// Disjoint row slices from a raw slab base (pairs never alias).
    ///
    /// # Safety
    ///
    /// `base` must point to a live slab of at least
    /// `(max(i0, i1) + 1) · lanes` complexes, and `i0 != i1` so the two
    /// returned `&mut` rows never overlap. The slab kernels guarantee
    /// both via the `check_slab` contract: row indices stay below the
    /// power-of-two `dim`, `i1 = i0 | mt` with `mt != 0` differs from
    /// `i0`, and the slab holds `dim · lanes` entries.
    #[inline(always)]
    unsafe fn pair_rows<'a>(
        base: *mut Complex64,
        lanes: usize,
        i0: usize,
        i1: usize,
    ) -> (&'a mut [Complex64], &'a mut [Complex64]) {
        (
            core::slice::from_raw_parts_mut(base.add(i0 * lanes), lanes),
            core::slice::from_raw_parts_mut(base.add(i1 * lanes), lanes),
        )
    }

    /// Whole-slab X-rotation walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold (`slab.len() == dim·lanes`, `mt` a single bit below the
    /// power-of-two `dim`, `mc < dim`): together these keep every
    /// `pair_rows` row in bounds and each pair disjoint. The safe
    /// dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_x_slab(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        s: f64,
        c: f64,
    ) {
        let base = slab.as_mut_ptr();
        for i0 in 0..dim {
            if i0 & mt != 0 || i0 & mc != mc {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i0, i0 | mt);
            rot_x_rows(r0, r1, s, c);
        }
    }

    /// Whole-slab Y-rotation walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold (`slab.len() == dim·lanes`, `mt` a single bit below the
    /// power-of-two `dim`, `mc < dim`): together these keep every
    /// `pair_rows` row in bounds and each pair disjoint. The safe
    /// dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_y_slab(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        s: f64,
        c: f64,
    ) {
        let base = slab.as_mut_ptr();
        for i0 in 0..dim {
            if i0 & mt != 0 || i0 & mc != mc {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i0, i0 | mt);
            rot_y_rows(r0, r1, s, c);
        }
    }

    /// Whole-slab 2×2 unitary walk (uncontrolled).
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold (`slab.len() == dim·lanes`, `mt` a single bit below the
    /// power-of-two `dim`, `mc < dim`): together these keep every
    /// `pair_rows` row in bounds and each pair disjoint. The safe
    /// dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gate1_slab(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        gate: &Gate1,
    ) {
        let base = slab.as_mut_ptr();
        for i0 in 0..dim {
            if i0 & mt != 0 {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i0, i0 | mt);
            gate1_rows(r0, r1, gate);
        }
    }

    /// Generic 4×4 quad-row update (the `gate2_slab` inner body), with
    /// the same add-of-`cmul` association as the scalar `gate2` row body:
    /// `y_r = ((m_{r0}·x0 + m_{r1}·x1) + m_{r2}·x2) + m_{r3}·x3`.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the four rows must be pairwise disjoint
    /// slices of equal length; the quad walk derives them from distinct
    /// single-bit masks under the `check_slab` contract, which
    /// guarantees both.
    #[target_feature(enable = "avx2")]
    unsafe fn gate2_rows(rows: [&mut [Complex64]; 4], m: &[[Complex64; 4]; 4]) {
        let n = rows[0].len();
        let p: [*mut f64; 4] = [
            rows[0].as_mut_ptr() as *mut f64,
            rows[1].as_mut_ptr() as *mut f64,
            rows[2].as_mut_ptr() as *mut f64,
            rows[3].as_mut_ptr() as *mut f64,
        ];
        let mut ms = [[(_mm256_setzero_pd(), _mm256_setzero_pd()); 4]; 4];
        for (r, row) in m.iter().enumerate() {
            for (c, coeff) in row.iter().enumerate() {
                ms[r][c] = splat(*coeff);
            }
        }
        let mut k = 0;
        while k + 2 <= n {
            let x = [
                _mm256_loadu_pd(p[0].add(2 * k)),
                _mm256_loadu_pd(p[1].add(2 * k)),
                _mm256_loadu_pd(p[2].add(2 * k)),
                _mm256_loadu_pd(p[3].add(2 * k)),
            ];
            for (r, row) in ms.iter().enumerate() {
                let y = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(cmul(row[0], x[0]), cmul(row[1], x[1])),
                        cmul(row[2], x[2]),
                    ),
                    cmul(row[3], x[3]),
                );
                _mm256_storeu_pd(p[r].add(2 * k), y);
            }
            k += 2;
        }
        if k < n {
            let x = [
                _mm_loadu_pd(p[0].add(2 * k)),
                _mm_loadu_pd(p[1].add(2 * k)),
                _mm_loadu_pd(p[2].add(2 * k)),
                _mm_loadu_pd(p[3].add(2 * k)),
            ];
            for (r, row) in ms.iter().enumerate() {
                let y = _mm_add_pd(
                    _mm_add_pd(
                        _mm_add_pd(cmul1(halve(row[0]), x[0]), cmul1(halve(row[1]), x[1])),
                        cmul1(halve(row[2]), x[2]),
                    ),
                    cmul1(halve(row[3]), x[3]),
                );
                _mm_storeu_pd(p[r].add(2 * k), y);
            }
        }
    }

    /// Whole-slab generic 4×4 walk (the superoperator kernel).
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the `gate2_slab` dispatcher's contract
    /// must hold: `slab.len() == dim·lanes` with `ma`, `mb` distinct
    /// single bits below the power-of-two `dim` — every quad row index
    /// `{i, i|ma, i|mb, i|ma|mb}` then stays below `dim` and the four
    /// rows are pairwise disjoint. The safe dispatcher establishes all
    /// of it before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gate2_slab(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        ma: usize,
        mb: usize,
        m: &[[Complex64; 4]; 4],
    ) {
        let base = slab.as_mut_ptr();
        for i in 0..dim {
            if i & (ma | mb) != 0 {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i, i | ma);
            let (r2, r3) = pair_rows(base, lanes, i | mb, i | ma | mb);
            gate2_rows([r0, r1, r2, r3], m);
        }
    }

    /// Whole-slab diagonal-phase walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold: `slab.len() == dim·lanes` keeps every row slice
    /// (`from_raw_parts_mut` at `i · lanes`, `i < dim`) inside the
    /// slab. The safe dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn phase_slab(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        lo: (f64, f64),
        hi: (f64, f64),
    ) {
        let base = slab.as_mut_ptr();
        for i in 0..dim {
            if i & mc != mc {
                continue;
            }
            let (pr, pi) = if i & mt == 0 { lo } else { hi };
            let row = core::slice::from_raw_parts_mut(base.add(i * lanes), lanes);
            phase_rows(row, pr, pi);
        }
    }

    /// Whole-slab per-lane X-rotation walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold (`slab.len() == dim·lanes`, `mt` a single bit below the
    /// power-of-two `dim`, `mc < dim`): together these keep every
    /// `pair_rows` row in bounds and each pair disjoint. The safe
    /// dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_x_slab_lanes(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        trig: &[(f64, f64)],
    ) {
        let base = slab.as_mut_ptr();
        for i0 in 0..dim {
            if i0 & mt != 0 || i0 & mc != mc {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i0, i0 | mt);
            rot_x_rows_lanes(r0, r1, trig);
        }
    }

    /// Whole-slab per-lane Y-rotation walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold (`slab.len() == dim·lanes`, `mt` a single bit below the
    /// power-of-two `dim`, `mc < dim`): together these keep every
    /// `pair_rows` row in bounds and each pair disjoint. The safe
    /// dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rot_y_slab_lanes(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        trig: &[(f64, f64)],
    ) {
        let base = slab.as_mut_ptr();
        for i0 in 0..dim {
            if i0 & mt != 0 || i0 & mc != mc {
                continue;
            }
            let (r0, r1) = pair_rows(base, lanes, i0, i0 | mt);
            rot_y_rows_lanes(r0, r1, trig);
        }
    }

    /// Whole-slab per-lane diagonal-phase walk.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled and the [`super::check_slab`] contract must
    /// hold: `slab.len() == dim·lanes` keeps every row slice
    /// (`from_raw_parts_mut` at `i · lanes`, `i < dim`) inside the
    /// slab. The safe dispatchers establish both before the call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn phase_slab_lanes(
        slab: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
        zlo: &[(f64, f64)],
        zhi: &[(f64, f64)],
    ) {
        let base = slab.as_mut_ptr();
        for i in 0..dim {
            if i & mc != mc {
                continue;
            }
            let cls = if i & mt == 0 { zlo } else { zhi };
            let row = core::slice::from_raw_parts_mut(base.add(i * lanes), lanes);
            phase_rows_lanes(row, cls);
        }
    }

    /// Whole-slab adjoint generator fold.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled; `lam` and `phi` must both hold exactly
    /// `dim · lanes` complexes with `mt` a single bit below the
    /// power-of-two `dim` (so the `i ^ mt` generator row index stays
    /// below `dim`), and `acc` must hold `lanes` slots — the raw reads
    /// and accumulator writes are bounded by exactly these lengths.
    /// The safe dispatcher asserts all of them.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn adj_acc_slab<const AXIS: u8>(
        acc: &mut [f64],
        lam: &[Complex64],
        phi: &[Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
    ) {
        // Sign masks: xor with −0.0 is the exact scalar negation.
        let neg_im = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
        let neg_re = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
        let neg_all = _mm256_set1_pd(-0.0);
        let pl = lam.as_ptr() as *const f64;
        let pp = phi.as_ptr() as *const f64;
        let pa = acc.as_mut_ptr();
        for i in 0..dim {
            if i & mc != mc {
                continue;
            }
            let lbase = pl.add(2 * i * lanes);
            let gbase = if AXIS == super::AXIS_Z {
                pp.add(2 * i * lanes)
            } else {
                pp.add(2 * (i ^ mt) * lanes)
            };
            let tgt_set = i & mt != 0;
            let mut k = 0;
            while k + 2 <= lanes {
                let lv = _mm256_loadu_pd(lbase.add(2 * k));
                let xv = _mm256_loadu_pd(gbase.add(2 * k));
                // Build the generator row exactly as the scalar path:
                // X: g = x; Y: swap re/im then sign-flip one slot;
                // Z target-set: g = −x.
                let gv = match AXIS {
                    super::AXIS_X => xv,
                    super::AXIS_Y => {
                        let sw = _mm256_permute_pd(xv, 0b0101);
                        if tgt_set {
                            _mm256_xor_pd(sw, neg_re)
                        } else {
                            _mm256_xor_pd(sw, neg_im)
                        }
                    }
                    _ => {
                        if tgt_set {
                            _mm256_xor_pd(xv, neg_all)
                        } else {
                            xv
                        }
                    }
                };
                // Same fold as `conj_dot_im_rows`: mul, mul, sub, add.
                let p = _mm256_mul_pd(lv, _mm256_permute_pd(gv, 0b0101));
                let h = _mm256_hsub_pd(p, p);
                let pair =
                    _mm_shuffle_pd(_mm256_castpd256_pd128(h), _mm256_extractf128_pd(h, 1), 0b00);
                _mm_storeu_pd(pa.add(k), _mm_add_pd(_mm_loadu_pd(pa.add(k)), pair));
                k += 2;
            }
            if k < lanes {
                let l = *lam.get_unchecked(i * lanes + k);
                let x = if AXIS == super::AXIS_Z {
                    *phi.get_unchecked(i * lanes + k)
                } else {
                    *phi.get_unchecked((i ^ mt) * lanes + k)
                };
                let g = match AXIS {
                    super::AXIS_X => x,
                    super::AXIS_Y => {
                        if tgt_set {
                            Complex64::new(-x.im, x.re)
                        } else {
                            Complex64::new(x.im, -x.re)
                        }
                    }
                    _ => {
                        if tgt_set {
                            -x
                        } else {
                            x
                        }
                    }
                };
                *pa.add(k) += l.re * g.im - l.im * g.re;
            }
        }
    }

    /// Multi-λ whole-slab adjoint generator fold.
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled; `phi` and every `lams[j]` must hold
    /// exactly `dim · lanes` complexes with `mt` a single bit below
    /// the power-of-two `dim`, `accs` must hold `lams.len() · lanes`
    /// slots and `gbuf` exactly `lanes` — the generator scratch and
    /// every per-λ fold are bounded by these lengths. The safe
    /// dispatcher asserts all of them.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn adj_acc_slab_multi<const AXIS: u8>(
        accs: &mut [f64],
        lams: &[&[Complex64]],
        phi: &[Complex64],
        gbuf: &mut [Complex64],
        lanes: usize,
        dim: usize,
        mt: usize,
        mc: usize,
    ) {
        let neg_im = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
        let neg_re = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
        let neg_all = _mm256_set1_pd(-0.0);
        let pp = phi.as_ptr() as *const f64;
        let pg = gbuf.as_mut_ptr() as *mut f64;
        let pa = accs.as_mut_ptr();
        for i in 0..dim {
            if i & mc != mc {
                continue;
            }
            let gbase = if AXIS == super::AXIS_Z {
                pp.add(2 * i * lanes)
            } else {
                pp.add(2 * (i ^ mt) * lanes)
            };
            let tgt_set = i & mt != 0;
            // Build the generator row once into the scratch; the values
            // are the same xor-sign builds as the single-λ kernel.
            let mut k = 0;
            while k + 2 <= lanes {
                let xv = _mm256_loadu_pd(gbase.add(2 * k));
                let gv = match AXIS {
                    super::AXIS_X => xv,
                    super::AXIS_Y => {
                        let sw = _mm256_permute_pd(xv, 0b0101);
                        if tgt_set {
                            _mm256_xor_pd(sw, neg_re)
                        } else {
                            _mm256_xor_pd(sw, neg_im)
                        }
                    }
                    _ => {
                        if tgt_set {
                            _mm256_xor_pd(xv, neg_all)
                        } else {
                            xv
                        }
                    }
                };
                _mm256_storeu_pd(pg.add(2 * k), gv);
                k += 2;
            }
            if k < lanes {
                let x = if AXIS == super::AXIS_Z {
                    *phi.get_unchecked(i * lanes + k)
                } else {
                    *phi.get_unchecked((i ^ mt) * lanes + k)
                };
                *gbuf.get_unchecked_mut(k) = match AXIS {
                    super::AXIS_X => x,
                    super::AXIS_Y => {
                        if tgt_set {
                            Complex64::new(-x.im, x.re)
                        } else {
                            Complex64::new(x.im, -x.re)
                        }
                    }
                    _ => {
                        if tgt_set {
                            -x
                        } else {
                            x
                        }
                    }
                };
            }
            // Fold every λ row against the shared generator row with the
            // exact mul, permute, hsub, add sequence of the single-λ path.
            for (j, lam) in lams.iter().enumerate() {
                let lbase = (lam.as_ptr() as *const f64).add(2 * i * lanes);
                let paj = pa.add(j * lanes);
                let mut k = 0;
                while k + 2 <= lanes {
                    let lv = _mm256_loadu_pd(lbase.add(2 * k));
                    let gv = _mm256_loadu_pd(pg.add(2 * k));
                    let p = _mm256_mul_pd(lv, _mm256_permute_pd(gv, 0b0101));
                    let h = _mm256_hsub_pd(p, p);
                    let pair = _mm_shuffle_pd(
                        _mm256_castpd256_pd128(h),
                        _mm256_extractf128_pd(h, 1),
                        0b00,
                    );
                    _mm_storeu_pd(paj.add(k), _mm_add_pd(_mm_loadu_pd(paj.add(k)), pair));
                    k += 2;
                }
                if k < lanes {
                    let l = *lam.get_unchecked(i * lanes + k);
                    let g = *gbuf.get_unchecked(k);
                    *paj.add(k) += l.re * g.im - l.im * g.re;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{self, SimdLevel};

    /// Deterministic phase-rich row of `n` amplitudes.
    fn busy_row(n: usize, salt: f64) -> Vec<Complex64> {
        (0..n)
            .map(|k| {
                let t = 0.37 * k as f64 + salt;
                Complex64::new(t.sin() * 0.6, (1.3 * t).cos() * 0.7)
            })
            .collect()
    }

    /// Asserts scalar and forced-AVX2 runs of `op` are bit-identical on
    /// rows of every length 0–9 (covers the 128-bit remainder and empty
    /// rows). No-op without AVX2.
    fn assert_rows_parity(label: &str, op: impl Fn(&mut [Complex64], &mut [Complex64], usize)) {
        if !simd::wide_supported() {
            return;
        }
        for n in 0..10usize {
            let base0 = busy_row(n, 0.2);
            let base1 = busy_row(n, 1.9);
            let (mut s0, mut s1) = (base0.clone(), base1.clone());
            simd::force(SimdLevel::Scalar);
            op(&mut s0, &mut s1, n);
            let (mut w0, mut w1) = (base0.clone(), base1.clone());
            simd::force(SimdLevel::Avx2);
            op(&mut w0, &mut w1, n);
            simd::force(SimdLevel::Scalar);
            assert_eq!(s0, w0, "{label}: row 0 diverged at n={n}");
            assert_eq!(s1, w1, "{label}: row 1 diverged at n={n}");
        }
    }

    fn lane_trig(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|k| (0.23 * k as f64 - 0.4).sin_cos()).collect()
    }

    #[test]
    fn uniform_row_kernels_bit_identical() {
        let (s, c) = (0.81_f64).sin_cos();
        assert_rows_parity("rot_x_rows", |r0, r1, _| rot_x_rows(r0, r1, s, c));
        assert_rows_parity("rot_y_rows", |r0, r1, _| rot_y_rows(r0, r1, s, c));
        assert_rows_parity("phase_rows", |r0, _, _| phase_rows(r0, c, -s));
        let g = Gate1::u3(0.9, -0.4, 1.2);
        assert_rows_parity("gate1_rows", |r0, r1, _| gate1_rows(r0, r1, &g));
    }

    #[test]
    fn per_lane_row_kernels_bit_identical() {
        assert_rows_parity("rot_x_rows_lanes", |r0, r1, n| {
            rot_x_rows_lanes(r0, r1, &lane_trig(n))
        });
        assert_rows_parity("rot_y_rows_lanes", |r0, r1, n| {
            rot_y_rows_lanes(r0, r1, &lane_trig(n))
        });
        assert_rows_parity("phase_rows_lanes", |r0, _, n| {
            phase_rows_lanes(r0, &lane_trig(n))
        });
    }

    #[test]
    fn conj_dot_im_bit_identical_and_correct() {
        for n in 0..10usize {
            let l = busy_row(n, 0.2);
            let g = busy_row(n, 1.9);
            let seed: Vec<f64> = (0..n).map(|k| 0.11 * k as f64 - 0.3).collect();
            // Scalar reference, and the explicit formula it must equal.
            let mut s = seed.clone();
            simd::force(SimdLevel::Scalar);
            conj_dot_im_rows(&mut s, &l, &g);
            for k in 0..n {
                assert_eq!(s[k], seed[k] + (l[k].re * g[k].im - l[k].im * g[k].re));
                assert_eq!(s[k], seed[k] + (l[k].conj() * g[k]).im);
            }
            if simd::wide_supported() {
                let mut w = seed.clone();
                simd::force(SimdLevel::Avx2);
                conj_dot_im_rows(&mut w, &l, &g);
                simd::force(SimdLevel::Scalar);
                assert_eq!(s, w, "conj_dot_im_rows diverged at n={n}");
            }
        }
    }

    /// Asserts scalar and forced-AVX2 runs of a slab op are bit-identical.
    fn assert_slab_parity(label: &str, dim: usize, lanes: usize, op: impl Fn(&mut [Complex64])) {
        if !simd::wide_supported() {
            return;
        }
        let base = busy_row(dim * lanes, 0.7);
        let mut s = base.clone();
        simd::force(SimdLevel::Scalar);
        op(&mut s);
        let mut w = base.clone();
        simd::force(SimdLevel::Avx2);
        op(&mut w);
        simd::force(SimdLevel::Scalar);
        assert_eq!(s, w, "{label} diverged (dim={dim}, lanes={lanes})");
    }

    #[test]
    fn slab_kernels_bit_identical() {
        let dim = 8;
        let (s, c) = (0.63_f64).sin_cos();
        let g = Gate1::u3(0.9, -0.4, 1.2);
        for lanes in 1..6usize {
            let trig = lane_trig(lanes);
            let zlo: Vec<(f64, f64)> = trig.iter().map(|&(s, c)| (c, -s)).collect();
            let zhi: Vec<(f64, f64)> = trig.iter().map(|&(s, c)| (c, s)).collect();
            for (mt, mc) in [(1usize, 0usize), (2, 4), (4, 1)] {
                assert_slab_parity("rot_x_slab", dim, lanes, |sl| {
                    rot_x_slab(sl, lanes, dim, mt, mc, s, c)
                });
                assert_slab_parity("rot_y_slab", dim, lanes, |sl| {
                    rot_y_slab(sl, lanes, dim, mt, mc, s, c)
                });
                assert_slab_parity("phase_slab", dim, lanes, |sl| {
                    phase_slab(sl, lanes, dim, mt, mc, (c, -s), (c, s))
                });
                assert_slab_parity("rot_x_slab_lanes", dim, lanes, |sl| {
                    rot_x_slab_lanes(sl, lanes, dim, mt, mc, &trig)
                });
                assert_slab_parity("rot_y_slab_lanes", dim, lanes, |sl| {
                    rot_y_slab_lanes(sl, lanes, dim, mt, mc, &trig)
                });
                assert_slab_parity("phase_slab_lanes", dim, lanes, |sl| {
                    phase_slab_lanes(sl, lanes, dim, mt, mc, &zlo, &zhi)
                });
            }
            assert_slab_parity("gate1_slab", dim, lanes, |sl| {
                gate1_slab(sl, lanes, dim, 2, &g)
            });
            // Non-unitary 4×4 (superoperator-shaped) on every distinct
            // mask pair, both orientations.
            let m4 = busy_mat4(0.3);
            for (ma, mb) in [(1usize, 2usize), (2, 1), (1, 4), (4, 2)] {
                assert_slab_parity("gate2_slab", dim, lanes, |sl| {
                    gate2_slab(sl, lanes, dim, ma, mb, &m4)
                });
            }
        }
    }

    /// Deterministic dense (non-unitary) 4×4 complex matrix.
    fn busy_mat4(salt: f64) -> [[Complex64; 4]; 4] {
        let mut m = [[Complex64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, e) in row.iter_mut().enumerate() {
                let t = salt + 0.7 * r as f64 + 1.3 * c as f64;
                *e = Complex64::new(t.sin(), (2.1 * t).cos() * 0.4);
            }
        }
        m
    }

    #[test]
    fn gate2_slab_matches_apply_gate2_per_lane() {
        // The slab kernel against the canonical statevector `apply_gate2`
        // on a unitary, per extracted lane — same quad decomposition, so
        // results agree to rounding on every mask orientation.
        use crate::apply::apply_gate2;
        use crate::gate::Gate2;
        let dim = 16;
        let lanes = 3;
        let g = Gate2::crx(0.83);
        for (qa, qb) in [(0usize, 2usize), (2, 0), (1, 3)] {
            let slab = busy_row(dim * lanes, 0.9);
            let mut got = slab.clone();
            gate2_slab(&mut got, lanes, dim, 1 << qa, 1 << qb, g.matrix());
            for lane in 0..lanes {
                let mut amps: Vec<Complex64> = (0..dim).map(|i| slab[i * lanes + lane]).collect();
                apply_gate2(&mut amps, qa, qb, &g);
                for i in 0..dim {
                    let d = got[i * lanes + lane] - amps[i];
                    assert!(
                        d.re.abs() < 1e-12 && d.im.abs() < 1e-12,
                        "lane {lane} amp {i} (qa={qa}, qb={qb})"
                    );
                }
            }
        }
    }

    #[test]
    fn slab_kernels_match_per_row_calls() {
        // The slab kernels must visit exactly the per-row kernel's pairs:
        // compare against a hand-rolled enumeration under scalar dispatch.
        let dim = 8;
        let lanes = 3;
        let (s, c) = (0.63_f64).sin_cos();
        simd::force(SimdLevel::Scalar);
        for (mt, mc) in [(1usize, 0usize), (2, 4)] {
            let base = busy_row(dim * lanes, 0.7);
            let mut got = base.clone();
            rot_x_slab(&mut got, lanes, dim, mt, mc, s, c);
            let mut want = base.clone();
            for i0 in 0..dim {
                if i0 & mt != 0 || i0 & mc != mc {
                    continue;
                }
                let (head, tail) = want.split_at_mut((i0 | mt) * lanes);
                rot_x_rows(
                    &mut head[i0 * lanes..(i0 + 1) * lanes],
                    &mut tail[..lanes],
                    s,
                    c,
                );
            }
            assert_eq!(got, want, "rot_x_slab enumeration (mt={mt}, mc={mc})");
        }
    }

    #[test]
    fn adj_acc_slab_bit_identical_and_matches_reference() {
        let dim = 8;
        let mt = 2usize;
        for lanes in 1..6usize {
            let phi = busy_row(dim * lanes, 0.4);
            let lam = busy_row(dim * lanes, 2.2);
            for mc in [0usize, 4] {
                for axis in [AXIS_X, AXIS_Y, AXIS_Z] {
                    let run = |acc: &mut [f64]| match axis {
                        AXIS_X => adj_acc_slab::<AXIS_X>(acc, &lam, &phi, lanes, dim, mt, mc),
                        AXIS_Y => adj_acc_slab::<AXIS_Y>(acc, &lam, &phi, lanes, dim, mt, mc),
                        _ => adj_acc_slab::<AXIS_Z>(acc, &lam, &phi, lanes, dim, mt, mc),
                    };
                    let mut s = vec![0.0f64; lanes];
                    simd::force(SimdLevel::Scalar);
                    run(&mut s);
                    // Naive reference: materialise the generator row and
                    // fold with the same per-term arithmetic.
                    let mut want = vec![0.0f64; lanes];
                    for i in 0..dim {
                        if i & mc != mc {
                            continue;
                        }
                        for k in 0..lanes {
                            let l = lam[i * lanes + k];
                            let x = if axis == AXIS_Z {
                                phi[i * lanes + k]
                            } else {
                                phi[(i ^ mt) * lanes + k]
                            };
                            let g = match axis {
                                AXIS_X => x,
                                AXIS_Y => {
                                    if i & mt != 0 {
                                        Complex64::new(-x.im, x.re)
                                    } else {
                                        Complex64::new(x.im, -x.re)
                                    }
                                }
                                _ => {
                                    if i & mt != 0 {
                                        -x
                                    } else {
                                        x
                                    }
                                }
                            };
                            want[k] += l.re * g.im - l.im * g.re;
                        }
                    }
                    assert_eq!(s, want, "axis {axis} reference (lanes={lanes}, mc={mc})");
                    if simd::wide_supported() {
                        let mut w = vec![0.0f64; lanes];
                        simd::force(SimdLevel::Avx2);
                        run(&mut w);
                        simd::force(SimdLevel::Scalar);
                        assert_eq!(s, w, "axis {axis} diverged (lanes={lanes}, mc={mc})");
                    }
                }
            }
        }
    }

    #[test]
    fn adj_acc_slab_multi_bit_identical_to_per_observable() {
        // The multi-λ kernel must reproduce per-observable adj_acc_slab
        // calls bit-for-bit, on both dispatch paths.
        let dim = 8;
        let mt = 2usize;
        for lanes in 1..6usize {
            let phi = busy_row(dim * lanes, 0.4);
            let lams: Vec<Vec<Complex64>> = (0..3)
                .map(|j| busy_row(dim * lanes, 1.1 + j as f64))
                .collect();
            let lrefs: Vec<&[Complex64]> = lams.iter().map(|l| l.as_slice()).collect();
            for mc in [0usize, 4] {
                for axis in [AXIS_X, AXIS_Y, AXIS_Z] {
                    let single = |acc: &mut [f64], lam: &[Complex64]| match axis {
                        AXIS_X => adj_acc_slab::<AXIS_X>(acc, lam, &phi, lanes, dim, mt, mc),
                        AXIS_Y => adj_acc_slab::<AXIS_Y>(acc, lam, &phi, lanes, dim, mt, mc),
                        _ => adj_acc_slab::<AXIS_Z>(acc, lam, &phi, lanes, dim, mt, mc),
                    };
                    let multi = |accs: &mut [f64], gbuf: &mut [Complex64]| match axis {
                        AXIS_X => adj_acc_slab_multi::<AXIS_X>(
                            accs, &lrefs, &phi, gbuf, lanes, dim, mt, mc,
                        ),
                        AXIS_Y => adj_acc_slab_multi::<AXIS_Y>(
                            accs, &lrefs, &phi, gbuf, lanes, dim, mt, mc,
                        ),
                        _ => adj_acc_slab_multi::<AXIS_Z>(
                            accs, &lrefs, &phi, gbuf, lanes, dim, mt, mc,
                        ),
                    };
                    for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
                        if level == SimdLevel::Avx2 && !simd::wide_supported() {
                            continue;
                        }
                        simd::force(level);
                        let mut want = vec![0.0f64; lams.len() * lanes];
                        for (j, lam) in lams.iter().enumerate() {
                            single(&mut want[j * lanes..(j + 1) * lanes], lam);
                        }
                        let mut got = vec![0.0f64; lams.len() * lanes];
                        let mut gbuf = vec![Complex64::new(0.0, 0.0); lanes];
                        multi(&mut got, &mut gbuf);
                        simd::force(SimdLevel::Scalar);
                        assert_eq!(
                            got, want,
                            "multi diverged (axis {axis}, lanes={lanes}, mc={mc}, {level:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_kernels_match_pair_kernel_formulas() {
        // The row kernels must agree with the statevector pair kernels
        // they mirror: build a 1-qubit state per lane and compare.
        let (s, c) = (1.17_f64).sin_cos();
        let n = 5;
        let mut r0 = busy_row(n, 0.2);
        let mut r1 = busy_row(n, 1.9);
        let refs: Vec<[Complex64; 2]> = r0
            .iter()
            .zip(&r1)
            .map(|(&a0, &a1)| {
                let mut amps = vec![a0, a1];
                simd::force(SimdLevel::Scalar);
                crate::apply::apply_rx_sc(&mut amps, 0, s, c);
                [amps[0], amps[1]]
            })
            .collect();
        simd::force(SimdLevel::Scalar);
        rot_x_rows(&mut r0, &mut r1, s, c);
        for (k, r) in refs.iter().enumerate() {
            assert_eq!(r0[k], r[0]);
            assert_eq!(r1[k], r[1]);
        }
    }
}
