//! In-place gate-application kernels over amplitude slices.
//!
//! These free functions are the hot inner loops of the simulator. They are
//! deliberately written over `&mut [Complex64]` rather than a state type so
//! that both the statevector backend ([`crate::state::StateVector`]) and the
//! density-matrix backend ([`crate::density::DensityMatrix`], which applies
//! gates row-wise and column-wise) can share them.
//!
//! Every kernel dispatches once at entry between a portable scalar
//! implementation and an AVX2 wide implementation (see [`crate::simd`] for
//! the selection rules and the bit-exactness contract — the two paths
//! produce identical bits, so which one runs is purely a throughput
//! question). Pair and controlled kernels enumerate their target indices
//! directly with nested block loops instead of scanning all `2^n` basis
//! states and skipping mismatches, so a two-qubit gate touches exactly the
//! `2^n/4` base indices it acts on.
//!
//! All kernels assume the **little-endian** qubit convention described in
//! [`crate::gate`]: qubit `q` is bit `q` of the basis index. Callers are
//! responsible for validating qubit indices; the kernels only
//! `debug_assert!` them (the wide path additionally `assert!`s, since an
//! invalid mask there would be unsound rather than a panic).

use crate::complex::Complex64;
use crate::gate::{Gate1, Gate2};
#[cfg(target_arch = "x86_64")]
use crate::simd::{self, SimdLevel};

/// `true` when this call should take the AVX2 path. The `len` guard keeps
/// degenerate single-amplitude slices (never valid for pair kernels, but
/// tolerated by the scalar code's bounds checks) off the unsafe path.
#[cfg(target_arch = "x86_64")]
#[inline]
fn wide(len: usize) -> bool {
    len >= 2 && simd::level() == SimdLevel::Avx2
}

/// Visits every basis index `i < len` with bits `lo` and `hi` clear
/// (`lo < hi`, both powers of two), in ascending order. The innermost
/// range is a contiguous run of `lo` indices — the structure the wide
/// kernels vectorise over.
#[inline]
fn for_each_clear2(len: usize, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
    debug_assert!(lo < hi);
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + hi {
            for i in b..b + lo {
                f(i);
            }
            b += lo << 1;
        }
        a += hi << 1;
    }
}

/// Three-mask variant of [`for_each_clear2`] (`m0 < m1 < m2`).
#[inline]
fn for_each_clear3(len: usize, m0: usize, m1: usize, m2: usize, mut f: impl FnMut(usize)) {
    debug_assert!(m0 < m1 && m1 < m2);
    let mut a = 0;
    while a < len {
        let mut b = a;
        while b < a + m2 {
            let mut c = b;
            while c < b + m1 {
                for i in c..c + m0 {
                    f(i);
                }
                c += m0 << 1;
            }
            b += m1 << 1;
        }
        a += m2 << 1;
    }
}

/// Applies a single-qubit gate to qubit `q` of an amplitude vector.
///
/// `amps.len()` must be a power of two and `q` must index a valid bit.
pub fn apply_gate1(amps: &mut [Complex64], q: usize, gate: &Gate1) {
    let len = amps.len();
    debug_assert!(len.is_power_of_two());
    debug_assert!(
        1usize << q < len || (len == 1 && q == 0),
        "qubit {q} out of range"
    );
    #[cfg(target_arch = "x86_64")]
    if wide(len) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::gate1(amps, q, gate) };
    }
    let m = gate.matrix();
    let stride = 1usize << q;
    let mut base = 0;
    while base < len {
        for i0 in base..base + stride {
            let i1 = i0 + stride;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
        base += stride << 1;
    }
}

/// Applies a two-qubit gate to qubits `(qa, qb)` of an amplitude vector.
///
/// `qa` contributes **bit 0** and `qb` **bit 1** of the 2-bit index into
/// the gate's 4×4 matrix, matching [`Gate2`]'s documented convention (for
/// [`Gate2::cnot`], `qa` is the control and `qb` the target).
pub fn apply_gate2(amps: &mut [Complex64], qa: usize, qb: usize, gate: &Gate2) {
    let len = amps.len();
    debug_assert!(len.is_power_of_two());
    debug_assert!(qa != qb, "two-qubit gate needs distinct wires");
    debug_assert!((1usize << qa) < len && (1usize << qb) < len);
    #[cfg(target_arch = "x86_64")]
    if wide(len) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::gate2(amps, qa, qb, gate) };
    }
    let m = gate.matrix();
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    for_each_clear2(len, ma.min(mb), ma.max(mb), |i| {
        let i00 = i;
        let i01 = i | ma;
        let i10 = i | mb;
        let i11 = i | ma | mb;
        let v = [amps[i00], amps[i01], amps[i10], amps[i11]];
        for (row, &idx) in [i00, i01, i10, i11].iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (col, &vc) in v.iter().enumerate() {
                acc = m[row][col].mul_acc(vc, acc);
            }
            amps[idx] = acc;
        }
    });
}

/// Applies a single-qubit gate to `target`, conditioned on `control` being
/// `|1⟩`. Specialised fast path that skips the 4×4 matrix entirely.
pub fn apply_controlled_gate1(amps: &mut [Complex64], control: usize, target: usize, gate: &Gate1) {
    let len = amps.len();
    debug_assert!(control != target);
    debug_assert!((1usize << control) < len && (1usize << target) < len);
    #[cfg(target_arch = "x86_64")]
    if wide(len) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::controlled_gate1(amps, control, target, gate) };
    }
    let m = gate.matrix();
    let mc = 1usize << control;
    let mt = 1usize << target;
    // Visit each (control = 1, target = 0) index once.
    for_each_clear2(len, mc.min(mt), mc.max(mt), |i| {
        let i0 = i | mc;
        let i1 = i0 | mt;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = m[0][0] * a0 + m[0][1] * a1;
        amps[i1] = m[1][0] * a0 + m[1][1] * a1;
    });
}

/// Toffoli (CCX) fast path: swaps amplitude pairs where **both** control
/// bits are set.
pub fn apply_toffoli(amps: &mut [Complex64], control1: usize, control2: usize, target: usize) {
    let len = amps.len();
    debug_assert!(control1 != control2 && control1 != target && control2 != target);
    debug_assert!(
        (1usize << control1) < len && (1usize << control2) < len && (1usize << target) < len
    );
    let mc = (1usize << control1) | (1usize << control2);
    let mt = 1usize << target;
    let mut masks = [1usize << control1, 1usize << control2, mt];
    masks.sort_unstable();
    for_each_clear3(len, masks[0], masks[1], masks[2], |i| {
        let i0 = i | mc;
        amps.swap(i0, i0 | mt);
    });
}

/// Specialised Rx kernel: `Rx(θ) = [[c, −is], [−is, c]]` with
/// `c = cos(θ/2)`, `s = sin(θ/2)`. Avoids the generic complex 2×2
/// product — the batched runtime's hot path for encoder layers.
pub fn apply_rx(amps: &mut [Complex64], q: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_rx_sc(amps, q, s, c);
}

/// [`apply_rx`] with the half-angle sine/cosine precomputed — the
/// prebound-schedule hot path, where a parameter rotation's trig is
/// evaluated once per parameter set instead of once per circuit run.
/// `(s, c)` must be `(sin(θ/2), cos(θ/2))` (the `sin_cos()` order).
#[inline]
pub fn apply_rx_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::rx_sc(amps, q, s, c) };
    }
    let stride = 1usize << q;
    let mut base = 0;
    while base < amps.len() {
        for i0 in base..base + stride {
            let i1 = i0 + stride;
            let a0 = amps[i0];
            let a1 = amps[i1];
            // c·a0 − i·s·a1  and  −i·s·a0 + c·a1.
            amps[i0] = Complex64::new(c * a0.re + s * a1.im, c * a0.im - s * a1.re);
            amps[i1] = Complex64::new(s * a0.im + c * a1.re, -s * a0.re + c * a1.im);
        }
        base += stride << 1;
    }
}

/// Specialised Ry kernel: `Ry(θ) = [[c, −s], [s, c]]` is purely real, so
/// each amplitude pair needs 8 real multiplies instead of the generic 16.
pub fn apply_ry(amps: &mut [Complex64], q: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_ry_sc(amps, q, s, c);
}

/// [`apply_ry`] with the half-angle sine/cosine precomputed (see
/// [`apply_rx_sc`]).
#[inline]
pub fn apply_ry_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::ry_sc(amps, q, s, c) };
    }
    let stride = 1usize << q;
    let mut base = 0;
    while base < amps.len() {
        for i0 in base..base + stride {
            let i1 = i0 + stride;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = Complex64::new(c * a0.re - s * a1.re, c * a0.im - s * a1.im);
            amps[i1] = Complex64::new(s * a0.re + c * a1.re, s * a0.im + c * a1.im);
        }
        base += stride << 1;
    }
}

/// Specialised Rz kernel: `Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})` is
/// diagonal — one complex multiply per amplitude, no pairing.
pub fn apply_rz(amps: &mut [Complex64], q: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_rz_sc(amps, q, s, c);
}

/// [`apply_rz`] with the half-angle sine/cosine precomputed (see
/// [`apply_rx_sc`]).
#[inline]
pub fn apply_rz_sc(amps: &mut [Complex64], q: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::rz_sc(amps, q, s, c) };
    }
    let stride = 1usize << q;
    let mut base = 0;
    while base < amps.len() {
        for a in &mut amps[base..base + stride] {
            *a = Complex64::new(a.re * c - a.im * -s, a.re * -s + a.im * c);
        }
        for a in &mut amps[base + stride..base + (stride << 1)] {
            *a = Complex64::new(a.re * c - a.im * s, a.re * s + a.im * c);
        }
        base += stride << 1;
    }
}

/// Controlled variant of [`apply_rx`]: the rotation acts on `target` only
/// where the `control` bit is set.
pub fn apply_crx(amps: &mut [Complex64], control: usize, target: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_crx_sc(amps, control, target, s, c);
}

/// [`apply_crx`] with the half-angle sine/cosine precomputed (see
/// [`apply_rx_sc`]).
#[inline]
pub fn apply_crx_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::crx_sc(amps, control, target, s, c) };
    }
    let mc = 1usize << control;
    let mt = 1usize << target;
    for_each_clear2(amps.len(), mc.min(mt), mc.max(mt), |i| {
        let i0 = i | mc;
        let i1 = i0 | mt;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = Complex64::new(c * a0.re + s * a1.im, c * a0.im - s * a1.re);
        amps[i1] = Complex64::new(s * a0.im + c * a1.re, -s * a0.re + c * a1.im);
    });
}

/// Controlled variant of [`apply_ry`].
pub fn apply_cry(amps: &mut [Complex64], control: usize, target: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_cry_sc(amps, control, target, s, c);
}

/// [`apply_cry`] with the half-angle sine/cosine precomputed (see
/// [`apply_rx_sc`]).
#[inline]
pub fn apply_cry_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::cry_sc(amps, control, target, s, c) };
    }
    let mc = 1usize << control;
    let mt = 1usize << target;
    for_each_clear2(amps.len(), mc.min(mt), mc.max(mt), |i| {
        let i0 = i | mc;
        let i1 = i0 | mt;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = Complex64::new(c * a0.re - s * a1.re, c * a0.im - s * a1.im);
        amps[i1] = Complex64::new(s * a0.re + c * a1.re, s * a0.im + c * a1.im);
    });
}

/// Controlled variant of [`apply_rz`] (diagonal: phase only, applied to
/// control-set amplitudes).
pub fn apply_crz(amps: &mut [Complex64], control: usize, target: usize, theta: f64) {
    let (s, c) = (theta / 2.0).sin_cos();
    apply_crz_sc(amps, control, target, s, c);
}

/// [`apply_crz`] with the half-angle sine/cosine precomputed (see
/// [`apply_rx_sc`]).
#[inline]
pub fn apply_crz_sc(amps: &mut [Complex64], control: usize, target: usize, s: f64, c: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide(amps.len()) {
        // SAFETY: level() == Avx2 implies the CPU supports AVX2.
        return unsafe { crate::wide::crz_sc(amps, control, target, s, c) };
    }
    let mc = 1usize << control;
    let mt = 1usize << target;
    for_each_clear2(amps.len(), mc.min(mt), mc.max(mt), |i| {
        let i0 = i | mc;
        let i1 = i0 | mt;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = Complex64::new(a0.re * c - a0.im * -s, a0.re * -s + a0.im * c);
        amps[i1] = Complex64::new(a1.re * c - a1.im * s, a1.re * s + a1.im * c);
    });
}

/// CZ fast path: the gate is diagonal — flip the sign where both bits
/// are set.
pub fn apply_cz(amps: &mut [Complex64], qa: usize, qb: usize) {
    let len = amps.len();
    debug_assert!(qa != qb);
    debug_assert!((1usize << qa) < len && (1usize << qb) < len);
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    let both = ma | mb;
    // Sign flips are order-independent elementwise negations; enumerate
    // the both-set runs directly and let LLVM vectorise the negation.
    for_each_clear2(len, ma.min(mb), ma.max(mb), |i| {
        let a = &mut amps[i | both];
        *a = -*a;
    });
}

/// CNOT fast path: swaps amplitude pairs where the control bit is set.
pub fn apply_cnot(amps: &mut [Complex64], control: usize, target: usize) {
    let len = amps.len();
    debug_assert!(control != target);
    debug_assert!((1usize << control) < len && (1usize << target) < len);
    let mc = 1usize << control;
    let mt = 1usize << target;
    for_each_clear2(len, mc.min(mt), mc.max(mt), |i| {
        let i0 = i | mc;
        amps.swap(i0, i0 | mt);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate1;
    use crate::simd;

    fn zero_state(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[0] = Complex64::ONE;
        v
    }

    fn norm(amps: &[Complex64]) -> f64 {
        amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// A deterministic non-trivial state: rotate every qubit.
    fn busy_state(n: usize) -> Vec<Complex64> {
        let mut amps = zero_state(n);
        for w in 0..n {
            apply_gate1(&mut amps, w, &Gate1::u3(0.5 + 0.3 * w as f64, 0.3, -0.8));
        }
        for w in 1..n {
            apply_cnot(&mut amps, w - 1, w);
        }
        amps
    }

    #[test]
    fn x_on_each_qubit_flips_the_right_bit() {
        for n in 1..=4 {
            for q in 0..n {
                let mut amps = zero_state(n);
                apply_gate1(&mut amps, q, &Gate1::pauli_x());
                for (i, a) in amps.iter().enumerate() {
                    let expect = if i == 1 << q { 1.0 } else { 0.0 };
                    assert!((a.re - expect).abs() < 1e-15, "n={n} q={q} i={i}");
                    assert!(a.im.abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn hadamard_preserves_norm() {
        let mut amps = zero_state(3);
        for q in 0..3 {
            apply_gate1(&mut amps, q, &Gate1::hadamard());
        }
        assert!((norm(&amps) - 1.0).abs() < 1e-12);
        // Uniform superposition: every |amp|² = 1/8.
        for a in &amps {
            assert!((a.norm_sqr() - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn cnot_builds_bell_pair() {
        let mut amps = zero_state(2);
        apply_gate1(&mut amps, 0, &Gate1::hadamard());
        apply_cnot(&mut amps, 0, 1);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!((amps[0b00].re - h).abs() < 1e-12);
        assert!((amps[0b11].re - h).abs() < 1e-12);
        assert!(amps[0b01].abs() < 1e-15);
        assert!(amps[0b10].abs() < 1e-15);
    }

    #[test]
    fn cnot_matrix_and_fast_path_agree() {
        let mut a = zero_state(3);
        let mut b = zero_state(3);
        // Prepare a non-trivial state first.
        for q in 0..3 {
            apply_gate1(&mut a, q, &Gate1::rx(0.3 + q as f64));
            apply_gate1(&mut b, q, &Gate1::rx(0.3 + q as f64));
        }
        apply_cnot(&mut a, 2, 0);
        apply_gate2(&mut b, 2, 0, &crate::gate::Gate2::cnot());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn controlled_gate_fast_path_matches_gate2() {
        let g = Gate1::ry(1.234);
        let mut a = zero_state(3);
        let mut b = zero_state(3);
        for q in 0..3 {
            apply_gate1(&mut a, q, &Gate1::hadamard());
            apply_gate1(&mut b, q, &Gate1::hadamard());
        }
        apply_controlled_gate1(&mut a, 1, 2, &g);
        apply_gate2(&mut b, 1, 2, &crate::gate::Gate2::controlled(&g));
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn two_qubit_gate_preserves_norm() {
        let mut amps = zero_state(4);
        for q in 0..4 {
            apply_gate1(&mut amps, q, &Gate1::ry(0.2 * (q + 1) as f64));
        }
        apply_gate2(&mut amps, 1, 3, &crate::gate::Gate2::crx(0.9));
        assert!((norm(&amps) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn specialised_rotation_kernels_match_generic_matrices() {
        for theta in [0.0, 0.37, -1.2, 2.9, -3.1] {
            for q in 0..3 {
                let mut amps = zero_state(3);
                for w in 0..3 {
                    apply_gate1(&mut amps, w, &Gate1::u3(0.5 + w as f64, 0.3, -0.8));
                }
                let mut reference = amps.clone();

                apply_rx(&mut amps, q, theta);
                apply_gate1(&mut reference, q, &Gate1::rx(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "rx q={q} θ={theta}");
                }

                apply_ry(&mut amps, q, theta);
                apply_gate1(&mut reference, q, &Gate1::ry(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "ry q={q} θ={theta}");
                }

                apply_rz(&mut amps, q, theta);
                apply_gate1(&mut reference, q, &Gate1::rz(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "rz q={q} θ={theta}");
                }
            }
        }
    }

    #[test]
    fn specialised_controlled_kernels_match_generic() {
        for theta in [0.61, -2.3] {
            for (ctl, tgt) in [(0usize, 2usize), (2, 0), (1, 2)] {
                let mut amps = zero_state(3);
                for w in 0..3 {
                    apply_gate1(&mut amps, w, &Gate1::u3(0.9 * w as f64 + 0.2, -0.4, 1.1));
                }
                let mut reference = amps.clone();

                apply_crx(&mut amps, ctl, tgt, theta);
                apply_controlled_gate1(&mut reference, ctl, tgt, &Gate1::rx(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "crx {ctl}->{tgt}");
                }

                apply_cry(&mut amps, ctl, tgt, theta);
                apply_controlled_gate1(&mut reference, ctl, tgt, &Gate1::ry(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "cry {ctl}->{tgt}");
                }

                apply_crz(&mut amps, ctl, tgt, theta);
                apply_controlled_gate1(&mut reference, ctl, tgt, &Gate1::rz(theta));
                for (a, b) in amps.iter().zip(&reference) {
                    assert!((*a - *b).abs() < 1e-14, "crz {ctl}->{tgt}");
                }
            }
        }
    }

    #[test]
    fn precomputed_trig_kernels_are_bit_identical() {
        // The `_sc` variants must be *bit*-identical to the θ variants
        // (the prebound runtime path relies on it), not merely close.
        for theta in [0.0f64, 0.37, -1.2, 2.9] {
            let (s, c) = (theta / 2.0).sin_cos();
            let prepared = || {
                let mut amps = zero_state(3);
                for w in 0..3 {
                    apply_gate1(&mut amps, w, &Gate1::u3(0.5 + w as f64, 0.3, -0.8));
                }
                amps
            };
            type ThetaKernel = fn(&mut [Complex64], usize, f64);
            type ScKernel = fn(&mut [Complex64], usize, f64, f64);
            let singles: [(ThetaKernel, ScKernel); 3] = [
                (apply_rx, apply_rx_sc),
                (apply_ry, apply_ry_sc),
                (apply_rz, apply_rz_sc),
            ];
            for (full, sc) in singles {
                for q in 0..3 {
                    let mut a = prepared();
                    let mut b = a.clone();
                    full(&mut a, q, theta);
                    sc(&mut b, q, s, c);
                    assert_eq!(a, b, "q={q} θ={theta}");
                }
            }
            type CThetaKernel = fn(&mut [Complex64], usize, usize, f64);
            type CScKernel = fn(&mut [Complex64], usize, usize, f64, f64);
            let controlled: [(CThetaKernel, CScKernel); 3] = [
                (apply_crx, apply_crx_sc),
                (apply_cry, apply_cry_sc),
                (apply_crz, apply_crz_sc),
            ];
            for (full, sc) in controlled {
                let mut a = prepared();
                let mut b = a.clone();
                full(&mut a, 0, 2, theta);
                sc(&mut b, 0, 2, s, c);
                assert_eq!(a, b, "controlled θ={theta}");
            }
        }
    }

    #[test]
    fn cz_kernel_matches_gate2() {
        let mut a = zero_state(3);
        let mut b = zero_state(3);
        for q in 0..3 {
            apply_gate1(&mut a, q, &Gate1::u3(0.4 * q as f64 + 0.1, 0.2, 0.9));
            apply_gate1(&mut b, q, &Gate1::u3(0.4 * q as f64 + 0.1, 0.2, 0.9));
        }
        apply_cz(&mut a, 0, 2);
        apply_gate2(&mut b, 0, 2, &crate::gate::Gate2::cz());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-14);
        }
    }

    #[test]
    fn gate_on_nonadjacent_qubits_only_touches_them() {
        // Start in |q3 q2 q1 q0⟩ = |0100⟩, CNOT(control=2, target=0).
        let mut amps = vec![Complex64::ZERO; 16];
        amps[0b0100] = Complex64::ONE;
        apply_cnot(&mut amps, 2, 0);
        assert!((amps[0b0101].re - 1.0).abs() < 1e-15);
    }

    /// The pre-PR skip-scan enumerations, kept as the reference the direct
    /// block enumeration is tested against.
    mod skip_scan {
        use super::*;

        pub fn cnot(amps: &mut [Complex64], control: usize, target: usize) {
            let mc = 1usize << control;
            let mt = 1usize << target;
            for i in 0..amps.len() {
                if i & mc == 0 || i & mt != 0 {
                    continue;
                }
                amps.swap(i, i | mt);
            }
        }

        pub fn cz(amps: &mut [Complex64], qa: usize, qb: usize) {
            let mask = (1usize << qa) | (1usize << qb);
            for (i, a) in amps.iter_mut().enumerate() {
                if i & mask == mask {
                    *a = -*a;
                }
            }
        }

        pub fn toffoli(amps: &mut [Complex64], c1: usize, c2: usize, t: usize) {
            let mc = (1usize << c1) | (1usize << c2);
            let mt = 1usize << t;
            for i in 0..amps.len() {
                if i & mc != mc || i & mt != 0 {
                    continue;
                }
                amps.swap(i, i | mt);
            }
        }

        pub fn gate2(amps: &mut [Complex64], qa: usize, qb: usize, gate: &Gate2) {
            let m = gate.matrix();
            let ma = 1usize << qa;
            let mb = 1usize << qb;
            for i in 0..amps.len() {
                if i & ma != 0 || i & mb != 0 {
                    continue;
                }
                let idxs = [i, i | ma, i | mb, i | ma | mb];
                let v = idxs.map(|k| amps[k]);
                for (row, &idx) in idxs.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (col, &vc) in v.iter().enumerate() {
                        acc = m[row][col].mul_acc(vc, acc);
                    }
                    amps[idx] = acc;
                }
            }
        }

        pub fn controlled_gate1(
            amps: &mut [Complex64],
            control: usize,
            target: usize,
            gate: &Gate1,
        ) {
            let m = gate.matrix();
            let mc = 1usize << control;
            let mt = 1usize << target;
            for i in 0..amps.len() {
                if i & mc == 0 || i & mt != 0 {
                    continue;
                }
                let i1 = i | mt;
                let a0 = amps[i];
                let a1 = amps[i1];
                amps[i] = m[0][0] * a0 + m[0][1] * a1;
                amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Direct block enumeration must visit exactly the indices the old
    /// skip-scan visited: states must come out bit-identical under the
    /// forced-scalar path (and, by the wide parity suite, under AVX2 too).
    #[test]
    fn direct_enumeration_matches_skip_scan() {
        let before = simd::level();
        simd::force(simd::SimdLevel::Scalar);
        for n in 2..=6usize {
            for qa in 0..n {
                for qb in 0..n {
                    if qa == qb {
                        continue;
                    }
                    let base = busy_state(n);

                    let mut a = base.clone();
                    let mut b = base.clone();
                    apply_cnot(&mut a, qa, qb);
                    skip_scan::cnot(&mut b, qa, qb);
                    assert_eq!(a, b, "cnot n={n} {qa}->{qb}");

                    let mut a = base.clone();
                    let mut b = base.clone();
                    apply_cz(&mut a, qa, qb);
                    skip_scan::cz(&mut b, qa, qb);
                    assert_eq!(a, b, "cz n={n} ({qa},{qb})");

                    let g2 = crate::gate::Gate2::crx(0.83);
                    let mut a = base.clone();
                    let mut b = base.clone();
                    apply_gate2(&mut a, qa, qb, &g2);
                    skip_scan::gate2(&mut b, qa, qb, &g2);
                    assert_eq!(a, b, "gate2 n={n} ({qa},{qb})");

                    let g1 = Gate1::u3(0.7, -0.2, 1.3);
                    let mut a = base.clone();
                    let mut b = base.clone();
                    apply_controlled_gate1(&mut a, qa, qb, &g1);
                    skip_scan::controlled_gate1(&mut b, qa, qb, &g1);
                    assert_eq!(a, b, "cgate1 n={n} {qa}->{qb}");

                    for qc in 0..n {
                        if qc == qa || qc == qb {
                            continue;
                        }
                        let mut a = base.clone();
                        let mut b = base.clone();
                        apply_toffoli(&mut a, qa, qb, qc);
                        skip_scan::toffoli(&mut b, qa, qb, qc);
                        assert_eq!(a, b, "toffoli n={n} ({qa},{qb})->{qc}");
                    }
                }
            }
        }
        simd::force(before);
    }
}
