//! Single-wire superoperators over vectorized density matrices.
//!
//! A row-major `2^n × 2^n` density matrix is, viewed as one flat vector,
//! a `4^n`-amplitude register: flat index `r·2^n + c` has the **column**
//! bits `c` at positions `0‥n` and the **row** bits `r` at `n‥2n`. A
//! unitary `ρ → U ρ U†` on wire `q` then acts as `U` on bit `q + n` and
//! `conj(U)` on bit `q`, and a single-qubit channel `ρ → Σᵢ Kᵢ ρ Kᵢ†`
//! becomes one dense 4×4 matrix on the bit *pair* `(q, q + n)` — exactly
//! the shape [`crate::rows::gate2_slab`] applies over lane slabs.
//!
//! This module builds those 4×4 matrices. The convention matches
//! [`Gate2`] and `gate2_slab`: bit 0 of the 4×4 index is the **first**
//! mask (the column bit `q`), bit 1 the second (the row bit `q + n`), so
//! entry `[c + 2r][c' + 2r']` is the coefficient of `ρ[r', c']` in
//! `ρ'[r, c]` restricted to wire `q`.
//!
//! The compiled Noisy backend premultiplies each concrete gate with its
//! noise channel here — `Σᵢ (KᵢU) ⊗ conj(KᵢU)` is a single slab pass per
//! gate — instead of interpreting gate and Kraus operators separately
//! over full matrix clones.

use crate::complex::Complex64;
use crate::gate::{Gate1, Gate2};

/// Adds `A ⊗ conj(A)` (in the column-bit-0 / row-bit-1 convention) to
/// an accumulating 4×4.
fn accumulate(m: &mut [[Complex64; 4]; 4], a: &Gate1) {
    let g = a.matrix();
    for r in 0..2 {
        for c in 0..2 {
            for rp in 0..2 {
                for cp in 0..2 {
                    m[c + 2 * r][cp + 2 * rp] += g[r][rp] * g[c][cp].conj();
                }
            }
        }
    }
}

/// The superoperator of a unitary on one wire: `U ⊗ conj(U)`.
pub fn unitary_superop(u: &Gate1) -> Gate2 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    accumulate(&mut m, u);
    Gate2::from_matrix(m)
}

/// The superoperator of a single-qubit channel: `Σᵢ Kᵢ ⊗ conj(Kᵢ)`.
pub fn kraus_superop(kraus: &[Gate1]) -> Gate2 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for k in kraus {
        accumulate(&mut m, k);
    }
    Gate2::from_matrix(m)
}

/// Gate followed by channel, fused: `Σᵢ (Kᵢ·U) ⊗ conj(Kᵢ·U)` — one
/// dense 4×4 per (gate, channel) pair, the prebind product of the
/// compiled Noisy backend.
pub fn gate_kraus_superop(u: &Gate1, kraus: &[Gate1]) -> Gate2 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for k in kraus {
        accumulate(&mut m, &k.matmul(u));
    }
    Gate2::from_matrix(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::noise::NoiseChannel;
    use crate::rows::gate2_slab;

    /// A busy mixed test state: a few gates on `|0…0⟩⟨0…0|` plus one
    /// channel so off-diagonals and mixedness are both exercised.
    fn busy_rho(n: usize) -> DensityMatrix {
        let mut rho = DensityMatrix::zero(n);
        rho.apply_gate1(0, &Gate1::hadamard()).unwrap();
        rho.apply_gate1(1, &Gate1::rx(0.7)).unwrap();
        rho.apply_gate2(0, 1, &Gate2::cnot()).unwrap();
        rho.apply_gate1(n - 1, &Gate1::ry(-1.1)).unwrap();
        rho.apply_kraus1(0, &NoiseChannel::Depolarizing { p: 0.05 }.kraus_operators())
            .unwrap();
        rho
    }

    fn vectorize(rho: &DensityMatrix) -> Vec<Complex64> {
        let dim = rho.dim();
        (0..dim * dim)
            .map(|f| rho.element(f / dim, f % dim))
            .collect()
    }

    fn assert_close(flat: &[Complex64], rho: &DensityMatrix, label: &str) {
        let dim = rho.dim();
        for (f, got) in flat.iter().enumerate() {
            let want = rho.element(f / dim, f % dim);
            assert!(
                (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                "{label}: flat index {f}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn unitary_superop_matches_apply_gate1() {
        let n = 3;
        for q in 0..n {
            let rho = busy_rho(n);
            let mut flat = vectorize(&rho);
            let u = Gate1::u3(0.9, -0.3, 1.4);
            let sup = unitary_superop(&u);
            gate2_slab(
                &mut flat,
                1,
                1 << (2 * n),
                1 << q,
                1 << (q + n),
                sup.matrix(),
            );
            let mut want = rho;
            want.apply_gate1(q, &u).unwrap();
            assert_close(&flat, &want, "unitary");
        }
    }

    #[test]
    fn kraus_superop_matches_apply_kraus1() {
        let n = 3;
        for channel in [
            NoiseChannel::Depolarizing { p: 0.1 },
            NoiseChannel::BitFlip { p: 0.2 },
            NoiseChannel::AmplitudeDamping { gamma: 0.15 },
        ] {
            let kraus = channel.kraus_operators();
            for q in 0..n {
                let rho = busy_rho(n);
                let mut flat = vectorize(&rho);
                let sup = kraus_superop(&kraus);
                gate2_slab(
                    &mut flat,
                    1,
                    1 << (2 * n),
                    1 << q,
                    1 << (q + n),
                    sup.matrix(),
                );
                let mut want = rho;
                want.apply_kraus1(q, &kraus).unwrap();
                assert_close(&flat, &want, "kraus");
            }
        }
    }

    #[test]
    fn fused_gate_kraus_superop_matches_sequential_application() {
        let n = 2;
        let u = Gate1::rz(0.6);
        let kraus = NoiseChannel::Depolarizing { p: 0.08 }.kraus_operators();
        for q in 0..n {
            let rho = busy_rho(n);
            let mut flat = vectorize(&rho);
            let sup = gate_kraus_superop(&u, &kraus);
            gate2_slab(
                &mut flat,
                1,
                1 << (2 * n),
                1 << q,
                1 << (q + n),
                sup.matrix(),
            );
            let mut want = rho;
            want.apply_gate1(q, &u).unwrap();
            want.apply_kraus1(q, &kraus).unwrap();
            assert_close(&flat, &want, "fused");
        }
        // And the fused product equals the composition of the parts.
        let fused = gate_kraus_superop(&u, &kraus);
        let composed = kraus_superop(&kraus).matmul(&unitary_superop(&u));
        assert!(fused.approx_eq(&composed, 1e-14));
    }

    #[test]
    fn identity_channel_superop_is_identity() {
        let sup = kraus_superop(&[Gate1::identity()]);
        assert!(sup.approx_eq(&Gate2::identity(), 0.0));
    }
}
