//! The quantum gate library: single- and two-qubit unitaries as value types.
//!
//! Gates are stored as dense matrices (`[[Complex64; 2]; 2]` and
//! `[[Complex64; 4]; 4]`). At the register widths this project targets
//! (≤ 16 qubits for the naive-CTDE ablation), dense matrix application is
//! both the simplest and the fastest correct choice.
//!
//! The convention throughout the crate is **little-endian**: qubit `q`
//! corresponds to bit `q` of the computational-basis index, so the basis
//! state `|q_{n-1} … q_1 q_0⟩` has index `Σ q_i · 2^i`.

use crate::complex::Complex64;

/// A dense 2×2 single-qubit unitary, row-major (`m[row][col]`).
///
/// # Examples
///
/// ```
/// use qmarl_qsim::gate::Gate1;
///
/// // H·H = I
/// let hh = Gate1::hadamard().matmul(&Gate1::hadamard());
/// assert!(hh.approx_eq(&Gate1::identity(), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate1 {
    m: [[Complex64; 2]; 2],
}

const Z0: Complex64 = Complex64::ZERO;
const O1: Complex64 = Complex64::ONE;
const IM: Complex64 = Complex64::I;

impl Gate1 {
    /// Builds a gate from an explicit row-major matrix.
    ///
    /// No unitarity check is performed; use [`Gate1::is_unitary`] when the
    /// matrix comes from untrusted input.
    #[inline]
    pub const fn from_matrix(m: [[Complex64; 2]; 2]) -> Self {
        Gate1 { m }
    }

    /// The underlying matrix.
    #[inline]
    pub const fn matrix(&self) -> &[[Complex64; 2]; 2] {
        &self.m
    }

    /// The identity gate `I`.
    pub const fn identity() -> Self {
        Gate1::from_matrix([[O1, Z0], [Z0, O1]])
    }

    /// The Pauli-X (NOT) gate.
    pub const fn pauli_x() -> Self {
        Gate1::from_matrix([[Z0, O1], [O1, Z0]])
    }

    /// The Pauli-Y gate.
    pub const fn pauli_y() -> Self {
        Gate1::from_matrix([[Z0, Complex64::new(0.0, -1.0)], [IM, Z0]])
    }

    /// The Pauli-Z gate.
    pub const fn pauli_z() -> Self {
        Gate1::from_matrix([[O1, Z0], [Z0, Complex64::new(-1.0, 0.0)]])
    }

    /// The Hadamard gate.
    pub fn hadamard() -> Self {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        Gate1::from_matrix([
            [Complex64::from_real(h), Complex64::from_real(h)],
            [Complex64::from_real(h), Complex64::from_real(-h)],
        ])
    }

    /// The phase gate `S = diag(1, i)`.
    pub const fn s() -> Self {
        Gate1::from_matrix([[O1, Z0], [Z0, IM]])
    }

    /// The inverse phase gate `S† = diag(1, −i)`.
    pub const fn s_dagger() -> Self {
        Gate1::from_matrix([[O1, Z0], [Z0, Complex64::new(0.0, -1.0)]])
    }

    /// The T gate `diag(1, e^{iπ/4})`.
    pub fn t() -> Self {
        Gate1::from_matrix([
            [O1, Z0],
            [Z0, Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_4)],
        ])
    }

    /// The inverse T gate.
    pub fn t_dagger() -> Self {
        Gate1::from_matrix([
            [O1, Z0],
            [Z0, Complex64::from_polar(1.0, -std::f64::consts::FRAC_PI_4)],
        ])
    }

    /// Rotation about the X axis: `Rx(θ) = e^{−iθX/2}`.
    ///
    /// This is the gate the paper's state encoder uses for the first and
    /// fourth encoding layers (Fig. 1).
    pub fn rx(theta: f64) -> Self {
        let c = Complex64::from_real((theta / 2.0).cos());
        let s = Complex64::new(0.0, -(theta / 2.0).sin());
        Gate1::from_matrix([[c, s], [s, c]])
    }

    /// Rotation about the Y axis: `Ry(θ) = e^{−iθY/2}`.
    pub fn ry(theta: f64) -> Self {
        let c = Complex64::from_real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        Gate1::from_matrix([[c, Complex64::from_real(-s)], [Complex64::from_real(s), c]])
    }

    /// Rotation about the Z axis: `Rz(θ) = e^{−iθZ/2}`.
    pub fn rz(theta: f64) -> Self {
        Gate1::from_matrix([
            [Complex64::from_polar(1.0, -theta / 2.0), Z0],
            [Z0, Complex64::from_polar(1.0, theta / 2.0)],
        ])
    }

    /// The phase-shift gate `P(λ) = diag(1, e^{iλ})`.
    pub fn phase(lambda: f64) -> Self {
        Gate1::from_matrix([[O1, Z0], [Z0, Complex64::from_polar(1.0, lambda)]])
    }

    /// The general single-qubit rotation
    /// `U3(θ, φ, λ)` in the OpenQASM convention.
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Self {
        let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Gate1::from_matrix([
            [Complex64::from_real(ct), -Complex64::from_polar(st, lambda)],
            [
                Complex64::from_polar(st, phi),
                Complex64::from_polar(ct, phi + lambda),
            ],
        ])
    }

    /// The adjoint (conjugate transpose) of this gate.
    pub fn dagger(&self) -> Self {
        let m = &self.m;
        Gate1::from_matrix([
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ])
    }

    /// Matrix product `self · rhs` (i.e. `rhs` applied first).
    pub fn matmul(&self, rhs: &Gate1) -> Self {
        let a = &self.m;
        let b = &rhs.m;
        let mut out = [[Z0; 2]; 2];
        for (r, out_row) in out.iter_mut().enumerate() {
            for (c, out_elem) in out_row.iter_mut().enumerate() {
                *out_elem = a[r][0] * b[0][c] + a[r][1] * b[1][c];
            }
        }
        Gate1::from_matrix(out)
    }

    /// Returns `true` when `U†U = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.dagger()
            .matmul(self)
            .approx_eq(&Gate1::identity(), tol)
    }

    /// Element-wise comparison within `tol`.
    pub fn approx_eq(&self, other: &Gate1, tol: f64) -> bool {
        self.m
            .iter()
            .flatten()
            .zip(other.m.iter().flatten())
            .all(|(a, b)| (*a - *b).abs() <= tol)
    }
}

/// A dense 4×4 two-qubit unitary, row-major.
///
/// Index convention inside the 4×4 matrix: basis `|q_hi q_lo⟩` where
/// `q_lo` is the **first** qubit operand passed to the apply kernel and
/// contributes bit 0 of the 2-bit row/column index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate2 {
    m: [[Complex64; 4]; 4],
}

impl Gate2 {
    /// Builds a gate from an explicit row-major matrix (no unitarity check).
    #[inline]
    pub const fn from_matrix(m: [[Complex64; 4]; 4]) -> Self {
        Gate2 { m }
    }

    /// The underlying matrix.
    #[inline]
    pub const fn matrix(&self) -> &[[Complex64; 4]; 4] {
        &self.m
    }

    /// The two-qubit identity.
    pub fn identity() -> Self {
        let mut m = [[Z0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = O1;
        }
        Gate2::from_matrix(m)
    }

    /// CNOT with the **first operand as control** (bit 0) and the second
    /// as target (bit 1): flips the target when the control is `|1⟩`.
    pub fn cnot() -> Self {
        Gate2::controlled(&Gate1::pauli_x())
    }

    /// Controlled-Z (symmetric in its operands).
    pub fn cz() -> Self {
        Gate2::controlled(&Gate1::pauli_z())
    }

    /// SWAP gate.
    pub fn swap() -> Self {
        let mut m = [[Z0; 4]; 4];
        m[0][0] = O1;
        m[1][2] = O1;
        m[2][1] = O1;
        m[3][3] = O1;
        Gate2::from_matrix(m)
    }

    /// Controlled-Rx with angle `theta`.
    pub fn crx(theta: f64) -> Self {
        Gate2::controlled(&Gate1::rx(theta))
    }

    /// Controlled-Ry with angle `theta`.
    pub fn cry(theta: f64) -> Self {
        Gate2::controlled(&Gate1::ry(theta))
    }

    /// Controlled-Rz with angle `theta`.
    pub fn crz(theta: f64) -> Self {
        Gate2::controlled(&Gate1::rz(theta))
    }

    /// Lifts a single-qubit unitary to its controlled version. The control
    /// is the first operand (bit 0 of the 2-bit index), the payload acts on
    /// the second operand (bit 1) when the control is `|1⟩`.
    pub fn controlled(u: &Gate1) -> Self {
        let g = u.matrix();
        let mut m = [[Z0; 4]; 4];
        // Control bit 0 == 0: identity on both qubits (indices 0b00 and 0b10).
        m[0b00][0b00] = O1;
        m[0b10][0b10] = O1;
        // Control bit 0 == 1: apply `u` on the target bit (indices 0b01, 0b11).
        m[0b01][0b01] = g[0][0];
        m[0b01][0b11] = g[0][1];
        m[0b11][0b01] = g[1][0];
        m[0b11][0b11] = g[1][1];
        Gate2::from_matrix(m)
    }

    /// Like [`Gate2::controlled`], but with the **second** operand as
    /// control (bit 1) and the payload acting on the first (bit 0).
    pub fn controlled_flipped(u: &Gate1) -> Self {
        let g = u.matrix();
        let mut m = [[Z0; 4]; 4];
        // Control bit 1 == 0: identity on both qubits (indices 0b00, 0b01).
        m[0b00][0b00] = O1;
        m[0b01][0b01] = O1;
        // Control bit 1 == 1: apply `u` on bit 0 (indices 0b10, 0b11).
        m[0b10][0b10] = g[0][0];
        m[0b10][0b11] = g[0][1];
        m[0b11][0b10] = g[1][0];
        m[0b11][0b11] = g[1][1];
        Gate2::from_matrix(m)
    }

    /// Embeds a single-qubit unitary acting on the **first** operand
    /// (bit 0 of the 2-bit index): `I ⊗ u` in little-endian order.
    pub fn embed_first(u: &Gate1) -> Self {
        let g = u.matrix();
        let mut m = [[Z0; 4]; 4];
        for hi in 0..2 {
            for r in 0..2 {
                for c in 0..2 {
                    m[hi * 2 + r][hi * 2 + c] = g[r][c];
                }
            }
        }
        Gate2::from_matrix(m)
    }

    /// Embeds a single-qubit unitary acting on the **second** operand
    /// (bit 1 of the 2-bit index): `u ⊗ I` in little-endian order.
    pub fn embed_second(u: &Gate1) -> Self {
        let g = u.matrix();
        let mut m = [[Z0; 4]; 4];
        for lo in 0..2 {
            for r in 0..2 {
                for c in 0..2 {
                    m[r * 2 + lo][c * 2 + lo] = g[r][c];
                }
            }
        }
        Gate2::from_matrix(m)
    }

    /// The adjoint (conjugate transpose).
    pub fn dagger(&self) -> Self {
        let mut out = [[Z0; 4]; 4];
        for (r, out_row) in out.iter_mut().enumerate() {
            for (c, out_elem) in out_row.iter_mut().enumerate() {
                *out_elem = self.m[c][r].conj();
            }
        }
        Gate2::from_matrix(out)
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Gate2) -> Self {
        let mut out = [[Z0; 4]; 4];
        for (r, out_row) in out.iter_mut().enumerate() {
            for (c, out_elem) in out_row.iter_mut().enumerate() {
                let mut acc = Z0;
                for k in 0..4 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                *out_elem = acc;
            }
        }
        Gate2::from_matrix(out)
    }

    /// Returns `true` when `U†U = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.dagger()
            .matmul(self)
            .approx_eq(&Gate2::identity(), tol)
    }

    /// Element-wise comparison within `tol`.
    pub fn approx_eq(&self, other: &Gate2, tol: f64) -> bool {
        self.m
            .iter()
            .flatten()
            .zip(other.m.iter().flatten())
            .all(|(a, b)| (*a - *b).abs() <= tol)
    }
}

/// The axis of a parameterized rotation gate.
///
/// This is the vocabulary of the paper's VQCs: encoders are built from
/// `Rx/Ry/Rz` rows (Fig. 1) and the variational layers choose one axis per
/// parameterized gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RotationAxis {
    /// Rotation about X.
    X,
    /// Rotation about Y.
    Y,
    /// Rotation about Z.
    Z,
}

impl RotationAxis {
    /// The rotation gate about this axis with angle `theta`.
    pub fn gate(self, theta: f64) -> Gate1 {
        match self {
            RotationAxis::X => Gate1::rx(theta),
            RotationAxis::Y => Gate1::ry(theta),
            RotationAxis::Z => Gate1::rz(theta),
        }
    }

    /// A short lowercase label (`"rx"`, `"ry"`, `"rz"`).
    pub fn label(self) -> &'static str {
        match self {
            RotationAxis::X => "rx",
            RotationAxis::Y => "ry",
            RotationAxis::Z => "rz",
        }
    }

    /// All three axes in X, Y, Z order.
    pub const ALL: [RotationAxis; 3] = [RotationAxis::X, RotationAxis::Y, RotationAxis::Z];
}

impl std::fmt::Display for RotationAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn standard_gates_are_unitary() {
        for g in [
            Gate1::identity(),
            Gate1::pauli_x(),
            Gate1::pauli_y(),
            Gate1::pauli_z(),
            Gate1::hadamard(),
            Gate1::s(),
            Gate1::s_dagger(),
            Gate1::t(),
            Gate1::t_dagger(),
            Gate1::rx(0.7),
            Gate1::ry(-1.3),
            Gate1::rz(2.9),
            Gate1::phase(0.4),
            Gate1::u3(0.3, 1.1, -0.8),
        ] {
            assert!(g.is_unitary(1e-12), "{g:?} not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [
            Gate2::identity(),
            Gate2::cnot(),
            Gate2::cz(),
            Gate2::swap(),
            Gate2::crx(0.7),
            Gate2::cry(1.9),
            Gate2::crz(-0.2),
        ] {
            assert!(g.is_unitary(1e-12), "{g:?} not unitary");
        }
    }

    #[test]
    fn hzh_equals_x() {
        let hzh = Gate1::hadamard()
            .matmul(&Gate1::pauli_z())
            .matmul(&Gate1::hadamard());
        assert!(hzh.approx_eq(&Gate1::pauli_x(), 1e-12));
    }

    #[test]
    fn s_squared_is_z() {
        assert!(Gate1::s()
            .matmul(&Gate1::s())
            .approx_eq(&Gate1::pauli_z(), 1e-12));
    }

    #[test]
    fn t_squared_is_s() {
        assert!(Gate1::t().matmul(&Gate1::t()).approx_eq(&Gate1::s(), 1e-12));
    }

    #[test]
    fn rotation_at_pi_matches_pauli_up_to_phase() {
        // Rx(π) = −iX; check by comparing against X times global phase −i.
        let rx = Gate1::rx(PI);
        let x = Gate1::pauli_x();
        let phase = Complex64::new(0.0, -1.0);
        for r in 0..2 {
            for c in 0..2 {
                let want = x.matrix()[r][c] * phase;
                assert!((rx.matrix()[r][c] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rotations_compose_additively() {
        let a = Gate1::ry(0.4).matmul(&Gate1::ry(0.9));
        let b = Gate1::ry(1.3);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn rotation_zero_is_identity() {
        for axis in RotationAxis::ALL {
            assert!(axis.gate(0.0).approx_eq(&Gate1::identity(), 1e-15));
        }
    }

    #[test]
    fn dagger_inverts_rotation() {
        let g = Gate1::rz(0.77);
        assert!(g.matmul(&g.dagger()).approx_eq(&Gate1::identity(), 1e-12));
        assert!(g.dagger().approx_eq(&Gate1::rz(-0.77), 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(θ, −π/2, π/2) = Rx(θ); U3(θ, 0, 0) = Ry(θ).
        let theta = 0.83;
        assert!(Gate1::u3(theta, -PI / 2.0, PI / 2.0).approx_eq(&Gate1::rx(theta), 1e-12));
        assert!(Gate1::u3(theta, 0.0, 0.0).approx_eq(&Gate1::ry(theta), 1e-12));
    }

    #[test]
    fn cnot_truth_table() {
        let c = Gate2::cnot();
        // |control=1, target=0⟩ = index 0b01 → |control=1, target=1⟩ = 0b11.
        assert_eq!(c.matrix()[0b11][0b01], O1);
        assert_eq!(c.matrix()[0b01][0b11], O1);
        assert_eq!(c.matrix()[0b00][0b00], O1);
        assert_eq!(c.matrix()[0b10][0b10], O1);
    }

    #[test]
    fn swap_squares_to_identity() {
        let s2 = Gate2::swap().matmul(&Gate2::swap());
        assert!(s2.approx_eq(&Gate2::identity(), 1e-12));
    }

    #[test]
    fn controlled_of_identity_is_identity() {
        assert!(Gate2::controlled(&Gate1::identity()).approx_eq(&Gate2::identity(), 1e-12));
    }

    #[test]
    fn cz_is_symmetric() {
        let cz = Gate2::cz();
        for r in 0..4 {
            for c in 0..4 {
                assert!((cz.matrix()[r][c] - cz.matrix()[c][r]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn axis_labels() {
        assert_eq!(RotationAxis::X.to_string(), "rx");
        assert_eq!(RotationAxis::Y.to_string(), "ry");
        assert_eq!(RotationAxis::Z.to_string(), "rz");
    }
}
