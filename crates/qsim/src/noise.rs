//! NISQ noise channels and per-gate noise models.
//!
//! The paper's central design argument is that under NISQ constraints,
//! "quantum errors brought on by quantum gate operations can be properly
//! controlled" while qubit-count growth cannot — hence the state-encoding
//! that keeps the critic at 4 qubits. This module supplies the error model
//! used to reproduce that argument quantitatively (ablation B in DESIGN.md):
//! standard single-qubit channels expressed as Kraus operators, plus a
//! [`NoiseModel`] that injects a channel after every gate.

use rand::Rng;

use crate::complex::Complex64;
use crate::error::QsimError;
use crate::gate::Gate1;

/// A single-qubit quantum channel.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NoiseChannel {
    /// Depolarizing channel: with probability `p` the qubit is replaced by
    /// the maximally mixed state.
    Depolarizing {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Bit-flip channel: applies X with probability `p`.
    BitFlip {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Phase-flip channel: applies Z with probability `p`.
    PhaseFlip {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Amplitude damping: relaxation `|1⟩ → |0⟩` with probability `gamma`.
    AmplitudeDamping {
        /// Damping rate in `[0, 1]`.
        gamma: f64,
    },
    /// Phase damping: loss of off-diagonal coherence with rate `lambda`.
    PhaseDamping {
        /// Damping rate in `[0, 1]`.
        lambda: f64,
    },
}

impl NoiseChannel {
    /// The probability-like strength parameter of the channel.
    pub fn strength(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarizing { p }
            | NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p } => p,
            NoiseChannel::AmplitudeDamping { gamma } => gamma,
            NoiseChannel::PhaseDamping { lambda } => lambda,
        }
    }

    /// Validates that the strength is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidProbability`] when outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), QsimError> {
        let v = self.strength();
        if !(0.0..=1.0).contains(&v) || !v.is_finite() {
            return Err(QsimError::InvalidProbability { value: v });
        }
        Ok(())
    }

    /// The Kraus operators `{K_i}` of the channel, satisfying
    /// `Σ K_i† K_i = I`.
    pub fn kraus_operators(&self) -> Vec<Gate1> {
        match *self {
            NoiseChannel::Depolarizing { p } => {
                let k0 = (1.0 - p).sqrt();
                let k = (p / 3.0).sqrt();
                vec![
                    scale_gate(&Gate1::identity(), k0),
                    scale_gate(&Gate1::pauli_x(), k),
                    scale_gate(&Gate1::pauli_y(), k),
                    scale_gate(&Gate1::pauli_z(), k),
                ]
            }
            NoiseChannel::BitFlip { p } => vec![
                scale_gate(&Gate1::identity(), (1.0 - p).sqrt()),
                scale_gate(&Gate1::pauli_x(), p.sqrt()),
            ],
            NoiseChannel::PhaseFlip { p } => vec![
                scale_gate(&Gate1::identity(), (1.0 - p).sqrt()),
                scale_gate(&Gate1::pauli_z(), p.sqrt()),
            ],
            NoiseChannel::AmplitudeDamping { gamma } => {
                let k0 = Gate1::from_matrix([
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::from_real((1.0 - gamma).sqrt())],
                ]);
                let k1 = Gate1::from_matrix([
                    [Complex64::ZERO, Complex64::from_real(gamma.sqrt())],
                    [Complex64::ZERO, Complex64::ZERO],
                ]);
                vec![k0, k1]
            }
            NoiseChannel::PhaseDamping { lambda } => {
                let k0 = Gate1::from_matrix([
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::from_real((1.0 - lambda).sqrt())],
                ]);
                let k1 = Gate1::from_matrix([
                    [Complex64::ZERO, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::from_real(lambda.sqrt())],
                ]);
                vec![k0, k1]
            }
        }
    }

    /// Samples a Pauli error for trajectory (statevector) simulation.
    /// Returns `None` when no error occurs or for non-Pauli channels at the
    /// no-error branch.
    pub fn sample_pauli_error<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Gate1> {
        match *self {
            NoiseChannel::Depolarizing { p } => {
                if rng.gen::<f64>() < p {
                    Some(match rng.gen_range(0..3) {
                        0 => Gate1::pauli_x(),
                        1 => Gate1::pauli_y(),
                        _ => Gate1::pauli_z(),
                    })
                } else {
                    None
                }
            }
            NoiseChannel::BitFlip { p } => (rng.gen::<f64>() < p).then(Gate1::pauli_x),
            NoiseChannel::PhaseFlip { p } => (rng.gen::<f64>() < p).then(Gate1::pauli_z),
            // Damping channels are not Pauli mixtures; trajectory support
            // would need generalized measurements, so treat them as phase
            // flips of matching strength for the statevector backend.
            NoiseChannel::AmplitudeDamping { gamma } => {
                (rng.gen::<f64>() < gamma).then(Gate1::pauli_z)
            }
            NoiseChannel::PhaseDamping { lambda } => {
                (rng.gen::<f64>() < lambda).then(Gate1::pauli_z)
            }
        }
    }
}

/// A circuit-level noise model: the same channel after every gate, applied
/// to each wire the gate touched. This is the "errors grow with gate count"
/// mechanism the paper cites ([9] in the paper).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseModel {
    /// Channel applied after every single-qubit gate.
    pub after_gate1: Option<NoiseChannel>,
    /// Channel applied to both wires after every two-qubit gate (two-qubit
    /// gates are noisier on hardware, so a stronger channel is typical).
    pub after_gate2: Option<NoiseChannel>,
}

impl NoiseModel {
    /// A noiseless model.
    pub const fn noiseless() -> Self {
        NoiseModel {
            after_gate1: None,
            after_gate2: None,
        }
    }

    /// Uniform depolarizing noise: probability `p1` after one-qubit gates
    /// and `p2` after two-qubit gates.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidProbability`] when either rate is
    /// outside `[0, 1]`.
    pub fn depolarizing(p1: f64, p2: f64) -> Result<Self, QsimError> {
        let m = NoiseModel {
            after_gate1: Some(NoiseChannel::Depolarizing { p: p1 }),
            after_gate2: Some(NoiseChannel::Depolarizing { p: p2 }),
        };
        m.validate()?;
        Ok(m)
    }

    /// Validates all contained channels.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidProbability`] for a bad strength.
    pub fn validate(&self) -> Result<(), QsimError> {
        if let Some(c) = self.after_gate1 {
            c.validate()?;
        }
        if let Some(c) = self.after_gate2 {
            c.validate()?;
        }
        Ok(())
    }

    /// `true` when no channel is configured.
    pub fn is_noiseless(&self) -> bool {
        self.after_gate1.is_none() && self.after_gate2.is_none()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

fn scale_gate(g: &Gate1, s: f64) -> Gate1 {
    let m = g.matrix();
    Gate1::from_matrix([
        [m[0][0].scale(s), m[0][1].scale(s)],
        [m[1][0].scale(s), m[1][1].scale(s)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::gate::Gate1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Σ K†K must equal the identity for a valid CPTP channel.
    fn assert_completeness(channel: NoiseChannel) {
        let kraus = channel.kraus_operators();
        let mut acc = [[Complex64::ZERO; 2]; 2];
        for k in &kraus {
            let kk = k.dagger().matmul(k);
            for (r, row) in acc.iter_mut().enumerate() {
                for (c, cell) in row.iter_mut().enumerate() {
                    *cell += kk.matrix()[r][c];
                }
            }
        }
        for (r, row) in acc.iter().enumerate() {
            for (c, _) in row.iter().enumerate() {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (acc[r][c] - Complex64::from_real(want)).abs() < 1e-12,
                    "{channel:?} completeness failed at ({r},{c}): {:?}",
                    acc[r][c]
                );
            }
        }
    }

    #[test]
    fn all_channels_are_trace_preserving() {
        for c in [
            NoiseChannel::Depolarizing { p: 0.13 },
            NoiseChannel::BitFlip { p: 0.2 },
            NoiseChannel::PhaseFlip { p: 0.35 },
            NoiseChannel::AmplitudeDamping { gamma: 0.4 },
            NoiseChannel::PhaseDamping { lambda: 0.25 },
        ] {
            assert_completeness(c);
        }
    }

    #[test]
    fn depolarizing_drives_toward_maximally_mixed() {
        let mut rho = DensityMatrix::zero(1);
        let kraus = NoiseChannel::Depolarizing { p: 0.5 }.kraus_operators();
        for _ in 0..60 {
            rho.apply_kraus1(0, &kraus).unwrap();
        }
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 0.5).abs() < 1e-6, "purity {}", rho.purity());
        assert!(rho.expectation_z(0).unwrap().abs() < 1e-6);
    }

    #[test]
    fn full_depolarizing_reaches_mixed_in_one_step() {
        let mut rho = DensityMatrix::zero(1);
        // p = 3/4 gives the completely depolarizing map (fixed point I/2).
        let kraus = NoiseChannel::Depolarizing { p: 0.75 }.kraus_operators();
        rho.apply_kraus1(0, &kraus).unwrap();
        assert!(rho.expectation_z(0).unwrap().abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        let mut psi = crate::state::StateVector::zero(1);
        psi.apply_gate1(0, &Gate1::pauli_x()).unwrap(); // |1⟩
        let mut rho = DensityMatrix::from_state_vector(&psi);
        let kraus = NoiseChannel::AmplitudeDamping { gamma: 0.3 }.kraus_operators();
        let mut z = Vec::new();
        for _ in 0..10 {
            rho.apply_kraus1(0, &kraus).unwrap();
            z.push(rho.expectation_z(0).unwrap());
        }
        // ⟨Z⟩ should monotonically rise from −1 toward +1 (ground state).
        for w in z.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(z.last().unwrap() > &0.9);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_flips_z_expectation() {
        let mut rho = DensityMatrix::zero(1);
        let kraus = NoiseChannel::BitFlip { p: 1.0 }.kraus_operators();
        rho.apply_kraus1(0, &kraus).unwrap();
        assert!((rho.expectation_z(0).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_flip_preserves_populations() {
        let mut rho = DensityMatrix::zero(1);
        rho.apply_gate1(0, &Gate1::hadamard()).unwrap();
        let before = rho.probabilities();
        let kraus = NoiseChannel::PhaseFlip { p: 0.5 }.kraus_operators();
        rho.apply_kraus1(0, &kraus).unwrap();
        let after = rho.probabilities();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12);
        }
        // But full dephasing kills coherence: purity drops to 1/2.
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        assert!(NoiseChannel::Depolarizing { p: 1.5 }.validate().is_err());
        assert!(NoiseChannel::BitFlip { p: -0.1 }.validate().is_err());
        assert!(NoiseChannel::PhaseFlip { p: 0.3 }.validate().is_ok());
        assert!(NoiseModel::depolarizing(0.01, 2.0).is_err());
        assert!(NoiseModel::depolarizing(0.01, 0.02).is_ok());
    }

    #[test]
    fn noiseless_model() {
        let m = NoiseModel::noiseless();
        assert!(m.is_noiseless());
        assert!(m.validate().is_ok());
        assert_eq!(NoiseModel::default(), m);
    }

    #[test]
    fn trajectory_sampling_rates() {
        let c = NoiseChannel::BitFlip { p: 0.3 };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mut hits = 0;
        for _ in 0..n {
            if c.sample_pauli_error(&mut rng).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
