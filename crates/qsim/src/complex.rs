//! A minimal double-precision complex number type.
//!
//! The approved dependency list for this project does not include
//! `num-complex`, and a quantum simulator only needs a small, predictable
//! subset of complex arithmetic, so we implement it here. The type is a
//! plain `Copy` value type and all operations are `#[inline]` so the
//! statevector kernels in [`crate::apply`] compile down to bare
//! multiply-adds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qmarl_qsim::complex::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2) - 2.0 * i).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// The complex conjugate `re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// The squared modulus `re² + im²`.
    ///
    /// This is the quantity quantum mechanics calls the *probability
    /// weight* of an amplitude; it avoids the square root of [`abs`].
    ///
    /// [`abs`]: Complex64::abs
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase angle) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "reciprocal of zero complex number");
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Multiply-accumulate: `self * b + c`, the inner-loop primitive of
    /// the gate-application kernels. Deliberately **not** fused — each
    /// multiply and add rounds separately, so scalar results stay
    /// bit-identical to the AVX2 kernels (which use separate
    /// mul/add for the same reason). Named `mul_acc`, not `mul_add`,
    /// because the latter names the fused `f64` primitive that the
    /// no-fma invariant bans from kernels.
    #[inline]
    pub fn mul_acc(self, b: Complex64, c: Complex64) -> Self {
        Complex64::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constants_behave() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.recip(), Complex64::ONE));
        assert!(close(z + (-z), Complex64::ZERO));
        assert!(close(z / z, Complex64::ONE));
    }

    #[test]
    fn conjugation_properties() {
        let z = Complex64::new(1.5, 2.5);
        let w = Complex64::new(-0.5, 1.0);
        assert!(close((z * w).conj(), z.conj() * w.conj()));
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).im.abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_of_imaginary_is_rotation() {
        let z = Complex64::new(0.0, FRAC_PI_2).exp();
        assert!(close(z, Complex64::I));
        let full = Complex64::new(0.0, 2.0 * PI).exp();
        assert!(close(full, Complex64::ONE));
    }

    #[test]
    fn mul_acc_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let c = Complex64::new(0.25, -0.75);
        assert!(close(a.mul_acc(b, c), a * b + c));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -2.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, Complex64::new(0.5, -0.5));
    }

    #[test]
    fn sum_of_iterator() {
        let zs = [Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let s: Complex64 = zs.iter().copied().sum();
        assert_eq!(s, Complex64::new(2.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(
            format!("{}", Complex64::new(1.0, -2.0)),
            "1.000000-2.000000i"
        );
        assert_eq!(
            format!("{}", Complex64::new(1.0, 2.0)),
            "1.000000+2.000000i"
        );
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z -= Complex64::ONE;
        assert_eq!(z, Complex64::I);
        z *= Complex64::I;
        assert_eq!(z, -Complex64::ONE);
        z /= -Complex64::ONE;
        assert_eq!(z, Complex64::ONE);
    }
}
