//! Error types for the quantum simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating quantum states.
#[derive(Debug, Clone, PartialEq)]
pub enum QsimError {
    /// A qubit index was at least the register width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of qubits in the register.
        n_qubits: usize,
    },
    /// Two qubit operands of a two-qubit gate were the same wire.
    DuplicateQubit {
        /// The duplicated index.
        qubit: usize,
    },
    /// An amplitude vector's length was not `2^n` for any `n`.
    InvalidDimension {
        /// The actual length supplied.
        len: usize,
    },
    /// A state's 2-norm was too far from one.
    NotNormalized {
        /// The measured norm.
        norm: f64,
    },
    /// A probability-like argument fell outside `[0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// Two objects had incompatible qubit counts.
    QubitCountMismatch {
        /// Expected register width.
        expected: usize,
        /// Actual register width.
        actual: usize,
    },
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit index {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            QsimError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
            QsimError::InvalidDimension { len } => {
                write!(f, "amplitude vector length {len} is not a power of two")
            }
            QsimError::NotNormalized { norm } => {
                write!(f, "state norm {norm} is not 1 within tolerance")
            }
            QsimError::InvalidProbability { value } => {
                write!(f, "value {value} is not a probability in [0, 1]")
            }
            QsimError::QubitCountMismatch { expected, actual } => {
                write!(f, "expected a {expected}-qubit object, got {actual} qubits")
            }
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            QsimError::QubitOutOfRange {
                qubit: 5,
                n_qubits: 4,
            },
            QsimError::DuplicateQubit { qubit: 2 },
            QsimError::InvalidDimension { len: 3 },
            QsimError::NotNormalized { norm: 0.5 },
            QsimError::InvalidProbability { value: 1.5 },
            QsimError::QubitCountMismatch {
                expected: 4,
                actual: 2,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}
