//! Bloch-sphere coordinates and the HLS colour mapping of Fig. 4.
//!
//! The paper's demonstration (Fig. 4) renders "superpositioned qubit states
//! (i.e., magnitude and phase vector) … as 4×4 heatmap in hue-lightness-
//! saturation color system". This module reproduces that pipeline: extract
//! per-qubit Bloch vectors or per-amplitude (magnitude, phase) pairs and map
//! them to RGB via HLS.

use crate::error::QsimError;
use crate::state::StateVector;

/// A point on (or inside) the Bloch sphere.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlochVector {
    /// ⟨X⟩ component.
    pub x: f64,
    /// ⟨Y⟩ component.
    pub y: f64,
    /// ⟨Z⟩ component.
    pub z: f64,
}

impl BlochVector {
    /// Euclidean length; 1 for pure single-qubit states, < 1 for mixed
    /// (e.g. a qubit entangled with the rest of the register).
    pub fn length(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Polar angle δ ∈ [0, π] from the |0⟩ pole (the paper's qubit
    /// parameterisation `cos(δ/2)|0⟩ + e^{iφ} sin(δ/2)|1⟩`).
    pub fn polar(&self) -> f64 {
        self.z.clamp(-1.0, 1.0).acos()
    }

    /// Azimuthal angle φ ∈ (−π, π].
    pub fn azimuth(&self) -> f64 {
        self.y.atan2(self.x)
    }
}

/// The Bloch vector of qubit `q`, from the reduced density matrix:
/// `x = 2 Re ρ₀₁`, `y = −2 Im ρ₀₁`, `z = ρ₀₀ − ρ₁₁`.
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] for an invalid wire.
pub fn bloch_vector(state: &StateVector, q: usize) -> Result<BlochVector, QsimError> {
    let rho = state.reduced_density(q)?;
    Ok(BlochVector {
        x: 2.0 * rho[0][1].re,
        y: -2.0 * rho[0][1].im,
        z: rho[0][0].re - rho[1][1].re,
    })
}

/// One cell of the Fig. 4 heatmap: the magnitude and phase of a single
/// computational-basis amplitude.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AmplitudeCell {
    /// `|α_i|` in `[0, 1]`.
    pub magnitude: f64,
    /// `arg(α_i)` in `(−π, π]`.
    pub phase: f64,
}

/// Arranges a 4-qubit state's 16 amplitudes into the paper's 4×4 grid:
/// rows indexed by the first two qubits `(q₁ q₂)` ≙ bits 0–1, columns by
/// the last two `(q₃ q₄)` ≙ bits 2–3.
///
/// # Errors
///
/// Returns [`QsimError::QubitCountMismatch`] unless the register has
/// exactly 4 qubits.
pub fn amplitude_grid(state: &StateVector) -> Result<[[AmplitudeCell; 4]; 4], QsimError> {
    if state.n_qubits() != 4 {
        return Err(QsimError::QubitCountMismatch {
            expected: 4,
            actual: state.n_qubits(),
        });
    }
    let mut grid = [[AmplitudeCell {
        magnitude: 0.0,
        phase: 0.0,
    }; 4]; 4];
    for (i, a) in state.amplitudes().iter().enumerate() {
        let row = i & 0b11;
        let col = (i >> 2) & 0b11;
        grid[row][col] = AmplitudeCell {
            magnitude: a.abs(),
            phase: a.arg(),
        };
    }
    Ok(grid)
}

/// An sRGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

/// Converts HSL (hue in degrees `[0, 360)`, saturation and lightness in
/// `[0, 1]`) to sRGB using the standard piecewise formula.
pub fn hsl_to_rgb(hue: f64, saturation: f64, lightness: f64) -> Rgb {
    let h = hue.rem_euclid(360.0);
    let s = saturation.clamp(0.0, 1.0);
    let l = lightness.clamp(0.0, 1.0);
    let c = (1.0 - (2.0 * l - 1.0).abs()) * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp.rem_euclid(2.0) - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = l - c / 2.0;
    let to_u8 = |v: f64| ((v + m).clamp(0.0, 1.0) * 255.0).round() as u8;
    Rgb {
        r: to_u8(r1),
        g: to_u8(g1),
        b: to_u8(b1),
    }
}

/// The paper's quantum-state colour code: phase → hue (full turn = full
/// colour wheel), magnitude → lightness (0 = black, 1 = bright), fixed
/// saturation.
pub fn amplitude_color(cell: AmplitudeCell) -> Rgb {
    let hue = (cell.phase + std::f64::consts::PI) / (2.0 * std::f64::consts::PI) * 360.0;
    let lightness = 0.5 * cell.magnitude.clamp(0.0, 1.0) + 0.05;
    hsl_to_rgb(hue, 0.85, lightness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate1;

    #[test]
    fn bloch_of_computational_states() {
        let s0 = StateVector::zero(1);
        let b0 = bloch_vector(&s0, 0).unwrap();
        assert!((b0.z - 1.0).abs() < 1e-12 && b0.x.abs() < 1e-12 && b0.y.abs() < 1e-12);

        let s1 = StateVector::basis(1, 1).unwrap();
        let b1 = bloch_vector(&s1, 0).unwrap();
        assert!((b1.z + 1.0).abs() < 1e-12);
        assert!((b1.polar() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn bloch_of_plus_and_circular_states() {
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &Gate1::hadamard()).unwrap();
        let b = bloch_vector(&plus, 0).unwrap();
        assert!((b.x - 1.0).abs() < 1e-12 && b.z.abs() < 1e-12);
        assert!((b.length() - 1.0).abs() < 1e-12);

        let mut circ = plus.clone();
        circ.apply_gate1(0, &Gate1::s()).unwrap();
        let b = bloch_vector(&circ, 0).unwrap();
        assert!((b.y - 1.0).abs() < 1e-12);
        assert!((b.azimuth() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn entangled_qubit_has_short_bloch_vector() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::hadamard()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let b = bloch_vector(&s, 0).unwrap();
        assert!(
            b.length() < 1e-10,
            "maximally entangled qubit must sit at origin"
        );
    }

    #[test]
    fn bloch_matches_rotation_angle() {
        for theta in [0.1, 0.7, 1.9, 2.8] {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &Gate1::ry(theta)).unwrap();
            let b = bloch_vector(&s, 0).unwrap();
            assert!((b.polar() - theta).abs() < 1e-10, "theta {theta}");
        }
    }

    #[test]
    fn grid_requires_four_qubits() {
        assert!(amplitude_grid(&StateVector::zero(3)).is_err());
        let g = amplitude_grid(&StateVector::zero(4)).unwrap();
        assert!((g[0][0].magnitude - 1.0).abs() < 1e-15);
        let total: f64 = g.iter().flatten().map(|c| c.magnitude * c.magnitude).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_layout_separates_qubit_pairs() {
        // |q₃q₂q₁q₀⟩ = |0101⟩ → index 5: row = 0b01, col = 0b01.
        let s = StateVector::basis(4, 0b0101).unwrap();
        let g = amplitude_grid(&s).unwrap();
        assert!((g[1][1].magnitude - 1.0).abs() < 1e-15);
        assert!(g[0][0].magnitude < 1e-15);
    }

    #[test]
    fn hsl_primaries() {
        assert_eq!(hsl_to_rgb(0.0, 1.0, 0.5), Rgb { r: 255, g: 0, b: 0 });
        assert_eq!(hsl_to_rgb(120.0, 1.0, 0.5), Rgb { r: 0, g: 255, b: 0 });
        assert_eq!(hsl_to_rgb(240.0, 1.0, 0.5), Rgb { r: 0, g: 0, b: 255 });
        assert_eq!(
            hsl_to_rgb(0.0, 0.0, 1.0),
            Rgb {
                r: 255,
                g: 255,
                b: 255
            }
        );
        assert_eq!(hsl_to_rgb(77.0, 1.0, 0.0), Rgb { r: 0, g: 0, b: 0 });
    }

    #[test]
    fn hue_wraps_around() {
        assert_eq!(hsl_to_rgb(360.0, 1.0, 0.5), hsl_to_rgb(0.0, 1.0, 0.5));
        assert_eq!(hsl_to_rgb(-120.0, 1.0, 0.5), hsl_to_rgb(240.0, 1.0, 0.5));
    }

    #[test]
    fn amplitude_color_brightness_scales_with_magnitude() {
        let dark = amplitude_color(AmplitudeCell {
            magnitude: 0.0,
            phase: 0.0,
        });
        let bright = amplitude_color(AmplitudeCell {
            magnitude: 1.0,
            phase: 0.0,
        });
        let lum = |c: Rgb| c.r as u32 + c.g as u32 + c.b as u32;
        assert!(lum(bright) > lum(dark));
    }

    #[test]
    fn amplitude_color_hue_depends_on_phase() {
        let a = amplitude_color(AmplitudeCell {
            magnitude: 0.8,
            phase: 0.0,
        });
        let b = amplitude_color(AmplitudeCell {
            magnitude: 0.8,
            phase: std::f64::consts::PI / 2.0,
        });
        assert_ne!(a, b);
    }
}
