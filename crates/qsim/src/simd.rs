//! Runtime SIMD dispatch for the gate kernels.
//!
//! The kernels in [`crate::apply`] come in two implementations: a portable
//! scalar path and an AVX2 wide path (`x86_64` only, compiled behind
//! `#[target_feature]` and selected at runtime with
//! `is_x86_feature_detected!`). This module owns the selection.
//!
//! ## Bit-exactness contract
//!
//! The wide kernels are **bit-identical** to the scalar ones, not merely
//! close. They use separate multiply and add instructions (no FMA
//! contraction), evaluate exactly the same expression per element in the
//! same association order, and rely only on IEEE-754 identities the scalar
//! code already depends on (`x·(−s) ≡ −(x·s)`, `a + (−t) ≡ a − t`,
//! commutativity of `+`/`·`). Every golden fingerprint and `assert_eq`
//! equivalence test in the workspace therefore passes identically under
//! either path; the property suite in `qsim/tests` asserts the
//! equivalence kernel by kernel.
//!
//! ## Selection
//!
//! The level is decided once, on first use, from the `QSIM_SIMD`
//! environment variable:
//!
//! * `scalar` — force the scalar path (useful to A/B results and perf);
//! * `avx2` / `wide` — request the AVX2 path (silently falls back to
//!   scalar when the CPU lacks AVX2);
//! * `auto` / unset / anything else — detect (AVX2 when available).
//!
//! Tests and benches may override the decision with [`force`], which is
//! safe precisely because both paths produce identical bits.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the dispatcher selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops — the reference implementation.
    Scalar,
    /// AVX2 256-bit kernels (4 × f64 per op), `x86_64` only.
    Avx2,
}

/// 0 = undecided, 1 = scalar, 2 = AVX2.
static LEVEL: AtomicU8 = AtomicU8::new(0);

#[inline]
fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 1,
        SimdLevel::Avx2 => 2,
    }
}

/// Parses a `QSIM_SIMD` value; `None` means "auto".
fn parse_env(value: &str) -> Option<SimdLevel> {
    match value.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(SimdLevel::Scalar),
        "avx2" | "wide" => Some(SimdLevel::Avx2),
        _ => None,
    }
}

#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> SimdLevel {
    let requested = std::env::var("QSIM_SIMD").ok().and_then(|v| parse_env(&v));
    match requested {
        Some(SimdLevel::Scalar) => SimdLevel::Scalar,
        Some(SimdLevel::Avx2) | None => {
            if avx2_available() {
                SimdLevel::Avx2
            } else {
                SimdLevel::Scalar
            }
        }
    }
}

/// The active kernel implementation. Decided once (env override + CPU
/// detection) and cached; one relaxed atomic load afterwards.
#[inline]
pub fn level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        _ => {
            let detected = detect();
            // Racing initialisers compute the same value; last store wins.
            LEVEL.store(encode(detected), Ordering::Relaxed);
            detected
        }
    }
}

/// Forces the dispatch level, overriding env/detection. Intended for
/// tests and benches that exercise both paths in one process; requesting
/// [`SimdLevel::Avx2`] on a CPU without AVX2 is ignored (stays scalar).
pub fn force(level: SimdLevel) {
    let effective = match level {
        SimdLevel::Avx2 if !avx2_available() => SimdLevel::Scalar,
        other => other,
    };
    LEVEL.store(encode(effective), Ordering::Relaxed);
}

/// Re-runs env-variable + CPU detection, discarding any [`force`].
/// Lets tests exercise the `QSIM_SIMD` parsing path explicitly.
pub fn reinit_from_env() -> SimdLevel {
    let detected = detect();
    LEVEL.store(encode(detected), Ordering::Relaxed);
    detected
}

/// `true` when the wide path can run on this machine (used by the parity
/// tests to decide whether scalar-vs-wide comparison is meaningful).
pub fn wide_supported() -> bool {
    avx2_available()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_values() {
        assert_eq!(parse_env("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(parse_env("SCALAR"), Some(SimdLevel::Scalar));
        assert_eq!(parse_env(" avx2 "), Some(SimdLevel::Avx2));
        assert_eq!(parse_env("wide"), Some(SimdLevel::Avx2));
        assert_eq!(parse_env("auto"), None);
        assert_eq!(parse_env(""), None);
        assert_eq!(parse_env("bogus"), None);
    }

    #[test]
    fn force_round_trips() {
        let before = level();
        force(SimdLevel::Scalar);
        assert_eq!(level(), SimdLevel::Scalar);
        if wide_supported() {
            force(SimdLevel::Avx2);
            assert_eq!(level(), SimdLevel::Avx2);
        }
        force(before);
    }

    #[test]
    fn env_override_is_honoured() {
        // Exercise the forced-scalar env override end to end: set the
        // variable, re-run detection, and confirm the dispatcher obeys.
        let before = level();
        let saved = std::env::var("QSIM_SIMD").ok();
        std::env::set_var("QSIM_SIMD", "scalar");
        assert_eq!(reinit_from_env(), SimdLevel::Scalar);
        assert_eq!(level(), SimdLevel::Scalar);
        match saved {
            Some(v) => std::env::set_var("QSIM_SIMD", v),
            None => std::env::remove_var("QSIM_SIMD"),
        }
        force(before);
    }
}
