//! Property-based tests for the simulator's core invariants.

use proptest::prelude::*;
use qmarl_qsim::prelude::*;

/// Strategy: an arbitrary single-qubit rotation.
fn arb_rotation() -> impl Strategy<Value = (RotationAxis, f64)> {
    (
        prop_oneof![
            Just(RotationAxis::X),
            Just(RotationAxis::Y),
            Just(RotationAxis::Z)
        ],
        -std::f64::consts::PI..std::f64::consts::PI,
    )
}

/// Strategy: a random circuit as (wire, axis, angle) plus CNOT markers.
#[derive(Debug, Clone)]
enum Op {
    Rot(usize, RotationAxis, f64),
    Cnot(usize, usize),
}

fn arb_circuit(n_qubits: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    let rot = (0..n_qubits, arb_rotation()).prop_map(|(q, (ax, th))| Op::Rot(q, ax, th));
    let cnot = (0..n_qubits, 0..n_qubits.saturating_sub(1)).prop_map(move |(c, t0)| {
        let t = if t0 >= c { t0 + 1 } else { t0 };
        Op::Cnot(c, t)
    });
    prop::collection::vec(prop_oneof![3 => rot, 1 => cnot], 1..max_len)
}

fn run(state: &mut StateVector, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Rot(q, ax, th) => state.apply_gate1(q, &ax.gate(th)).unwrap(),
            Op::Cnot(c, t) => state.apply_cnot(c, t).unwrap(),
        }
    }
}

proptest! {
    /// Unitary circuits preserve the norm of any starting state.
    #[test]
    fn random_circuits_preserve_norm(ops in arb_circuit(4, 40)) {
        let mut s = StateVector::zero(4);
        run(&mut s, &ops);
        prop_assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    /// Probabilities form a distribution after any circuit.
    #[test]
    fn probabilities_form_distribution(ops in arb_circuit(3, 30)) {
        let mut s = StateVector::zero(3);
        run(&mut s, &ops);
        let probs = s.probabilities();
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
        prop_assert!(probs.iter().all(|p| (-1e-12..=1.0 + 1e-12).contains(p)));
    }

    /// Z expectations always lie in [−1, 1].
    #[test]
    fn z_expectations_bounded(ops in arb_circuit(4, 40)) {
        let mut s = StateVector::zero(4);
        run(&mut s, &ops);
        for z in expectation_z_all(&s) {
            prop_assert!((-1.0 - 1e-10..=1.0 + 1e-10).contains(&z));
        }
    }

    /// Applying a rotation then its inverse is the identity.
    #[test]
    fn rotation_inverse_roundtrip((ax, th) in arb_rotation(), ops in arb_circuit(3, 20)) {
        let mut s = StateVector::zero(3);
        run(&mut s, &ops);
        let before = s.clone();
        s.apply_gate1(1, &ax.gate(th)).unwrap();
        s.apply_gate1(1, &ax.gate(-th)).unwrap();
        prop_assert!((s.fidelity(&before).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Rotations about the same axis compose additively.
    #[test]
    fn rotations_compose_additively(
        ax in prop_oneof![Just(RotationAxis::X), Just(RotationAxis::Y), Just(RotationAxis::Z)],
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let mut s1 = StateVector::zero(2);
        s1.apply_gate1(0, &ax.gate(a)).unwrap();
        s1.apply_gate1(0, &ax.gate(b)).unwrap();
        let mut s2 = StateVector::zero(2);
        s2.apply_gate1(0, &ax.gate(a + b)).unwrap();
        prop_assert!((s1.fidelity(&s2).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Statevector and density-matrix backends agree on ⟨Z⟩ for pure states.
    #[test]
    fn density_matrix_agrees_with_statevector(ops in arb_circuit(3, 20)) {
        let mut psi = StateVector::zero(3);
        let mut rho = DensityMatrix::zero(3);
        for op in &ops {
            match *op {
                Op::Rot(q, ax, th) => {
                    psi.apply_gate1(q, &ax.gate(th)).unwrap();
                    rho.apply_gate1(q, &ax.gate(th)).unwrap();
                }
                Op::Cnot(c, t) => {
                    psi.apply_cnot(c, t).unwrap();
                    rho.apply_gate2(c, t, &Gate2::cnot()).unwrap();
                }
            }
        }
        for q in 0..3 {
            let a = expectation_z(&psi, q).unwrap();
            let b = rho.expectation_z(q).unwrap();
            prop_assert!((a - b).abs() < 1e-8, "wire {} mismatch: {} vs {}", q, a, b);
        }
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    /// Every noise channel keeps the density matrix a valid state.
    #[test]
    fn noise_channels_preserve_trace(
        strength in 0.0f64..1.0,
        which in 0usize..5,
        ops in arb_circuit(2, 10),
    ) {
        let channel = match which {
            0 => NoiseChannel::Depolarizing { p: strength },
            1 => NoiseChannel::BitFlip { p: strength },
            2 => NoiseChannel::PhaseFlip { p: strength },
            3 => NoiseChannel::AmplitudeDamping { gamma: strength },
            _ => NoiseChannel::PhaseDamping { lambda: strength },
        };
        let mut psi = StateVector::zero(2);
        run(&mut psi, &ops);
        let mut rho = DensityMatrix::from_state_vector(&psi);
        rho.apply_kraus1(0, &channel.kraus_operators()).unwrap();
        rho.apply_kraus1(1, &channel.kraus_operators()).unwrap();
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        let probs = rho.probabilities();
        prop_assert!(probs.iter().all(|p| *p >= -1e-10));
    }

    /// Bloch vectors never leave the unit ball.
    #[test]
    fn bloch_vectors_inside_unit_ball(ops in arb_circuit(3, 25)) {
        let mut s = StateVector::zero(3);
        run(&mut s, &ops);
        for q in 0..3 {
            let b = bloch_vector(&s, q).unwrap();
            prop_assert!(b.length() <= 1.0 + 1e-9);
        }
    }

    /// The reduced density matrix of any wire has unit trace.
    #[test]
    fn reduced_density_has_unit_trace(ops in arb_circuit(4, 30), q in 0usize..4) {
        let mut s = StateVector::zero(4);
        run(&mut s, &ops);
        let rho = s.reduced_density(q).unwrap();
        prop_assert!(((rho[0][0].re + rho[1][1].re) - 1.0).abs() < 1e-9);
        // Hermiticity: ρ01 = conj(ρ10).
        prop_assert!((rho[0][1] - rho[1][0].conj()).abs() < 1e-9);
    }

    /// HSL → RGB stays in gamut for all inputs.
    #[test]
    fn hsl_to_rgb_total(h in -720.0f64..720.0, s in -0.5f64..1.5, l in -0.5f64..1.5) {
        // Just must not panic and be deterministic.
        let a = hsl_to_rgb_wrapper(h, s, l);
        let b = hsl_to_rgb_wrapper(h, s, l);
        prop_assert_eq!(a, b);
    }
}

fn hsl_to_rgb_wrapper(h: f64, s: f64, l: f64) -> (u8, u8, u8) {
    let c = qmarl_qsim::bloch::hsl_to_rgb(h, s, l);
    (c.r, c.g, c.b)
}
