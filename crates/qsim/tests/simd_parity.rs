//! Scalar ↔ wide kernel parity suite.
//!
//! The AVX2 kernels are designed to be **bit-identical** to the scalar
//! ones (see `qmarl_qsim::simd` for the argument), so these tests assert
//! exact equality — strictly stronger than the ≤ 1e-12 agreement the
//! acceptance bar asks for. Every gate kind is exercised on every qubit
//! position (and every ordered wire pair) for registers of 1–10 qubits.
//!
//! The tests force the dispatch level through `simd::force`; because both
//! paths produce identical bits, concurrently running tests observe no
//! difference whichever level happens to be active.

use qmarl_qsim::apply::*;
use qmarl_qsim::complex::Complex64;
use qmarl_qsim::gate::{Gate1, Gate2};
use qmarl_qsim::simd::{self, SimdLevel};

/// Deterministic, fully entangled, phase-rich test state.
fn busy_state(n: usize) -> Vec<Complex64> {
    let mut amps = vec![Complex64::ZERO; 1 << n];
    amps[0] = Complex64::ONE;
    simd::force(SimdLevel::Scalar);
    for w in 0..n {
        apply_gate1(
            &mut amps,
            w,
            &Gate1::u3(0.41 + 0.29 * w as f64, 0.23 - 0.11 * w as f64, -0.67),
        );
    }
    for w in 1..n {
        apply_cnot(&mut amps, w - 1, w);
        apply_rz(&mut amps, w, 0.17 * w as f64 + 0.05);
    }
    amps
}

fn norm_sqr(amps: &[Complex64]) -> f64 {
    amps.iter().map(|a| a.norm_sqr()).sum()
}

/// Runs `op` once under forced scalar and once under forced AVX2 and
/// asserts the results are bit-identical. No-op on machines without AVX2.
fn assert_parity(n: usize, label: &str, op: impl Fn(&mut Vec<Complex64>)) {
    if !simd::wide_supported() {
        return;
    }
    let base = busy_state(n);
    let mut scalar = base.clone();
    simd::force(SimdLevel::Scalar);
    op(&mut scalar);

    let mut wide = base.clone();
    simd::force(SimdLevel::Avx2);
    op(&mut wide);
    simd::force(SimdLevel::Scalar);

    assert_eq!(scalar, wide, "scalar/wide divergence: {label} (n={n})");
    // Determinism of the wide path: a second run must reproduce itself.
    let mut wide2 = base.clone();
    simd::force(SimdLevel::Avx2);
    op(&mut wide2);
    simd::force(SimdLevel::Scalar);
    assert_eq!(wide, wide2, "wide path non-deterministic: {label} (n={n})");
}

#[test]
fn single_qubit_kernels_bit_identical() {
    let theta = 0.83_f64;
    let (s, c) = (theta / 2.0).sin_cos();
    for n in 1..=10usize {
        for q in 0..n {
            assert_parity(n, "gate1/u3", |a| {
                apply_gate1(a, q, &Gate1::u3(0.9, -0.3, 1.7));
            });
            assert_parity(n, "gate1/hadamard", |a| {
                apply_gate1(a, q, &Gate1::hadamard());
            });
            assert_parity(n, "rx_sc", |a| apply_rx_sc(a, q, s, c));
            assert_parity(n, "ry_sc", |a| apply_ry_sc(a, q, s, c));
            assert_parity(n, "rz_sc", |a| apply_rz_sc(a, q, s, c));
            assert_parity(n, "rx", |a| apply_rx(a, q, theta));
            assert_parity(n, "ry", |a| apply_ry(a, q, theta));
            assert_parity(n, "rz", |a| apply_rz(a, q, theta));
        }
    }
}

#[test]
fn two_qubit_kernels_bit_identical() {
    let theta = -1.21_f64;
    let (s, c) = (theta / 2.0).sin_cos();
    for n in 2..=10usize {
        for qa in 0..n {
            for qb in 0..n {
                if qa == qb {
                    continue;
                }
                assert_parity(n, "gate2/crx", |a| {
                    apply_gate2(a, qa, qb, &Gate2::crx(0.77));
                });
                assert_parity(n, "gate2/cnot", |a| {
                    apply_gate2(a, qa, qb, &Gate2::cnot());
                });
                assert_parity(n, "controlled_gate1", |a| {
                    apply_controlled_gate1(a, qa, qb, &Gate1::u3(0.4, 0.8, -0.6));
                });
                assert_parity(n, "crx_sc", |a| apply_crx_sc(a, qa, qb, s, c));
                assert_parity(n, "cry_sc", |a| apply_cry_sc(a, qa, qb, s, c));
                assert_parity(n, "crz_sc", |a| apply_crz_sc(a, qa, qb, s, c));
                assert_parity(n, "cnot", |a| apply_cnot(a, qa, qb));
                assert_parity(n, "cz", |a| apply_cz(a, qa, qb));
            }
        }
    }
}

#[test]
fn toffoli_bit_identical() {
    for n in 3..=8usize {
        for c1 in 0..n {
            for c2 in 0..n {
                for t in 0..n {
                    if c1 == c2 || c1 == t || c2 == t {
                        continue;
                    }
                    assert_parity(n, "toffoli", |a| apply_toffoli(a, c1, c2, t));
                }
            }
        }
    }
}

#[test]
fn wide_path_preserves_norm() {
    if !simd::wide_supported() {
        return;
    }
    simd::force(SimdLevel::Avx2);
    for n in 1..=10usize {
        let mut amps = busy_state(n);
        simd::force(SimdLevel::Avx2);
        for q in 0..n {
            apply_gate1(&mut amps, q, &Gate1::u3(1.1 * q as f64 + 0.2, 0.4, -0.9));
            apply_rx(&mut amps, q, 0.3 + q as f64);
            apply_ry(&mut amps, q, -0.7);
            apply_rz(&mut amps, q, 1.9);
        }
        for q in 1..n {
            apply_cnot(&mut amps, q - 1, q);
            apply_crx(&mut amps, q - 1, q, 0.5);
            apply_cry(&mut amps, 0, q, -1.3);
            apply_crz(&mut amps, q, 0, 2.2);
            apply_cz(&mut amps, q - 1, q);
        }
        assert!(
            (norm_sqr(&amps) - 1.0).abs() < 1e-12,
            "norm drift at n={n}: {}",
            norm_sqr(&amps)
        );
    }
    simd::force(SimdLevel::Scalar);
}

#[test]
fn forced_scalar_env_override_is_exercised() {
    // The env override is what CI's forced-scalar job relies on: set it,
    // re-run detection, and verify both the reported level and an actual
    // kernel result computed under it.
    let saved = std::env::var("QSIM_SIMD").ok();
    std::env::set_var("QSIM_SIMD", "scalar");
    assert_eq!(simd::reinit_from_env(), SimdLevel::Scalar);
    let mut amps = busy_state(4);
    // busy_state leaves the level forced to scalar; re-run env detection
    // to prove the env path (not force) selects the scalar kernels.
    assert_eq!(simd::reinit_from_env(), SimdLevel::Scalar);
    apply_rx(&mut amps, 2, 0.9);
    assert!((norm_sqr(&amps) - 1.0).abs() < 1e-12);
    match saved {
        Some(v) => std::env::set_var("QSIM_SIMD", v),
        None => std::env::remove_var("QSIM_SIMD"),
    }
    simd::reinit_from_env();
}
