//! Property-based tests for the offloading environment's invariants.

use proptest::prelude::*;
use qmarl_env::prelude::*;

fn arb_actions(
    n_agents: usize,
    n_actions: usize,
    len: usize,
) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0..n_actions, n_agents), 1..len)
}

proptest! {
    /// Queues never leave [0, q_max], rewards never go positive, and
    /// observations stay normalised — for any action sequence and seed.
    #[test]
    fn env_invariants_hold(
        seed in 0u64..500,
        actions in arb_actions(4, 4, 40),
    ) {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = actions.len();
        let mut env = SingleHopEnv::new(cfg, seed).unwrap();
        env.reset();
        for joint in &actions {
            let out = env.step(joint).unwrap();
            prop_assert!(out.reward <= 0.0);
            for level in &out.info.queue_levels {
                prop_assert!((0.0..=1.0).contains(level), "queue level {level}");
            }
            for o in &out.observations {
                prop_assert_eq!(o.len(), 4);
                prop_assert!(o.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            prop_assert_eq!(&out.state, &out.observations.concat());
            if out.done { break; }
        }
    }

    /// Metric ratios are probabilities and episode length is respected.
    #[test]
    fn metrics_are_well_formed(seed in 0u64..200, t in 1usize..50) {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = t;
        let mut env = SingleHopEnv::new(cfg, seed).unwrap();
        let m = rollout_episode(&mut env, |_| vec![0, 1, 2, 3]).unwrap();
        prop_assert_eq!(m.len, t);
        prop_assert!((0.0..=1.0).contains(&m.empty_ratio));
        prop_assert!((0.0..=1.0).contains(&m.overflow_ratio));
        prop_assert!((0.0..=1.0).contains(&m.avg_queue));
        prop_assert!(m.total_reward <= 0.0);
    }

    /// Action spaces round-trip encode/decode for arbitrary shapes.
    #[test]
    fn action_space_roundtrip(
        n_clouds in 1usize..6,
        amounts in prop::collection::vec(0.01f64..1.0, 1..5),
    ) {
        let space = ActionSpace::new(n_clouds, amounts.clone()).unwrap();
        prop_assert_eq!(space.len(), n_clouds * amounts.len());
        for i in 0..space.len() {
            let a = space.decode(i).unwrap();
            let amount_idx = amounts.iter().position(|&x| x == a.amount).unwrap();
            prop_assert_eq!(space.encode(a.destination, amount_idx).unwrap(), i);
        }
        prop_assert!(space.decode(space.len()).is_err());
    }

    /// The queue update equals clip(q − u + b) exactly, with consistent
    /// under/overflow accounting.
    #[test]
    fn queue_step_matches_clip(
        level in 0.0f64..1.0,
        departure in 0.0f64..1.5,
        arrival in 0.0f64..1.5,
    ) {
        let mut q = Queue::new(level, 1.0);
        let t = q.step(departure, arrival);
        let pre = level - departure + arrival;
        prop_assert!((t.pre_clip - pre).abs() < 1e-12);
        prop_assert!((t.next_level - clip(pre, 0.0, 1.0)).abs() < 1e-12);
        prop_assert!((t.underflow - (-pre).max(0.0)).abs() < 1e-12);
        prop_assert!((t.overflow - (pre - 1.0).max(0.0)).abs() < 1e-12);
        // Exactly one of the flags can imply a nonzero magnitude.
        if t.underflow > 0.0 { prop_assert!(t.is_empty); }
        if t.overflow > 0.0 { prop_assert!(t.is_full); }
    }

    /// Every registered scenario obeys the core environment invariants:
    /// non-positive rewards, normalised queue levels and observations,
    /// state = concatenated observations.
    #[test]
    fn scenario_invariants_hold(seed in 0u64..100, t in 1usize..20) {
        for spec in scenarios() {
            let params = ScenarioParams::seeded(seed).with_episode_limit(t);
            let mut env = spec.build_with(&params).unwrap();
            let (obs, state) = env.reset();
            prop_assert_eq!(obs.concat(), state);
            let n = env.n_agents();
            let acts = env.n_actions();
            for step in 0..t {
                let joint: Vec<usize> = (0..n).map(|a| (seed as usize + step + a) % acts).collect();
                let out = env.step(&joint).unwrap();
                prop_assert!(out.reward <= 0.0, "{}", spec.name());
                for level in &out.info.queue_levels {
                    prop_assert!((0.0..=1.0).contains(level));
                }
                for o in &out.observations {
                    prop_assert_eq!(o.len(), env.obs_dim());
                    prop_assert!(o.iter().all(|v| (0.0..=1.0).contains(v)));
                }
                prop_assert_eq!(&out.state, &out.observations.concat());
                prop_assert_eq!(out.done, step + 1 == t);
            }
        }
    }

    /// The vector adapter's lanes reproduce serial stepping exactly for
    /// arbitrary seeds and action sequences.
    #[test]
    fn vector_adapter_matches_serial_stepping(
        seed in 0u64..200,
        actions in arb_actions(4, 4, 12),
    ) {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = actions.len();
        let template = SingleHopEnv::new(cfg.clone(), 0).unwrap();

        let mut serial = SingleHopEnv::new(cfg, 1).unwrap();
        SeedableEnv::reseed(&mut serial, seed);
        serial.reset();

        let mut venv = ReplicatedVecEnv::new(&template, 2).unwrap();
        venv.reset_lanes(&[seed, seed ^ 0xABCD]).unwrap();
        for joint in &actions {
            let reference = serial.step(joint).unwrap();
            let mut flat = joint.clone();
            flat.extend(joint);
            let out = venv.step_lanes(&flat).unwrap();
            prop_assert_eq!(out.rewards[0], reference.reward);
            prop_assert_eq!(&out.states[..16], &reference.state[..]);
            prop_assert_eq!(&out.infos[0], &reference.info);
            prop_assert_eq!(out.dones[0], reference.done);
        }
    }

    /// Arrival samplers always produce finite, non-negative volumes, with
    /// empirical means near the analytic ones.
    #[test]
    fn arrival_means_match(seed in 0u64..100, which in 0usize..3) {
        use rand::SeedableRng;
        let process = match which {
            0 => ArrivalProcess::Uniform { max: 0.3 },
            1 => ArrivalProcess::PoissonBatch { rate: 2.0, packet_size: 0.05 },
            _ => ArrivalProcess::OnOff { p_on: 0.3, p_off: 0.2, volume: 0.25 },
        };
        let mut s = ArrivalSampler::new(process);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = s.sample(&mut rng);
            prop_assert!(v.is_finite() && v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - process.mean()).abs() < 0.05, "mean {} vs {}", mean, process.mean());
    }
}
