//! The environment interface the CTDE trainer programs against.

use crate::error::EnvError;
use crate::metrics::EpisodeMetrics;

/// One step's outcome as seen by the trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Per-agent observations `o^n_{t+1}`.
    pub observations: Vec<Vec<f64>>,
    /// The global state `s_{t+1}` (concatenated observations, Table I).
    pub state: Vec<f64>,
    /// The shared team reward `r(s_t, u_t)`.
    pub reward: f64,
    /// Whether the episode just terminated.
    pub done: bool,
    /// Step diagnostics for metric accumulation.
    pub info: StepInfo,
}

/// Per-step diagnostics (feed [`crate::metrics::MetricsAccumulator`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// Every queue's occupancy after the step (edges then clouds).
    pub queue_levels: Vec<f64>,
    /// Per-cloud "hit empty" flags.
    pub cloud_empty: Vec<bool>,
    /// Per-cloud "hit capacity" flags.
    pub cloud_full: Vec<bool>,
}

/// A cooperative multi-agent environment with a shared reward, discrete
/// per-agent actions and a global state for centralized training.
pub trait MultiAgentEnv {
    /// Number of agents `N`.
    fn n_agents(&self) -> usize;
    /// Per-agent observation dimension.
    fn obs_dim(&self) -> usize;
    /// Global state dimension (for the centralized critic).
    fn state_dim(&self) -> usize;
    /// Size of each agent's discrete action space.
    fn n_actions(&self) -> usize;
    /// Maximum episode length.
    fn episode_limit(&self) -> usize;

    /// Resets to an initial state, returning `(observations, state)`.
    fn reset(&mut self) -> (Vec<Vec<f64>>, Vec<f64>);

    /// Advances one step with one flat action index per agent.
    ///
    /// # Errors
    ///
    /// Implementations reject wrong-length joint actions, out-of-range
    /// action indices, and stepping a finished episode.
    fn step(&mut self, actions: &[usize]) -> Result<StepOutcome, EnvError>;
}

/// Rolls out one full episode under `policy` (a map from per-agent
/// observations to joint flat actions), returning its metrics.
///
/// # Errors
///
/// Propagates environment step errors.
pub fn rollout_episode<E, P>(env: &mut E, mut policy: P) -> Result<EpisodeMetrics, EnvError>
where
    E: MultiAgentEnv + ?Sized,
    P: FnMut(&[Vec<f64>]) -> Vec<usize>,
{
    let mut acc = crate::metrics::MetricsAccumulator::new();
    let (mut obs, _state) = env.reset();
    loop {
        let actions = policy(&obs);
        let out = env.step(&actions)?;
        acc.record_step(
            out.reward,
            &out.info.queue_levels,
            &out.info.cloud_empty,
            &out.info.cloud_full,
        );
        obs = out.observations;
        if out.done {
            return Ok(acc.finish());
        }
    }
}
