//! Packet arrival processes feeding the edge queues.
//!
//! The paper draws edge arrivals i.i.d. uniform,
//! `b_t ~ U(0, w_P · q_max)` with `w_P = 0.3` (Sec. IV-B). Poisson-batch
//! and bursty ON/OFF generators are provided for the extension
//! experiments (traffic-pattern ablations beyond the paper).

use rand::Rng;

/// A stochastic arrival process producing one packet volume per slot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// `U(0, max)` — the paper's process with `max = w_P · q_max`.
    Uniform {
        /// Upper bound of the uniform draw.
        max: f64,
    },
    /// Poisson-distributed packet count times a fixed packet size.
    PoissonBatch {
        /// Mean packets per slot.
        rate: f64,
        /// Volume of each packet.
        packet_size: f64,
    },
    /// Two-state ON/OFF (bursty) source: emits `volume` while ON.
    OnOff {
        /// Probability of switching OFF→ON per slot.
        p_on: f64,
        /// Probability of switching ON→OFF per slot.
        p_off: f64,
        /// Arrival volume while ON.
        volume: f64,
    },
}

impl ArrivalProcess {
    /// The paper's default: `U(0, w_p · q_max)`.
    pub fn paper_default(w_p: f64, q_max: f64) -> Self {
        ArrivalProcess::Uniform { max: w_p * q_max }
    }

    /// Validates the process parameters (finite, non-negative volumes and
    /// rates; switching probabilities in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`](crate::error::EnvError::InvalidConfig)
    /// describing the first problem.
    pub fn validate(&self) -> Result<(), crate::error::EnvError> {
        use crate::error::EnvError;
        let finite_nonneg = |v: f64, what: &str| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(EnvError::InvalidConfig(format!(
                    "{what} must be finite and non-negative, got {v}"
                )))
            }
        };
        match *self {
            ArrivalProcess::Uniform { max } => finite_nonneg(max, "uniform arrival bound"),
            ArrivalProcess::PoissonBatch { rate, packet_size } => {
                finite_nonneg(rate, "poisson rate")?;
                finite_nonneg(packet_size, "poisson packet size")
            }
            ArrivalProcess::OnOff {
                p_on,
                p_off,
                volume,
            } => {
                for (p, what) in [(p_on, "p_on"), (p_off, "p_off")] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(EnvError::InvalidConfig(format!(
                            "{what} must be a probability in [0, 1], got {p}"
                        )));
                    }
                }
                finite_nonneg(volume, "on/off volume")
            }
        }
    }

    /// Long-run mean arrival volume per slot.
    pub fn mean(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { max } => max / 2.0,
            ArrivalProcess::PoissonBatch { rate, packet_size } => rate * packet_size,
            ArrivalProcess::OnOff {
                p_on,
                p_off,
                volume,
            } => {
                // Stationary P(ON) = p_on / (p_on + p_off).
                if p_on + p_off == 0.0 {
                    0.0
                } else {
                    volume * p_on / (p_on + p_off)
                }
            }
        }
    }
}

/// Stateful sampler for an [`ArrivalProcess`] (the ON/OFF source carries a
/// hidden state bit).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    on: bool,
}

impl ArrivalSampler {
    /// A sampler starting in the OFF state (for ON/OFF sources).
    pub fn new(process: ArrivalProcess) -> Self {
        ArrivalSampler { process, on: false }
    }

    /// The underlying process.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Returns the sampler to its initial (OFF) hidden state. Part of the
    /// environment reseeding contract: after `reseed(seed)` the future
    /// arrival stream must depend on `seed` alone, so any hidden sampler
    /// state has to be cleared too.
    pub fn reset(&mut self) {
        self.on = false;
    }

    /// Draws one slot's arrival volume.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match self.process {
            ArrivalProcess::Uniform { max } => {
                if max <= 0.0 {
                    0.0
                } else {
                    rng.gen_range(0.0..max)
                }
            }
            ArrivalProcess::PoissonBatch { rate, packet_size } => {
                poisson(rng, rate) as f64 * packet_size
            }
            ArrivalProcess::OnOff {
                p_on,
                p_off,
                volume,
            } => {
                if self.on {
                    if rng.gen::<f64>() < p_off {
                        self.on = false;
                    }
                } else if rng.gen::<f64>() < p_on {
                    self.on = true;
                }
                if self.on {
                    volume
                } else {
                    0.0
                }
            }
        }
    }
}

/// Knuth's Poisson sampler (fine for the small rates used here).
fn poisson<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> u32 {
    if rate <= 0.0 {
        return 0;
    }
    let l = (-rate).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological rates
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(process: ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut s = ArrivalSampler::new(process);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_matches_paper_range() {
        let p = ArrivalProcess::paper_default(0.3, 1.0);
        assert_eq!(p, ArrivalProcess::Uniform { max: 0.3 });
        let mut s = ArrivalSampler::new(p);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((0.0..0.3).contains(&v));
        }
        assert!((empirical_mean(p, 50_000, 2) - 0.15).abs() < 0.005);
    }

    #[test]
    fn uniform_mean_formula() {
        assert!((ArrivalProcess::Uniform { max: 0.3 }.mean() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_matches() {
        let p = ArrivalProcess::PoissonBatch {
            rate: 1.5,
            packet_size: 0.1,
        };
        assert!((p.mean() - 0.15).abs() < 1e-12);
        assert!((empirical_mean(p, 50_000, 3) - 0.15).abs() < 0.01);
    }

    #[test]
    fn onoff_stationary_mean() {
        let p = ArrivalProcess::OnOff {
            p_on: 0.2,
            p_off: 0.2,
            volume: 0.3,
        };
        assert!((p.mean() - 0.15).abs() < 1e-12);
        assert!((empirical_mean(p, 100_000, 4) - 0.15).abs() < 0.01);
    }

    #[test]
    fn onoff_is_bursty() {
        // Consecutive samples should be highly correlated (runs of 0 / volume).
        let mut s = ArrivalSampler::new(ArrivalProcess::OnOff {
            p_on: 0.05,
            p_off: 0.05,
            volume: 0.3,
        });
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..10_000).map(|_| s.sample(&mut rng)).collect();
        let same_as_prev = xs.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(same_as_prev as f64 / 9999.0 > 0.8, "not bursty enough");
    }

    #[test]
    fn degenerate_processes() {
        assert_eq!(
            empirical_mean(ArrivalProcess::Uniform { max: 0.0 }, 10, 0),
            0.0
        );
        assert_eq!(
            empirical_mean(
                ArrivalProcess::PoissonBatch {
                    rate: 0.0,
                    packet_size: 1.0
                },
                10,
                0
            ),
            0.0
        );
        assert_eq!(
            ArrivalProcess::OnOff {
                p_on: 0.0,
                p_off: 0.0,
                volume: 1.0
            }
            .mean(),
            0.0
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ArrivalProcess::Uniform { max: 0.3 }.validate().is_ok());
        assert!(ArrivalProcess::Uniform { max: -0.1 }.validate().is_err());
        assert!(ArrivalProcess::Uniform { max: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::PoissonBatch {
            rate: -1.0,
            packet_size: 0.1
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::PoissonBatch {
            rate: 1.0,
            packet_size: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::OnOff {
            p_on: 1.5,
            p_off: 0.5,
            volume: 0.1
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::OnOff {
            p_on: 0.5,
            p_off: -0.1,
            volume: 0.1
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::OnOff {
            p_on: 0.5,
            p_off: 0.5,
            volume: -0.3
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::OnOff {
            p_on: 0.5,
            p_off: 0.5,
            volume: 0.3
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = ArrivalProcess::paper_default(0.3, 1.0);
        assert_eq!(empirical_mean(p, 100, 7), empirical_mean(p, 100, 7));
    }
}
