//! [`VectorEnv`]: a batch of homogeneous episodes stepped in lockstep.
//!
//! The serial [`MultiAgentEnv`] interface hands the trainer one
//! observation set at a time, which starves a batched circuit executor:
//! every policy evaluation arrives as a single-sample forward pass. A
//! [`VectorEnv`] instead advances `B` independent episodes ("lanes") of
//! the *same* scenario together, exposing struct-of-arrays buffers — one
//! flat `f64` slab for all observations, one for all global states — so a
//! collector can hand `B × N` circuit evaluations to an executor as one
//! flat batch per lockstep tick.
//!
//! Determinism is lane-local: [`VectorEnv::reset_lanes`] seeds each lane
//! independently, and a lane's trajectory depends only on its seed and
//! the actions it is fed — never on the batch width or on its neighbours.
//! [`ReplicatedVecEnv`] is the blanket adapter that lifts any cloneable,
//! reseedable serial environment into the vector interface with exactly
//! that guarantee, which is what makes vectorized rollouts bit-identical
//! to serial ones (property-tested in `qmarl-runtime`).
//!
//! ## Buffer layout
//!
//! For `k` live lanes, `N` agents, observation width `d` and state width
//! `s`, the SoA buffers are row-major:
//!
//! ```text
//! observations: [lane 0: agent 0 │ agent 1 │ … │ agent N−1] [lane 1: …]   (k·N·d)
//! states:       [lane 0 state] [lane 1 state] …                           (k·s)
//! ```

use crate::error::EnvError;
use crate::multi_agent::{MultiAgentEnv, StepInfo};

/// An environment whose entire future randomness is determined by a
/// single seed: [`SeedableEnv::reseed`] re-seeds the internal RNG and
/// resets the episode. This is the capability rollout engines use to give
/// each episode private, reproducible randomness independent of worker
/// scheduling or batch width.
pub trait SeedableEnv: MultiAgentEnv {
    /// Makes this instance's future stream fully determined by `seed`
    /// (also resets the episode).
    fn reseed(&mut self, seed: u64);
}

/// The initial buffers of a freshly seeded batch of lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct VecReset {
    /// The lane indices that were seeded, in row order.
    pub lanes: Vec<usize>,
    /// SoA observations, `lanes.len() · n_agents · obs_dim` long.
    pub observations: Vec<f64>,
    /// SoA global states, `lanes.len() · state_dim` long.
    pub states: Vec<f64>,
}

/// One lockstep tick's outcome across all live lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct VecStepOutcome {
    /// The lane index behind each dense row (lanes that finished on an
    /// earlier tick no longer occupy rows).
    pub lanes: Vec<usize>,
    /// SoA next observations, `lanes.len() · n_agents · obs_dim` long.
    pub observations: Vec<f64>,
    /// SoA next global states, `lanes.len() · state_dim` long.
    pub states: Vec<f64>,
    /// Shared team reward per row.
    pub rewards: Vec<f64>,
    /// Whether each row's episode just terminated.
    pub dones: Vec<bool>,
    /// Step diagnostics per row.
    pub infos: Vec<StepInfo>,
}

/// A batch of homogeneous episodes advanced in lockstep.
///
/// All lanes share one scenario shape (`n_agents`, `obs_dim`, …); each
/// lane owns private dynamics and randomness. Implementations must keep
/// lanes independent: feeding lane `i` the same seed and action sequence
/// must reproduce the same trajectory at any batch width.
pub trait VectorEnv {
    /// Maximum number of lanes this instance can run (`B`).
    fn batch_size(&self) -> usize;
    /// Number of agents `N` per lane.
    fn n_agents(&self) -> usize;
    /// Per-agent observation dimension.
    fn obs_dim(&self) -> usize;
    /// Global state dimension.
    fn state_dim(&self) -> usize;
    /// Size of each agent's discrete action space.
    fn n_actions(&self) -> usize;
    /// Maximum episode length per lane.
    fn episode_limit(&self) -> usize;

    /// Seeds and resets lanes `0..seeds.len()`, making them live; any
    /// remaining lanes are parked (useful for a final partial wave).
    ///
    /// # Errors
    ///
    /// Rejects an empty seed list or more seeds than [`VectorEnv::batch_size`].
    fn reset_lanes(&mut self, seeds: &[u64]) -> Result<VecReset, EnvError>;

    /// Advances every live lane one step. `actions` is row-major over the
    /// live lanes: `lanes.len() · n_agents` flat action indices, rows in
    /// the order reported by the previous reset/step call.
    ///
    /// # Errors
    ///
    /// Rejects a wrong-length action slab, out-of-range action indices,
    /// and stepping with no live lanes.
    fn step_lanes(&mut self, actions: &[usize]) -> Result<VecStepOutcome, EnvError>;

    /// Indices of lanes still running, in row order.
    fn live_lanes(&self) -> Vec<usize>;
}

/// The blanket adapter: `B` private clones of a serial environment,
/// stepped in lockstep behind the [`VectorEnv`] interface.
///
/// Each lane is a full clone of the template, re-seeded per episode via
/// [`SeedableEnv::reseed`] — so a lane's trajectory is *exactly* the
/// trajectory the serial engine would produce for the same seed, and
/// vectorized collection can be bit-identical to serial collection.
#[derive(Debug, Clone)]
pub struct ReplicatedVecEnv<E> {
    lanes: Vec<E>,
    live: Vec<usize>,
}

impl<E: SeedableEnv + Clone> ReplicatedVecEnv<E> {
    /// Builds a `batch`-lane vector environment from a template.
    ///
    /// # Errors
    ///
    /// Rejects `batch == 0`.
    pub fn new(template: &E, batch: usize) -> Result<Self, EnvError> {
        if batch == 0 {
            return Err(EnvError::InvalidConfig(
                "vector environment needs at least one lane".into(),
            ));
        }
        Ok(ReplicatedVecEnv {
            lanes: vec![template.clone(); batch],
            live: Vec::new(),
        })
    }

    /// Direct access to one lane (diagnostics and tests).
    pub fn lane(&self, index: usize) -> &E {
        &self.lanes[index]
    }
}

impl<E: SeedableEnv + Clone> VectorEnv for ReplicatedVecEnv<E> {
    fn batch_size(&self) -> usize {
        self.lanes.len()
    }

    fn n_agents(&self) -> usize {
        self.lanes[0].n_agents()
    }

    fn obs_dim(&self) -> usize {
        self.lanes[0].obs_dim()
    }

    fn state_dim(&self) -> usize {
        self.lanes[0].state_dim()
    }

    fn n_actions(&self) -> usize {
        self.lanes[0].n_actions()
    }

    fn episode_limit(&self) -> usize {
        self.lanes[0].episode_limit()
    }

    fn reset_lanes(&mut self, seeds: &[u64]) -> Result<VecReset, EnvError> {
        if seeds.is_empty() || seeds.len() > self.lanes.len() {
            return Err(EnvError::InvalidConfig(format!(
                "need between 1 and {} lane seeds, got {}",
                self.lanes.len(),
                seeds.len()
            )));
        }
        let (na, od, sd) = (self.n_agents(), self.obs_dim(), self.state_dim());
        let mut reset = VecReset {
            lanes: (0..seeds.len()).collect(),
            observations: Vec::with_capacity(seeds.len() * na * od),
            states: Vec::with_capacity(seeds.len() * sd),
        };
        for (lane, &seed) in seeds.iter().enumerate() {
            // reseed-then-reset mirrors the serial rollout engine exactly
            // (it reseeds the template clone, then run_episode resets).
            self.lanes[lane].reseed(seed);
            let (obs, state) = self.lanes[lane].reset();
            for o in &obs {
                reset.observations.extend_from_slice(o);
            }
            reset.states.extend_from_slice(&state);
        }
        self.live = reset.lanes.clone();
        Ok(reset)
    }

    fn step_lanes(&mut self, actions: &[usize]) -> Result<VecStepOutcome, EnvError> {
        if self.live.is_empty() {
            return Err(EnvError::EpisodeOver);
        }
        let na = self.n_agents();
        if actions.len() != self.live.len() * na {
            return Err(EnvError::WrongAgentCount {
                expected: self.live.len() * na,
                actual: actions.len(),
            });
        }
        let (od, sd) = (self.obs_dim(), self.state_dim());
        let k = self.live.len();
        let mut out = VecStepOutcome {
            lanes: self.live.clone(),
            observations: Vec::with_capacity(k * na * od),
            states: Vec::with_capacity(k * sd),
            rewards: Vec::with_capacity(k),
            dones: Vec::with_capacity(k),
            infos: Vec::with_capacity(k),
        };
        for (row, &lane) in out.lanes.iter().enumerate() {
            let step = self.lanes[lane].step(&actions[row * na..(row + 1) * na])?;
            for o in &step.observations {
                out.observations.extend_from_slice(o);
            }
            out.states.extend_from_slice(&step.state);
            out.rewards.push(step.reward);
            out.dones.push(step.done);
            out.infos.push(step.info);
        }
        self.live = out
            .lanes
            .iter()
            .zip(&out.dones)
            .filter(|(_, &done)| !done)
            .map(|(&lane, _)| lane)
            .collect();
        Ok(out)
    }

    fn live_lanes(&self) -> Vec<usize> {
        self.live.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_hop::{EnvConfig, SingleHopEnv};

    fn template(limit: usize) -> SingleHopEnv {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = limit;
        SingleHopEnv::new(cfg, 0).unwrap()
    }

    #[test]
    fn shapes_mirror_the_template() {
        let v = ReplicatedVecEnv::new(&template(10), 3).unwrap();
        assert_eq!(v.batch_size(), 3);
        assert_eq!(v.n_agents(), 4);
        assert_eq!(v.obs_dim(), 4);
        assert_eq!(v.state_dim(), 16);
        assert_eq!(v.n_actions(), 4);
        assert_eq!(v.episode_limit(), 10);
    }

    #[test]
    fn zero_lanes_rejected() {
        assert!(ReplicatedVecEnv::new(&template(10), 0).is_err());
    }

    #[test]
    fn reset_validates_seed_count() {
        let mut v = ReplicatedVecEnv::new(&template(10), 2).unwrap();
        assert!(v.reset_lanes(&[]).is_err());
        assert!(v.reset_lanes(&[1, 2, 3]).is_err());
        assert!(v.reset_lanes(&[1, 2]).is_ok());
    }

    #[test]
    fn soa_buffers_have_documented_layout() {
        let mut v = ReplicatedVecEnv::new(&template(10), 2).unwrap();
        let r = v.reset_lanes(&[7, 9]).unwrap();
        assert_eq!(r.lanes, vec![0, 1]);
        assert_eq!(r.observations.len(), 2 * 4 * 4);
        assert_eq!(r.states.len(), 2 * 16);
        // Each lane's state is its concatenated observations, so the state
        // row must equal the observation row.
        assert_eq!(r.observations[..16], r.states[..16]);
        assert_eq!(r.observations[16..], r.states[16..]);

        let out = v.step_lanes(&[0, 1, 2, 3, 3, 2, 1, 0]).unwrap();
        assert_eq!(out.lanes, vec![0, 1]);
        assert_eq!(out.observations.len(), 32);
        assert_eq!(out.states.len(), 32);
        assert_eq!(out.rewards.len(), 2);
        assert_eq!(out.infos.len(), 2);
        assert!(out.dones.iter().all(|&d| !d));
    }

    #[test]
    fn lanes_reproduce_serial_trajectories_exactly() {
        // Lane i of a batch must equal a serial env reseeded with lane i's
        // seed and fed the same actions — for any batch width.
        let limit = 8;
        let seeds = [11u64, 22, 33];
        let actions_for =
            |lane: usize, t: usize| -> Vec<usize> { (0..4).map(|n| (lane + t + n) % 4).collect() };

        let mut serial = Vec::new();
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut env = template(limit);
            env.reseed(seed);
            env.reset();
            let mut trace = Vec::new();
            for t in 0..limit {
                let out = env.step(&actions_for(lane, t)).unwrap();
                trace.push((out.reward, out.state.clone(), out.done));
            }
            serial.push(trace);
        }

        for batch in [3usize, 5] {
            let mut v = ReplicatedVecEnv::new(&template(limit), batch).unwrap();
            v.reset_lanes(&seeds).unwrap();
            #[allow(clippy::needless_range_loop)] // t also drives the action pattern
            for t in 0..limit {
                let flat: Vec<usize> = (0..3).flat_map(|lane| actions_for(lane, t)).collect();
                let out = v.step_lanes(&flat).unwrap();
                for (row, &lane) in out.lanes.iter().enumerate() {
                    let (reward, state, done) = &serial[lane][t];
                    assert_eq!(out.rewards[row], *reward, "lane {lane} t {t}");
                    assert_eq!(&out.states[row * 16..(row + 1) * 16], &state[..]);
                    assert_eq!(out.dones[row], *done);
                }
            }
            assert!(v.live_lanes().is_empty());
            assert!(matches!(v.step_lanes(&[]), Err(EnvError::EpisodeOver)));
        }
    }

    #[test]
    fn action_slab_length_validated() {
        let mut v = ReplicatedVecEnv::new(&template(5), 2).unwrap();
        v.reset_lanes(&[1, 2]).unwrap();
        assert!(matches!(
            v.step_lanes(&[0; 7]),
            Err(EnvError::WrongAgentCount {
                expected: 8,
                actual: 7
            })
        ));
        assert!(matches!(
            v.step_lanes(&[9; 8]),
            Err(EnvError::InvalidAction { .. })
        ));
    }

    #[test]
    fn partial_wave_parks_spare_lanes() {
        let mut v = ReplicatedVecEnv::new(&template(3), 4).unwrap();
        let r = v.reset_lanes(&[5]).unwrap();
        assert_eq!(r.lanes, vec![0]);
        assert_eq!(v.live_lanes(), vec![0]);
        for _ in 0..3 {
            v.step_lanes(&[0, 0, 0, 0]).unwrap();
        }
        assert!(v.live_lanes().is_empty());
    }
}
