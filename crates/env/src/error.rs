//! Error types for the offloading environment.

use std::error::Error;
use std::fmt;

/// Errors from environment construction or stepping.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// A configuration value was rejected.
    InvalidConfig(String),
    /// A flat action index fell outside the action space.
    InvalidAction {
        /// The rejected index.
        index: usize,
        /// Size of the action space.
        n_actions: usize,
    },
    /// The joint action vector length did not match the agent count.
    WrongAgentCount {
        /// Expected number of agents.
        expected: usize,
        /// Supplied number of actions.
        actual: usize,
    },
    /// `step` was called after the episode terminated.
    EpisodeOver,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::InvalidConfig(msg) => write!(f, "invalid environment config: {msg}"),
            EnvError::InvalidAction { index, n_actions } => {
                write!(
                    f,
                    "action index {index} out of range for {n_actions} actions"
                )
            }
            EnvError::WrongAgentCount { expected, actual } => {
                write!(f, "expected {expected} agent actions, got {actual}")
            }
            EnvError::EpisodeOver => write!(f, "step called after the episode ended; call reset"),
        }
    }
}

impl Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        for e in [
            EnvError::InvalidConfig("x".into()),
            EnvError::InvalidAction {
                index: 9,
                n_actions: 4,
            },
            EnvError::WrongAgentCount {
                expected: 4,
                actual: 2,
            },
            EnvError::EpisodeOver,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
