//! The random-walk baseline used for the paper's achievability metric.
//!
//! Sec. IV-D normalises every framework's return against a uniformly
//! random joint policy ("the random walk records −33.2 on average"):
//! `achievability = (R − R_random) / (0 − R_random)` — a min-max
//! normalisation between the random policy and the perfect (zero-penalty)
//! return.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::EnvError;
use crate::metrics::{EpisodeMetrics, MetricsMean};
use crate::multi_agent::{rollout_episode, MultiAgentEnv};

/// Runs `episodes` episodes under the uniform-random joint policy and
/// returns the mean metrics.
///
/// # Errors
///
/// Propagates environment step errors.
pub fn random_walk_baseline<E: MultiAgentEnv + ?Sized>(
    env: &mut E,
    episodes: usize,
    seed: u64,
) -> Result<EpisodeMetrics, EnvError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_agents = env.n_agents();
    let n_actions = env.n_actions();
    let mut agg = MetricsMean::new();
    for _ in 0..episodes {
        let m = rollout_episode(env, |_obs| {
            (0..n_agents).map(|_| rng.gen_range(0..n_actions)).collect()
        })?;
        agg.add(&m);
    }
    Ok(agg.mean().expect("episodes > 0 produces a mean"))
}

/// The paper's min-max achievability: 0 at the random-walk return, 1 at
/// the ideal (zero) return. Values can exceed `[0, 1]` if a policy is
/// worse than random.
pub fn achievability(total_reward: f64, random_walk_reward: f64) -> f64 {
    if random_walk_reward >= 0.0 {
        // Degenerate normalisation base; treat any non-negative return as perfect.
        return if total_reward >= 0.0 { 1.0 } else { 0.0 };
    }
    (total_reward - random_walk_reward) / (0.0 - random_walk_reward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_hop::{EnvConfig, SingleHopEnv};

    #[test]
    fn baseline_is_reproducible() {
        let mut env = SingleHopEnv::new(EnvConfig::paper_default(), 1).unwrap();
        let a = random_walk_baseline(&mut env, 20, 7).unwrap();
        let mut env = SingleHopEnv::new(EnvConfig::paper_default(), 1).unwrap();
        let b = random_walk_baseline(&mut env, 20, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_reward_is_negative() {
        let mut env = SingleHopEnv::new(EnvConfig::paper_default(), 3).unwrap();
        let m = random_walk_baseline(&mut env, 50, 11).unwrap();
        assert!(
            m.total_reward < 0.0,
            "random policy must incur penalties, got {}",
            m.total_reward
        );
        assert!(m.avg_queue > 0.0 && m.avg_queue < 1.0);
    }

    #[test]
    fn achievability_normalisation() {
        assert!((achievability(0.0, -33.2) - 1.0).abs() < 1e-12);
        assert!((achievability(-33.2, -33.2)).abs() < 1e-12);
        // The paper's numbers: Proposed −3.0 vs random −33.2 → 91.0%.
        let a = achievability(-3.0, -33.2);
        assert!((a - 0.9096).abs() < 1e-3);
        // Worse than random → negative.
        assert!(achievability(-50.0, -33.2) < 0.0);
    }

    #[test]
    fn achievability_degenerate_base() {
        assert_eq!(achievability(-1.0, 0.0), 0.0);
        assert_eq!(achievability(0.0, 0.0), 1.0);
    }
}
