//! Episode metrics: exactly the four panels of the paper's Fig. 3.
//!
//! * total reward (Fig. 3a),
//! * average queue occupancy across edges and clouds (Fig. 3b),
//! * queue-empty event ratio at the clouds (Fig. 3c),
//! * queue-overflow event ratio at the clouds (Fig. 3d).

/// Aggregated measurements of one finished episode.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpisodeMetrics {
    /// Sum of rewards over the episode (Fig. 3a).
    pub total_reward: f64,
    /// Mean occupancy over all queues (edges and clouds) and steps (Fig. 3b).
    pub avg_queue: f64,
    /// Fraction of (cloud, step) pairs whose queue hit 0 (Fig. 3c).
    pub empty_ratio: f64,
    /// Fraction of (cloud, step) pairs whose queue hit `q_max` (Fig. 3d).
    pub overflow_ratio: f64,
    /// Number of steps taken.
    pub len: usize,
}

/// Accumulates per-step observations into [`EpisodeMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsAccumulator {
    reward_sum: f64,
    queue_sum: f64,
    queue_samples: usize,
    empty_events: usize,
    overflow_events: usize,
    cloud_samples: usize,
    steps: usize,
}

impl MetricsAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one environment step.
    ///
    /// `queue_levels` should contain every queue's occupancy (edges and
    /// clouds); `cloud_empty`/`cloud_full` are per-cloud event flags.
    pub fn record_step(
        &mut self,
        reward: f64,
        queue_levels: &[f64],
        cloud_empty: &[bool],
        cloud_full: &[bool],
    ) {
        self.reward_sum += reward;
        self.queue_sum += queue_levels.iter().sum::<f64>();
        self.queue_samples += queue_levels.len();
        self.empty_events += cloud_empty.iter().filter(|&&e| e).count();
        self.overflow_events += cloud_full.iter().filter(|&&e| e).count();
        self.cloud_samples += cloud_empty.len();
        self.steps += 1;
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Finalises the episode.
    pub fn finish(&self) -> EpisodeMetrics {
        EpisodeMetrics {
            total_reward: self.reward_sum,
            avg_queue: if self.queue_samples == 0 {
                0.0
            } else {
                self.queue_sum / self.queue_samples as f64
            },
            empty_ratio: if self.cloud_samples == 0 {
                0.0
            } else {
                self.empty_events as f64 / self.cloud_samples as f64
            },
            overflow_ratio: if self.cloud_samples == 0 {
                0.0
            } else {
                self.overflow_events as f64 / self.cloud_samples as f64
            },
            len: self.steps,
        }
    }
}

/// Running mean over many episodes, per metric (what the training curves
/// plot at each epoch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsMean {
    sums: [f64; 4],
    count: usize,
}

impl MetricsMean {
    /// A fresh aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one episode.
    pub fn add(&mut self, m: &EpisodeMetrics) {
        self.sums[0] += m.total_reward;
        self.sums[1] += m.avg_queue;
        self.sums[2] += m.empty_ratio;
        self.sums[3] += m.overflow_ratio;
        self.count += 1;
    }

    /// Number of episodes aggregated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The mean metrics, or `None` when empty.
    pub fn mean(&self) -> Option<EpisodeMetrics> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        Some(EpisodeMetrics {
            total_reward: self.sums[0] / n,
            avg_queue: self.sums[1] / n,
            empty_ratio: self.sums[2] / n,
            overflow_ratio: self.sums[3] / n,
            len: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_one_episode() {
        let mut acc = MetricsAccumulator::new();
        acc.record_step(-1.0, &[0.5, 0.5, 1.0, 0.0], &[false, true], &[true, false]);
        acc.record_step(
            -2.0,
            &[0.0, 1.0, 0.5, 0.5],
            &[false, false],
            &[false, false],
        );
        let m = acc.finish();
        assert_eq!(m.total_reward, -3.0);
        assert!((m.avg_queue - 0.5).abs() < 1e-12);
        assert!((m.empty_ratio - 0.25).abs() < 1e-12);
        assert!((m.overflow_ratio - 0.25).abs() < 1e-12);
        assert_eq!(m.len, 2);
        assert_eq!(acc.steps(), 2);
    }

    #[test]
    fn empty_accumulator_is_zeroes() {
        let m = MetricsAccumulator::new().finish();
        assert_eq!(m.total_reward, 0.0);
        assert_eq!(m.avg_queue, 0.0);
        assert_eq!(m.len, 0);
    }

    #[test]
    fn mean_over_episodes() {
        let mut agg = MetricsMean::new();
        assert!(agg.mean().is_none());
        agg.add(&EpisodeMetrics {
            total_reward: -10.0,
            avg_queue: 0.4,
            empty_ratio: 0.1,
            overflow_ratio: 0.0,
            len: 5,
        });
        agg.add(&EpisodeMetrics {
            total_reward: -20.0,
            avg_queue: 0.6,
            empty_ratio: 0.3,
            overflow_ratio: 0.2,
            len: 5,
        });
        let m = agg.mean().unwrap();
        assert_eq!(agg.count(), 2);
        assert_eq!(m.total_reward, -15.0);
        assert!((m.avg_queue - 0.5).abs() < 1e-12);
        assert!((m.empty_ratio - 0.2).abs() < 1e-12);
        assert!((m.overflow_ratio - 0.1).abs() < 1e-12);
    }
}
