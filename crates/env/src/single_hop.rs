//! The single-hop edge-to-cloud offloading environment (Sec. IV-A).
//!
//! `N` edge agents each hold a queue fed by exogenous packet arrivals and,
//! every slot, offload a chosen volume to one of `K` cloud queues. Clouds
//! drain at a constant service rate. The team is punished when a **cloud**
//! queue underflows (idle capacity) or overflows (dropped packets) —
//! eq. (1) — so the agents must learn to keep both clouds evenly fed
//! without knowing each other's actions.
//!
//! The MDP matches Table I exactly:
//!
//! | element | definition |
//! |---|---|
//! | observation | `o^n_t = {q^{e,n}_t, q^{e,n}_{t−1}} ∪ {q^{c,k}_t}_k` |
//! | action | `u^n_t ∈ I × P` (destination cloud × packet amount) |
//! | state | `s_t = ∪_n o^n_t` (concatenation) |
//! | reward | eq. (1), weighted by `w_R` |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::ActionSpace;
use crate::error::EnvError;
use crate::multi_agent::{MultiAgentEnv, StepInfo, StepOutcome};
use crate::queue::Queue;
use crate::traffic::{ArrivalProcess, ArrivalSampler};

/// How queues are initialised at `reset`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InitQueue {
    /// Every queue starts at this fraction of `q_max`.
    Fixed(f64),
    /// Uniform in `[lo, hi]` (fractions of `q_max`), drawn per queue.
    Uniform(f64, f64),
}

/// Full environment configuration. [`EnvConfig::paper_default`] reproduces
/// Table II.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnvConfig {
    /// Number of clouds `K`.
    pub n_clouds: usize,
    /// Number of edge agents `N`.
    pub n_edges: usize,
    /// Queue capacity `q_max`.
    pub q_max: f64,
    /// Arrival-scale hyper-parameter `w_P` (edge arrivals `~ U(0, w_P·q_max)`).
    pub w_p: f64,
    /// Overflow penalty weight `w_R` in eq. (1).
    pub w_r: f64,
    /// Constant cloud service (departure) volume per slot.
    pub cloud_departure: f64,
    /// The packet-amount set `P`.
    pub packet_amounts: Vec<f64>,
    /// Episode length `T`.
    pub episode_limit: usize,
    /// Queue initialisation at reset.
    pub init_queue: InitQueue,
    /// When `true`, an edge can only transmit what its queue holds
    /// (`min(p, q)` reaches the cloud). The paper's dynamics clip the edge
    /// queue but let the nominal volume reach the cloud; `false` (default)
    /// reproduces that literal behaviour.
    pub strict_transmission: bool,
    /// Edge arrival process (defaults to the paper's uniform law).
    pub arrival: ArrivalProcess,
}

impl EnvConfig {
    /// Table II: `K = 2`, `N = 4`, `P = {0.1, 0.2}`, `w_P = 0.3`,
    /// `w_R = 4`, cloud service `0.3`, `q_max = 1`.
    ///
    /// The paper does not print the episode length; we calibrate
    /// `T = 300`, for which the uniform-random baseline's return is
    /// −33.6 ± 0.5 — matching the paper's reported −33.2 (see
    /// EXPERIMENTS.md calibration note).
    pub fn paper_default() -> Self {
        EnvConfig {
            n_clouds: 2,
            n_edges: 4,
            q_max: 1.0,
            w_p: 0.3,
            w_r: 4.0,
            cloud_departure: 0.3,
            packet_amounts: vec![0.1, 0.2],
            episode_limit: 300,
            init_queue: InitQueue::Uniform(0.3, 0.7),
            strict_transmission: false,
            arrival: ArrivalProcess::Uniform { max: 0.3 },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), EnvError> {
        if self.n_clouds == 0 || self.n_edges == 0 {
            return Err(EnvError::InvalidConfig(
                "need at least one cloud and one edge".into(),
            ));
        }
        if self.q_max <= 0.0 {
            return Err(EnvError::InvalidConfig("q_max must be positive".into()));
        }
        if self.w_p < 0.0 || self.w_r < 0.0 {
            return Err(EnvError::InvalidConfig(
                "w_P and w_R must be non-negative".into(),
            ));
        }
        if self.cloud_departure < 0.0 {
            return Err(EnvError::InvalidConfig(
                "cloud departure must be non-negative".into(),
            ));
        }
        if self.episode_limit == 0 {
            return Err(EnvError::InvalidConfig(
                "episode limit must be positive".into(),
            ));
        }
        match self.init_queue {
            InitQueue::Fixed(f) if !(0.0..=1.0).contains(&f) => {
                return Err(EnvError::InvalidConfig(
                    "fixed init fraction outside [0, 1]".into(),
                ))
            }
            InitQueue::Uniform(lo, hi)
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi =>
            {
                return Err(EnvError::InvalidConfig("uniform init range invalid".into()))
            }
            _ => {}
        }
        ActionSpace::new(self.n_clouds, self.packet_amounts.clone())?;
        self.arrival.validate()?;
        Ok(())
    }

    /// Per-agent observation dimension: `2 + K` (Table I).
    pub fn obs_dim(&self) -> usize {
        2 + self.n_clouds
    }

    /// Global state dimension: `N · (2 + K)`.
    pub fn state_dim(&self) -> usize {
        self.n_edges * self.obs_dim()
    }
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig::paper_default()
    }
}

/// The single-hop offloading environment.
#[derive(Debug, Clone)]
pub struct SingleHopEnv {
    config: EnvConfig,
    actions: ActionSpace,
    rng: StdRng,
    edge_queues: Vec<Queue>,
    prev_edge_levels: Vec<f64>,
    cloud_queues: Vec<Queue>,
    arrivals: Vec<ArrivalSampler>,
    t: usize,
    done: bool,
}

impl SingleHopEnv {
    /// Builds the environment with a deterministic RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: EnvConfig, seed: u64) -> Result<Self, EnvError> {
        config.validate()?;
        let actions = ActionSpace::new(config.n_clouds, config.packet_amounts.clone())?;
        let arrivals = (0..config.n_edges)
            .map(|_| ArrivalSampler::new(config.arrival))
            .collect();
        let mut env = SingleHopEnv {
            edge_queues: vec![Queue::new(0.0, config.q_max); config.n_edges],
            prev_edge_levels: vec![0.0; config.n_edges],
            cloud_queues: vec![Queue::new(0.0, config.q_max); config.n_clouds],
            arrivals,
            rng: StdRng::seed_from_u64(seed),
            actions,
            config,
            t: 0,
            done: true,
        };
        env.reset_internal();
        Ok(env)
    }

    /// The configuration in force.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Re-seeds the internal RNG, clears hidden arrival-sampler state and
    /// resets the episode, making this instance's future stream fully
    /// determined by `seed`. This is the hook rollout engines (parallel
    /// workers and vectorized lanes alike) use to give each episode its
    /// own derived, reproducible randomness independent of scheduling.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        for sampler in &mut self.arrivals {
            sampler.reset();
        }
        self.reset_internal();
    }

    /// The action space.
    pub fn action_space(&self) -> &ActionSpace {
        &self.actions
    }

    /// Current simulation time within the episode.
    pub fn time(&self) -> usize {
        self.t
    }

    /// Current edge queue levels (diagnostic).
    pub fn edge_levels(&self) -> Vec<f64> {
        self.edge_queues.iter().map(Queue::level).collect()
    }

    /// Current cloud queue levels (diagnostic).
    pub fn cloud_levels(&self) -> Vec<f64> {
        self.cloud_queues.iter().map(Queue::level).collect()
    }

    fn init_level(&mut self) -> f64 {
        let q_max = self.config.q_max;
        match self.config.init_queue {
            InitQueue::Fixed(f) => f * q_max,
            InitQueue::Uniform(lo, hi) => {
                if lo == hi {
                    lo * q_max
                } else {
                    self.rng.gen_range(lo..hi) * q_max
                }
            }
        }
    }

    fn reset_internal(&mut self) {
        for i in 0..self.config.n_edges {
            let lvl = self.init_level();
            self.edge_queues[i].set_level(lvl);
            self.prev_edge_levels[i] = lvl;
        }
        for k in 0..self.config.n_clouds {
            let lvl = self.init_level();
            self.cloud_queues[k].set_level(lvl);
        }
        self.t = 0;
        self.done = false;
    }

    fn observation(&self, n: usize) -> Vec<f64> {
        // o^n_t = {q_e(t), q_e(t−1)} ∪ {q_c,k(t)} — all normalised by q_max.
        let q_max = self.config.q_max;
        let mut o = Vec::with_capacity(self.config.obs_dim());
        o.push(self.edge_queues[n].level() / q_max);
        o.push(self.prev_edge_levels[n] / q_max);
        for c in &self.cloud_queues {
            o.push(c.level() / q_max);
        }
        o
    }

    fn observations(&self) -> Vec<Vec<f64>> {
        (0..self.config.n_edges)
            .map(|n| self.observation(n))
            .collect()
    }

    fn global_state(&self) -> Vec<f64> {
        let mut s = Vec::with_capacity(self.config.state_dim());
        for n in 0..self.config.n_edges {
            s.extend(self.observation(n));
        }
        s
    }
}

impl MultiAgentEnv for SingleHopEnv {
    fn n_agents(&self) -> usize {
        self.config.n_edges
    }

    fn obs_dim(&self) -> usize {
        self.config.obs_dim()
    }

    fn state_dim(&self) -> usize {
        self.config.state_dim()
    }

    fn n_actions(&self) -> usize {
        self.actions.len()
    }

    fn episode_limit(&self) -> usize {
        self.config.episode_limit
    }

    fn reset(&mut self) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.reset_internal();
        (self.observations(), self.global_state())
    }

    fn step(&mut self, actions: &[usize]) -> Result<StepOutcome, EnvError> {
        if self.done {
            return Err(EnvError::EpisodeOver);
        }
        if actions.len() != self.config.n_edges {
            return Err(EnvError::WrongAgentCount {
                expected: self.config.n_edges,
                actual: actions.len(),
            });
        }
        let decoded: Vec<_> = actions
            .iter()
            .map(|&a| self.actions.decode(a))
            .collect::<Result<_, _>>()?;

        // 1. Edge transmissions: nominal volume per the chosen action; the
        //    paper's dynamics clip the edge queue (it cannot go negative)
        //    and, unless strict_transmission is set, the nominal volume is
        //    what reaches the chosen cloud.
        let mut cloud_arrivals = vec![0.0; self.config.n_clouds];
        let mut edge_departures = vec![0.0; self.config.n_edges];
        for (n, act) in decoded.iter().enumerate() {
            let volume = if self.config.strict_transmission {
                act.amount.min(self.edge_queues[n].level())
            } else {
                act.amount
            };
            cloud_arrivals[act.destination] += volume;
            edge_departures[n] = act.amount;
        }

        // 2. Edge queue updates with fresh exogenous arrivals.
        #[allow(clippy::needless_range_loop)] // n indexes four parallel arrays
        for n in 0..self.config.n_edges {
            self.prev_edge_levels[n] = self.edge_queues[n].level();
            let b = self.arrivals[n].sample(&mut self.rng);
            self.edge_queues[n].step(edge_departures[n], b);
        }

        // 3. Cloud queue updates + eq. (1) reward.
        let mut reward = 0.0;
        let mut cloud_empty = vec![false; self.config.n_clouds];
        let mut cloud_full = vec![false; self.config.n_clouds];
        for k in 0..self.config.n_clouds {
            let tr = self.cloud_queues[k].step(self.config.cloud_departure, cloud_arrivals[k]);
            // q̃ = |q − u + b| (pre-clip magnitude), q̂ = |q_max − q̃|.
            let q_tilde = tr.pre_clip.abs();
            let q_hat = (self.config.q_max - q_tilde).abs();
            if tr.is_empty {
                reward -= q_tilde;
                cloud_empty[k] = true;
            }
            if tr.is_full {
                reward -= q_hat * self.config.w_r;
                cloud_full[k] = true;
            }
        }

        self.t += 1;
        if self.t >= self.config.episode_limit {
            self.done = true;
        }

        let mut queue_levels = self.edge_levels();
        queue_levels.extend(self.cloud_levels());
        Ok(StepOutcome {
            observations: self.observations(),
            state: self.global_state(),
            reward,
            done: self.done,
            info: StepInfo {
                queue_levels,
                cloud_empty,
                cloud_full,
            },
        })
    }
}

impl crate::vector::SeedableEnv for SingleHopEnv {
    fn reseed(&mut self, seed: u64) {
        SingleHopEnv::reseed(self, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seed: u64) -> SingleHopEnv {
        SingleHopEnv::new(EnvConfig::paper_default(), seed).unwrap()
    }

    #[test]
    fn dimensions_match_table1() {
        let e = env(0);
        assert_eq!(e.n_agents(), 4);
        assert_eq!(e.obs_dim(), 4); // {q_e(t), q_e(t−1)} ∪ {q_c,1, q_c,2}
        assert_eq!(e.state_dim(), 16);
        assert_eq!(e.n_actions(), 4); // |I × P| = 2 · 2
        assert_eq!(e.episode_limit(), 300);
    }

    #[test]
    fn reset_produces_consistent_shapes() {
        let mut e = env(1);
        let (obs, state) = e.reset();
        assert_eq!(obs.len(), 4);
        assert!(obs.iter().all(|o| o.len() == 4));
        assert_eq!(state.len(), 16);
        let flat: Vec<f64> = obs.concat();
        assert_eq!(flat, state, "state must be the concatenated observations");
    }

    #[test]
    fn observations_are_normalised() {
        let mut e = env(2);
        let (obs, _) = e.reset();
        for o in &obs {
            assert!(o.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        for _ in 0..20 {
            let out = e.step(&[0, 1, 2, 3]).unwrap();
            for o in &out.observations {
                assert!(o.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            if out.done {
                break;
            }
        }
    }

    #[test]
    fn observation_contains_previous_edge_level() {
        let mut e = env(3);
        let (obs0, _) = e.reset();
        let out = e.step(&[0, 0, 0, 0]).unwrap();
        for (n, o) in out.observations.iter().enumerate() {
            // Slot 1 of the new obs must equal slot 0 of the previous obs.
            assert!((o[1] - obs0[n][0]).abs() < 1e-12, "agent {n}");
        }
    }

    #[test]
    fn episode_terminates_at_limit() {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = 20;
        let mut e = SingleHopEnv::new(cfg, 4).unwrap();
        e.reset();
        for t in 1..=20 {
            let out = e.step(&[0, 0, 0, 0]).unwrap();
            assert_eq!(out.done, t == 20);
        }
        assert!(matches!(e.step(&[0, 0, 0, 0]), Err(EnvError::EpisodeOver)));
    }

    #[test]
    fn action_validation() {
        let mut e = env(5);
        e.reset();
        assert!(matches!(
            e.step(&[0, 0]),
            Err(EnvError::WrongAgentCount { .. })
        ));
        assert!(matches!(
            e.step(&[0, 0, 0, 9]),
            Err(EnvError::InvalidAction { .. })
        ));
    }

    #[test]
    fn reward_is_nonpositive() {
        // Eq. (1) only subtracts penalties: r ∈ (−∞, 0].
        let mut e = env(6);
        e.reset();
        for _ in 0..20 {
            let a: Vec<usize> = (0..4).map(|i| i % 4).collect();
            let out = e.step(&a).unwrap();
            assert!(out.reward <= 0.0);
            if out.done {
                break;
            }
        }
    }

    #[test]
    fn overflow_penalty_weighted_by_wr() {
        // Force overflow: start clouds nearly full, dump everything on cloud 0.
        let mut cfg = EnvConfig::paper_default();
        cfg.init_queue = InitQueue::Fixed(1.0);
        cfg.cloud_departure = 0.0;
        let mut e = SingleHopEnv::new(cfg, 7).unwrap();
        e.reset();
        // All four edges send 0.2 to cloud 0 → pre-clip 1.8, overflow 0.8,
        // q̂ = |1 − 1.8| = 0.8, penalty 0.8·4 = 3.2. Cloud 1 gets nothing
        // and stays full (pre-clip 1.0 → q̂ = 0 → no numeric penalty).
        let out = e.step(&[1, 1, 1, 1]).unwrap();
        assert!(out.info.cloud_full.iter().all(|&f| f));
        assert!((out.reward + 3.2).abs() < 1e-9, "reward {}", out.reward);
    }

    #[test]
    fn underflow_penalty_magnitude() {
        let mut cfg = EnvConfig::paper_default();
        cfg.init_queue = InitQueue::Fixed(0.0);
        cfg.cloud_departure = 0.3;
        cfg.w_p = 0.0; // no edge arrivals
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        let mut e = SingleHopEnv::new(cfg, 8).unwrap();
        e.reset();
        // Edges all send 0.1 to cloud 0: cloud 0 pre-clip = 0 − 0.3 + 0.4 = 0.1 (fine);
        // cloud 1 pre-clip = −0.3 → empty, penalty q̃ = 0.3.
        let out = e.step(&[0, 0, 0, 0]).unwrap();
        assert!(out.info.cloud_empty[1]);
        assert!(!out.info.cloud_empty[0]);
        assert!((out.reward + 0.3).abs() < 1e-9, "reward {}", out.reward);
    }

    #[test]
    fn strict_transmission_limits_to_queue_content() {
        let mut cfg = EnvConfig::paper_default();
        cfg.init_queue = InitQueue::Fixed(0.0);
        cfg.strict_transmission = true;
        cfg.cloud_departure = 0.0;
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        let mut e = SingleHopEnv::new(cfg, 9).unwrap();
        e.reset();
        // Edges are empty: nothing reaches the clouds, which stay empty.
        let out = e.step(&[1, 1, 1, 1]).unwrap();
        assert!((e.cloud_levels()[0] - 0.0).abs() < 1e-12);
        assert!(out.info.cloud_empty.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut e = env(seed);
            e.reset();
            let mut trace = Vec::new();
            for t in 0..20 {
                let a = [t % 4, (t + 1) % 4, (t + 2) % 4, (t + 3) % 4];
                let out = e.step(&a).unwrap();
                trace.push(out.reward);
                trace.extend(out.info.queue_levels);
            }
            trace
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn reseed_clears_hidden_arrival_state() {
        // Regression: ON/OFF samplers carry a hidden state bit; reseeding
        // a driven environment must reproduce a freshly seeded one, or
        // lane reuse across rollout waves would diverge from serial
        // collection.
        let mut cfg = EnvConfig::paper_default();
        cfg.arrival = ArrivalProcess::OnOff {
            p_on: 0.9,
            p_off: 0.05,
            volume: 0.3,
        };
        cfg.episode_limit = 30;
        let mut driven = SingleHopEnv::new(cfg.clone(), 0).unwrap();
        driven.reset();
        for _ in 0..30 {
            driven.step(&[0, 1, 2, 3]).unwrap(); // flip samplers ON
        }
        driven.reseed(123);
        driven.reset();
        let mut fresh = SingleHopEnv::new(cfg, 99).unwrap();
        fresh.reseed(123);
        fresh.reset();
        for _ in 0..10 {
            let a = driven.step(&[0, 1, 2, 3]).unwrap();
            let b = fresh.step(&[0, 1, 2, 3]).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_is_balanced_by_design() {
        // Table II constants make mean edge inflow equal total cloud service:
        // N · E[U(0, 0.3)] = 4 · 0.15 = 0.6 = K · 0.3.
        let cfg = EnvConfig::paper_default();
        let total_in =
            cfg.n_edges as f64 * ArrivalProcess::paper_default(cfg.w_p, cfg.q_max).mean();
        let total_out = cfg.n_clouds as f64 * cfg.cloud_departure;
        assert!((total_in - total_out).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        let mut cfg = EnvConfig::paper_default();
        cfg.n_edges = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.q_max = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.init_queue = InitQueue::Uniform(0.8, 0.2);
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.n_clouds = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.packet_amounts = vec![];
        assert!(cfg.validate().is_err());
        let mut cfg = EnvConfig::paper_default();
        cfg.arrival = ArrivalProcess::OnOff {
            p_on: 2.0,
            p_off: 0.1,
            volume: 0.3,
        };
        assert!(cfg.validate().is_err());
        assert!(EnvConfig::paper_default().validate().is_ok());
    }
}
