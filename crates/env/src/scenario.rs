//! The scenario registry: every evaluation environment, constructible by
//! name.
//!
//! The paper evaluates one fixed scenario (Table II). Related work makes
//! the case for sweeping the scenario axis — agent counts (Kölle et al.,
//! arXiv:2311.05546) and environment families (Kruse et al.,
//! arXiv:2312.13798) both change VQC design conclusions — so this module
//! gives every environment variant a stable string name and a uniform
//! boxed constructor. Trainers, benches and sweep binaries program
//! against [`ScenarioEnv`] and never need to know which concrete
//! environment a name resolves to:
//!
//! ```
//! use qmarl_env::prelude::*;
//!
//! for spec in scenarios() {
//!     let mut env = spec.build(42)?;
//!     let (obs, _state) = env.reset();
//!     assert_eq!(obs.len(), env.n_agents());
//! }
//! let env = build_scenario("two-tier", 7)?;
//! assert_eq!(env.n_agents(), 4);
//! # Ok::<(), qmarl_env::error::EnvError>(())
//! ```

use crate::error::EnvError;
use crate::multi_agent::{MultiAgentEnv, StepOutcome};
use crate::multi_hop::{MultiHopConfig, MultiHopEnv};
use crate::single_hop::{EnvConfig, SingleHopEnv};
use crate::traffic::ArrivalProcess;
use crate::vector::SeedableEnv;

/// An environment usable through the registry: steppable, reseedable and
/// deep-cloneable behind a trait object, so one `Box<dyn ScenarioEnv>`
/// drops into every serial, parallel and vectorized engine.
pub trait ScenarioEnv: MultiAgentEnv + Send + Sync + std::fmt::Debug {
    /// Makes this instance's future stream fully determined by `seed`
    /// (also resets the episode).
    fn reseed_env(&mut self, seed: u64);
    /// A boxed deep copy (how rollout lanes get private environments).
    fn clone_boxed(&self) -> Box<dyn ScenarioEnv>;
}

impl<E> ScenarioEnv for E
where
    E: MultiAgentEnv + SeedableEnv + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    fn reseed_env(&mut self, seed: u64) {
        self.reseed(seed);
    }

    fn clone_boxed(&self) -> Box<dyn ScenarioEnv> {
        Box::new(self.clone())
    }
}

impl MultiAgentEnv for Box<dyn ScenarioEnv> {
    fn n_agents(&self) -> usize {
        (**self).n_agents()
    }
    fn obs_dim(&self) -> usize {
        (**self).obs_dim()
    }
    fn state_dim(&self) -> usize {
        (**self).state_dim()
    }
    fn n_actions(&self) -> usize {
        (**self).n_actions()
    }
    fn episode_limit(&self) -> usize {
        (**self).episode_limit()
    }
    fn reset(&mut self) -> (Vec<Vec<f64>>, Vec<f64>) {
        (**self).reset()
    }
    fn step(&mut self, actions: &[usize]) -> Result<StepOutcome, EnvError> {
        (**self).step(actions)
    }
}

impl SeedableEnv for Box<dyn ScenarioEnv> {
    fn reseed(&mut self, seed: u64) {
        (**self).reseed_env(seed);
    }
}

impl Clone for Box<dyn ScenarioEnv> {
    fn clone(&self) -> Self {
        (**self).clone_boxed()
    }
}

/// Construction knobs shared by every scenario builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScenarioParams {
    /// Deterministic environment seed.
    pub seed: u64,
    /// Overrides the scenario's episode length (tests and benches trim
    /// the paper's `T = 300`).
    pub episode_limit: Option<usize>,
}

impl ScenarioParams {
    /// Params with the given seed and the scenario's native horizon.
    pub fn seeded(seed: u64) -> Self {
        ScenarioParams {
            seed,
            episode_limit: None,
        }
    }

    /// Overrides the episode length.
    pub fn with_episode_limit(mut self, limit: usize) -> Self {
        self.episode_limit = Some(limit);
        self
    }
}

/// One registered scenario: a stable name, its provenance, and a boxed
/// builder.
pub struct ScenarioSpec {
    name: &'static str,
    summary: &'static str,
    provenance: &'static str,
    build: fn(&ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError>,
}

impl ScenarioSpec {
    /// The registry key (also the CLI/config spelling).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Where the scenario comes from (paper section or extension source).
    pub fn provenance(&self) -> &'static str {
        self.provenance
    }

    /// Builds the environment with a seed and the native horizon.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn build(&self, seed: u64) -> Result<Box<dyn ScenarioEnv>, EnvError> {
        (self.build)(&ScenarioParams::seeded(seed))
    }

    /// Builds the environment with explicit [`ScenarioParams`].
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn build_with(&self, params: &ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError> {
        (self.build)(params)
    }
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .field("provenance", &self.provenance)
            .finish()
    }
}

fn build_single_hop(params: &ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    let mut cfg = EnvConfig::paper_default();
    if let Some(t) = params.episode_limit {
        cfg.episode_limit = t;
    }
    Ok(Box::new(SingleHopEnv::new(cfg, params.seed)?))
}

fn build_single_hop_bursty(params: &ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    let mut cfg = EnvConfig::paper_default();
    // ON/OFF (two-state MMPP) arrivals with the same long-run mean as the
    // paper's uniform law: stationary P(ON) = 1/2, volume 0.3 → 0.15 per
    // edge per slot, but delivered in long bursts (mean sojourn 20 slots).
    cfg.arrival = ArrivalProcess::OnOff {
        p_on: 0.05,
        p_off: 0.05,
        volume: 0.3,
    };
    if let Some(t) = params.episode_limit {
        cfg.episode_limit = t;
    }
    Ok(Box::new(SingleHopEnv::new(cfg, params.seed)?))
}

fn build_single_hop_wide(params: &ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    let mut cfg = EnvConfig::paper_default();
    // Double both tiers (N = 8 edges, K = 4 clouds): mean inflow
    // 8 · 0.15 = 1.2 still equals total service 4 · 0.3, so the balance
    // property of Table II is preserved at twice the scale.
    cfg.n_edges = 8;
    cfg.n_clouds = 4;
    if let Some(t) = params.episode_limit {
        cfg.episode_limit = t;
    }
    Ok(Box::new(SingleHopEnv::new(cfg, params.seed)?))
}

fn build_two_tier(params: &ScenarioParams) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    let mut cfg = MultiHopConfig::two_tier_default();
    if let Some(t) = params.episode_limit {
        cfg.episode_limit = t;
    }
    Ok(Box::new(MultiHopEnv::new(cfg, params.seed)?))
}

/// The registry table (stable, alphabetical-ish: the paper scenario
/// first, extensions after).
static SCENARIOS: [ScenarioSpec; 4] = [
    ScenarioSpec {
        name: "single-hop",
        summary: "N=4 edges offload into K=2 clouds, uniform arrivals (the paper's scenario)",
        provenance: "Sec. IV-A / Tables I-II of the reproduced paper",
        build: build_single_hop,
    },
    ScenarioSpec {
        name: "single-hop-bursty",
        summary: "paper scenario under two-state ON/OFF (bursty) arrivals, same long-run load",
        provenance: "traffic extension; env sensitivity per Kruse et al. (arXiv:2312.13798)",
        build: build_single_hop_bursty,
    },
    ScenarioSpec {
        name: "single-hop-wide",
        summary: "N=8 edges / K=4 clouds — the paper scenario at twice the scale",
        provenance: "agent-count scaling axis per Koelle et al. (arXiv:2311.05546)",
        build: build_single_hop_wide,
    },
    ScenarioSpec {
        name: "two-tier",
        summary: "multi-hop: edges feed M=2 heterogeneous-rate aggregators wired to K=2 clouds",
        provenance: "multi-hop extension of Sec. IV-A (heterogeneous mid-tier service)",
        build: build_two_tier,
    },
];

/// Every registered scenario.
pub fn scenarios() -> &'static [ScenarioSpec] {
    &SCENARIOS
}

/// Looks a scenario up by name.
pub fn find_scenario(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Builds a scenario by name with the native horizon.
///
/// # Errors
///
/// Returns [`EnvError::InvalidConfig`] for an unknown name, else
/// propagates the builder's error.
pub fn build_scenario(name: &str, seed: u64) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    build_scenario_with(name, &ScenarioParams::seeded(seed))
}

/// Builds a scenario by name with explicit [`ScenarioParams`].
///
/// # Errors
///
/// Returns [`EnvError::InvalidConfig`] for an unknown name, else
/// propagates the builder's error.
pub fn build_scenario_with(
    name: &str,
    params: &ScenarioParams,
) -> Result<Box<dyn ScenarioEnv>, EnvError> {
    let spec = find_scenario(name).ok_or_else(|| {
        EnvError::InvalidConfig(format!(
            "unknown scenario {name:?}; registered: {}",
            SCENARIOS
                .iter()
                .map(ScenarioSpec::name)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    spec.build_with(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_agent::rollout_episode;

    #[test]
    fn registry_has_paper_scenario_plus_extensions() {
        assert!(scenarios().len() >= 3);
        assert!(find_scenario("single-hop").is_some());
        let names: Vec<_> = scenarios().iter().map(ScenarioSpec::name).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "names must be unique");
    }

    #[test]
    fn every_scenario_builds_and_rolls_out() {
        for spec in scenarios() {
            let params = ScenarioParams::seeded(3).with_episode_limit(7);
            let mut env = spec
                .build_with(&params)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert_eq!(env.episode_limit(), 7, "{}", spec.name());
            assert!(env.n_agents() > 0 && env.n_actions() > 0);
            let m = rollout_episode(&mut env, |obs| vec![0; obs.len()]).unwrap();
            assert_eq!(m.len, 7);
            assert!(m.total_reward <= 0.0);
            assert!(!spec.summary().is_empty() && !spec.provenance().is_empty());
        }
    }

    #[test]
    fn boxed_envs_clone_and_reseed_deterministically() {
        let mut a = build_scenario("single-hop-bursty", 9).unwrap();
        let mut b = a.clone();
        a.reseed(5);
        b.reseed(5);
        a.reset();
        b.reset();
        let oa = a.step(&[0, 1, 2, 3]).unwrap();
        let ob = b.step(&[0, 1, 2, 3]).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn unknown_scenario_is_a_typed_error() {
        let err = build_scenario("no-such-scenario", 0).unwrap_err();
        assert!(matches!(err, EnvError::InvalidConfig(_)));
        assert!(err.to_string().contains("single-hop"));
    }

    #[test]
    fn two_tier_differs_from_single_hop_shapes() {
        let single = build_scenario("single-hop", 0).unwrap();
        let two = build_scenario("two-tier", 0).unwrap();
        assert_eq!(single.obs_dim(), 4);
        assert_eq!(two.obs_dim(), 6);
        let wide = build_scenario("single-hop-wide", 0).unwrap();
        assert_eq!(wide.n_agents(), 8);
        assert_eq!(wide.n_actions(), 8);
    }
}
