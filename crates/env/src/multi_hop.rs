//! A two-tier (multi-hop) offloading environment beyond the paper.
//!
//! The paper's evaluation (Sec. IV-A) is single-hop: edges offload
//! straight into the service tier. Real edge networks interpose an
//! aggregation tier — regional gateways with *heterogeneous* service
//! rates — and related work shows VQC design conclusions shift across
//! environments (Kruse et al., arXiv:2312.13798), so the scenario axis
//! matters. This module adds that second hop while keeping every
//! interface of the single-hop MDP:
//!
//! ```text
//! edge 0 ─┐                       ┌─ aggregator 0 ──▶ cloud 0
//! edge 1 ─┤  choose aggregator +  │    (rate μ_0)      (rate c)
//! edge 2 ─┤  packet amount u^n_t ─┤
//! edge 3 ─┘                       └─ aggregator 1 ──▶ cloud 1
//!                                      (rate μ_1)      (rate c)
//! ```
//!
//! * **Action** `u^n_t ∈ M × P`: destination *aggregator* × packet amount.
//! * **Aggregator `m`** drains a constant `forward_rates[m]` per slot into
//!   cloud `m mod K` (heterogeneous mid-tier service).
//! * **Observation** `o^n_t = {q^e_n(t), q^e_n(t−1)} ∪ {q^agg_m(t)}_m ∪
//!   {q^c_k(t)}_k`, all normalised by `q_max`; the global state is the
//!   concatenation, as in Table I.
//! * **Reward** generalises eq. (1) to every *service-tier* queue
//!   (aggregators and clouds): an underflow costs its pre-clip magnitude
//!   `q̃`, an overflow costs `w_R · q̂` — idle capacity and dropped packets
//!   are bad at either hop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::action::ActionSpace;
use crate::error::EnvError;
use crate::multi_agent::{MultiAgentEnv, StepInfo, StepOutcome};
use crate::queue::Queue;
use crate::single_hop::InitQueue;
use crate::traffic::{ArrivalProcess, ArrivalSampler};
use crate::vector::SeedableEnv;

/// Configuration of the two-tier offloading environment.
/// [`MultiHopConfig::two_tier_default`] is the registry's calibrated
/// baseline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiHopConfig {
    /// Number of edge agents `N`.
    pub n_edges: usize,
    /// Number of mid-tier aggregators `M` (the action's destination set).
    pub n_aggregators: usize,
    /// Number of clouds `K`; aggregator `m` feeds cloud `m mod K`.
    pub n_clouds: usize,
    /// Queue capacity `q_max` (shared by every tier).
    pub q_max: f64,
    /// Overflow penalty weight `w_R`.
    pub w_r: f64,
    /// Per-aggregator constant forwarding volume per slot (heterogeneous
    /// mid-tier service rates; length `n_aggregators`).
    pub forward_rates: Vec<f64>,
    /// Constant cloud service (departure) volume per slot.
    pub cloud_departure: f64,
    /// The packet-amount set `P`.
    pub packet_amounts: Vec<f64>,
    /// Episode length `T`.
    pub episode_limit: usize,
    /// Queue initialisation at reset (every tier).
    pub init_queue: InitQueue,
    /// When `true`, an edge can only transmit what its queue holds.
    pub strict_transmission: bool,
    /// When `true`, an aggregator can only forward what it holds (the
    /// literal-dynamics default `false` forwards the nominal rate, like
    /// the paper's edge transmissions).
    pub strict_forwarding: bool,
    /// Edge arrival process.
    pub arrival: ArrivalProcess,
}

impl MultiHopConfig {
    /// The calibrated two-tier baseline: the paper's Table II constants
    /// with `M = 2` aggregators at heterogeneous rates `{0.2, 0.4}`, whose
    /// total (0.6) matches both the mean edge inflow `N · w_P q_max / 2`
    /// and the total cloud service `K · 0.3` — so the load is balanced by
    /// design, like the paper's scenario.
    pub fn two_tier_default() -> Self {
        MultiHopConfig {
            n_edges: 4,
            n_aggregators: 2,
            n_clouds: 2,
            q_max: 1.0,
            w_r: 4.0,
            forward_rates: vec![0.2, 0.4],
            cloud_departure: 0.3,
            packet_amounts: vec![0.1, 0.2],
            episode_limit: 300,
            init_queue: InitQueue::Uniform(0.3, 0.7),
            strict_transmission: false,
            strict_forwarding: false,
            arrival: ArrivalProcess::Uniform { max: 0.3 },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), EnvError> {
        if self.n_edges == 0 {
            return Err(EnvError::InvalidConfig("need at least one edge".into()));
        }
        if self.n_aggregators == 0 {
            return Err(EnvError::InvalidConfig(
                "need at least one aggregator".into(),
            ));
        }
        if self.n_clouds == 0 {
            return Err(EnvError::InvalidConfig("need at least one cloud".into()));
        }
        if self.q_max <= 0.0 || !self.q_max.is_finite() {
            return Err(EnvError::InvalidConfig("q_max must be positive".into()));
        }
        if self.w_r < 0.0 || !self.w_r.is_finite() {
            return Err(EnvError::InvalidConfig("w_R must be non-negative".into()));
        }
        if self.forward_rates.len() != self.n_aggregators {
            return Err(EnvError::InvalidConfig(format!(
                "{} aggregators need {} forward rates, got {}",
                self.n_aggregators,
                self.n_aggregators,
                self.forward_rates.len()
            )));
        }
        if self
            .forward_rates
            .iter()
            .any(|&r| r < 0.0 || !r.is_finite())
        {
            return Err(EnvError::InvalidConfig(
                "forward rates must be non-negative".into(),
            ));
        }
        if self.cloud_departure < 0.0 || !self.cloud_departure.is_finite() {
            return Err(EnvError::InvalidConfig(
                "cloud departure must be non-negative".into(),
            ));
        }
        if self.episode_limit == 0 {
            return Err(EnvError::InvalidConfig(
                "episode limit must be positive".into(),
            ));
        }
        match self.init_queue {
            InitQueue::Fixed(f) if !(0.0..=1.0).contains(&f) => {
                return Err(EnvError::InvalidConfig(
                    "fixed init fraction outside [0, 1]".into(),
                ))
            }
            InitQueue::Uniform(lo, hi)
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi =>
            {
                return Err(EnvError::InvalidConfig("uniform init range invalid".into()))
            }
            _ => {}
        }
        ActionSpace::new(self.n_aggregators, self.packet_amounts.clone())?;
        self.arrival.validate()?;
        Ok(())
    }

    /// Per-agent observation dimension: `2 + M + K`.
    pub fn obs_dim(&self) -> usize {
        2 + self.n_aggregators + self.n_clouds
    }

    /// Global state dimension: `N · (2 + M + K)`.
    pub fn state_dim(&self) -> usize {
        self.n_edges * self.obs_dim()
    }
}

impl Default for MultiHopConfig {
    fn default() -> Self {
        MultiHopConfig::two_tier_default()
    }
}

/// The two-tier offloading environment (see the module docs for the MDP).
#[derive(Debug, Clone)]
pub struct MultiHopEnv {
    config: MultiHopConfig,
    actions: ActionSpace,
    rng: StdRng,
    edge_queues: Vec<Queue>,
    prev_edge_levels: Vec<f64>,
    agg_queues: Vec<Queue>,
    cloud_queues: Vec<Queue>,
    arrivals: Vec<ArrivalSampler>,
    t: usize,
    done: bool,
}

impl MultiHopEnv {
    /// Builds the environment with a deterministic RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: MultiHopConfig, seed: u64) -> Result<Self, EnvError> {
        config.validate()?;
        let actions = ActionSpace::new(config.n_aggregators, config.packet_amounts.clone())?;
        let arrivals = (0..config.n_edges)
            .map(|_| ArrivalSampler::new(config.arrival))
            .collect();
        let mut env = MultiHopEnv {
            edge_queues: vec![Queue::new(0.0, config.q_max); config.n_edges],
            prev_edge_levels: vec![0.0; config.n_edges],
            agg_queues: vec![Queue::new(0.0, config.q_max); config.n_aggregators],
            cloud_queues: vec![Queue::new(0.0, config.q_max); config.n_clouds],
            arrivals,
            rng: StdRng::seed_from_u64(seed),
            actions,
            config,
            t: 0,
            done: true,
        };
        env.reset_internal();
        Ok(env)
    }

    /// The configuration in force.
    pub fn config(&self) -> &MultiHopConfig {
        &self.config
    }

    /// The action space (`M × P`).
    pub fn action_space(&self) -> &ActionSpace {
        &self.actions
    }

    /// Current aggregator queue levels (diagnostic).
    pub fn aggregator_levels(&self) -> Vec<f64> {
        self.agg_queues.iter().map(Queue::level).collect()
    }

    /// Current cloud queue levels (diagnostic).
    pub fn cloud_levels(&self) -> Vec<f64> {
        self.cloud_queues.iter().map(Queue::level).collect()
    }

    fn init_level(&mut self) -> f64 {
        use rand::Rng;
        let q_max = self.config.q_max;
        match self.config.init_queue {
            InitQueue::Fixed(f) => f * q_max,
            InitQueue::Uniform(lo, hi) => {
                if lo == hi {
                    lo * q_max
                } else {
                    self.rng.gen_range(lo..hi) * q_max
                }
            }
        }
    }

    fn reset_internal(&mut self) {
        for i in 0..self.config.n_edges {
            let lvl = self.init_level();
            self.edge_queues[i].set_level(lvl);
            self.prev_edge_levels[i] = lvl;
        }
        for m in 0..self.config.n_aggregators {
            let lvl = self.init_level();
            self.agg_queues[m].set_level(lvl);
        }
        for k in 0..self.config.n_clouds {
            let lvl = self.init_level();
            self.cloud_queues[k].set_level(lvl);
        }
        self.t = 0;
        self.done = false;
    }

    fn observation(&self, n: usize) -> Vec<f64> {
        let q_max = self.config.q_max;
        let mut o = Vec::with_capacity(self.config.obs_dim());
        o.push(self.edge_queues[n].level() / q_max);
        o.push(self.prev_edge_levels[n] / q_max);
        for a in &self.agg_queues {
            o.push(a.level() / q_max);
        }
        for c in &self.cloud_queues {
            o.push(c.level() / q_max);
        }
        o
    }

    fn observations(&self) -> Vec<Vec<f64>> {
        (0..self.config.n_edges)
            .map(|n| self.observation(n))
            .collect()
    }

    fn global_state(&self) -> Vec<f64> {
        let mut s = Vec::with_capacity(self.config.state_dim());
        for n in 0..self.config.n_edges {
            s.extend(self.observation(n));
        }
        s
    }

    /// Applies the eq. (1) penalty to one service-tier queue transition,
    /// returning `(penalty, hit_empty, hit_full)`. The transition already
    /// carries the exact magnitudes: when a queue hits empty its `q̃`
    /// (pre-clip magnitude) *is* the underflow, and when it hits capacity
    /// its `q̂ = |q_max − q̃|` *is* the overflow.
    fn service_penalty(&self, tr: crate::queue::QueueTransition) -> (f64, bool, bool) {
        let mut penalty = 0.0;
        if tr.is_empty {
            penalty -= tr.underflow;
        }
        if tr.is_full {
            penalty -= tr.overflow * self.config.w_r;
        }
        (penalty, tr.is_empty, tr.is_full)
    }
}

impl MultiAgentEnv for MultiHopEnv {
    fn n_agents(&self) -> usize {
        self.config.n_edges
    }

    fn obs_dim(&self) -> usize {
        self.config.obs_dim()
    }

    fn state_dim(&self) -> usize {
        self.config.state_dim()
    }

    fn n_actions(&self) -> usize {
        self.actions.len()
    }

    fn episode_limit(&self) -> usize {
        self.config.episode_limit
    }

    fn reset(&mut self) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.reset_internal();
        (self.observations(), self.global_state())
    }

    fn step(&mut self, actions: &[usize]) -> Result<StepOutcome, EnvError> {
        if self.done {
            return Err(EnvError::EpisodeOver);
        }
        if actions.len() != self.config.n_edges {
            return Err(EnvError::WrongAgentCount {
                expected: self.config.n_edges,
                actual: actions.len(),
            });
        }
        let decoded: Vec<_> = actions
            .iter()
            .map(|&a| self.actions.decode(a))
            .collect::<Result<_, _>>()?;

        // 1. Edge transmissions into the chosen aggregators.
        let mut agg_arrivals = vec![0.0; self.config.n_aggregators];
        let mut edge_departures = vec![0.0; self.config.n_edges];
        for (n, act) in decoded.iter().enumerate() {
            let volume = if self.config.strict_transmission {
                act.amount.min(self.edge_queues[n].level())
            } else {
                act.amount
            };
            agg_arrivals[act.destination] += volume;
            edge_departures[n] = act.amount;
        }

        // 2. Edge queue updates with fresh exogenous arrivals.
        #[allow(clippy::needless_range_loop)] // n indexes parallel arrays
        for n in 0..self.config.n_edges {
            self.prev_edge_levels[n] = self.edge_queues[n].level();
            let b = self.arrivals[n].sample(&mut self.rng);
            self.edge_queues[n].step(edge_departures[n], b);
        }

        // 3. Aggregator updates: drain the heterogeneous forward rate into
        //    the wired cloud, collect the service-tier penalties.
        let mut reward = 0.0;
        let n_service = self.config.n_aggregators + self.config.n_clouds;
        let mut service_empty = vec![false; n_service];
        let mut service_full = vec![false; n_service];
        let mut cloud_arrivals = vec![0.0; self.config.n_clouds];
        for m in 0..self.config.n_aggregators {
            let rate = self.config.forward_rates[m];
            let forwarded = if self.config.strict_forwarding {
                rate.min(self.agg_queues[m].level())
            } else {
                rate
            };
            cloud_arrivals[m % self.config.n_clouds] += forwarded;
            // The queue drains by what actually left it: under strict
            // forwarding that is `forwarded` (packets are conserved and no
            // phantom underflow is booked); in the literal-dynamics mode
            // `forwarded == rate`, matching the paper's edge convention.
            let tr = self.agg_queues[m].step(forwarded, agg_arrivals[m]);
            let (penalty, empty, full) = self.service_penalty(tr);
            reward += penalty;
            service_empty[m] = empty;
            service_full[m] = full;
        }

        // 4. Cloud updates + their eq. (1) penalties.
        for k in 0..self.config.n_clouds {
            let tr = self.cloud_queues[k].step(self.config.cloud_departure, cloud_arrivals[k]);
            let (penalty, empty, full) = self.service_penalty(tr);
            reward += penalty;
            service_empty[self.config.n_aggregators + k] = empty;
            service_full[self.config.n_aggregators + k] = full;
        }

        self.t += 1;
        if self.t >= self.config.episode_limit {
            self.done = true;
        }

        let mut queue_levels: Vec<f64> = self.edge_queues.iter().map(Queue::level).collect();
        queue_levels.extend(self.aggregator_levels());
        queue_levels.extend(self.cloud_levels());
        Ok(StepOutcome {
            observations: self.observations(),
            state: self.global_state(),
            reward,
            done: self.done,
            info: StepInfo {
                queue_levels,
                // "Cloud" events cover the whole service tier here:
                // aggregators first, then clouds.
                cloud_empty: service_empty,
                cloud_full: service_full,
            },
        })
    }
}

impl SeedableEnv for MultiHopEnv {
    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        for sampler in &mut self.arrivals {
            sampler.reset();
        }
        self.reset_internal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seed: u64) -> MultiHopEnv {
        MultiHopEnv::new(MultiHopConfig::two_tier_default(), seed).unwrap()
    }

    #[test]
    fn dimensions_match_two_tier_layout() {
        let e = env(0);
        assert_eq!(e.n_agents(), 4);
        assert_eq!(e.obs_dim(), 6); // {q_e(t), q_e(t−1)} ∪ {agg × 2} ∪ {cloud × 2}
        assert_eq!(e.state_dim(), 24);
        assert_eq!(e.n_actions(), 4); // |M × P| = 2 · 2
        assert_eq!(e.episode_limit(), 300);
    }

    #[test]
    fn state_is_concatenated_observations() {
        let mut e = env(1);
        let (obs, state) = e.reset();
        assert_eq!(obs.concat(), state);
        let out = e.step(&[0, 1, 2, 3]).unwrap();
        assert_eq!(out.observations.concat(), out.state);
        assert_eq!(out.info.queue_levels.len(), 4 + 2 + 2);
        assert_eq!(out.info.cloud_empty.len(), 4); // 2 aggregators + 2 clouds
    }

    #[test]
    fn load_is_balanced_by_design() {
        let cfg = MultiHopConfig::two_tier_default();
        let inflow = cfg.n_edges as f64 * cfg.arrival.mean();
        let mid: f64 = cfg.forward_rates.iter().sum();
        let out = cfg.n_clouds as f64 * cfg.cloud_departure;
        assert!((inflow - mid).abs() < 1e-12);
        assert!((mid - out).abs() < 1e-12);
    }

    #[test]
    fn reward_is_nonpositive_and_episode_terminates() {
        let mut cfg = MultiHopConfig::two_tier_default();
        cfg.episode_limit = 25;
        let mut e = MultiHopEnv::new(cfg, 3).unwrap();
        e.reset();
        for t in 1..=25 {
            let out = e
                .step(&[t % 4, (t + 1) % 4, (t + 2) % 4, (t + 3) % 4])
                .unwrap();
            assert!(out.reward <= 0.0);
            for o in &out.observations {
                assert!(o.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            assert_eq!(out.done, t == 25);
        }
        assert!(matches!(e.step(&[0; 4]), Err(EnvError::EpisodeOver)));
    }

    #[test]
    fn heterogeneous_rates_drain_differently() {
        // No inflow: both aggregators start equal; the fast one (0.4)
        // must drain below the slow one (0.2) after a step.
        let mut cfg = MultiHopConfig::two_tier_default();
        cfg.init_queue = InitQueue::Fixed(0.8);
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        cfg.packet_amounts = vec![0.05];
        let mut e = MultiHopEnv::new(cfg, 4).unwrap();
        e.reset();
        e.step(&[0, 0, 0, 0]).unwrap();
        let levels = e.aggregator_levels();
        assert!(
            levels[1] < levels[0],
            "fast aggregator must drain faster: {levels:?}"
        );
    }

    #[test]
    fn aggregator_overflow_is_penalised() {
        // Full aggregators, zero service anywhere, everyone dumps the big
        // amount on aggregator 0 → overflow there, w_R-weighted.
        let mut cfg = MultiHopConfig::two_tier_default();
        cfg.init_queue = InitQueue::Fixed(1.0);
        cfg.forward_rates = vec![0.0, 0.0];
        cfg.cloud_departure = 0.0;
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        let mut e = MultiHopEnv::new(cfg, 5).unwrap();
        e.reset();
        // Aggregator 0 pre-clip 1.8 → q̂ = 0.8 → −3.2; every service queue
        // sits exactly at q_max (q̂ = 0 → flagged full, no numeric cost).
        let out = e.step(&[1, 1, 1, 1]).unwrap();
        assert!(out.info.cloud_full.iter().all(|&f| f));
        assert!((out.reward + 3.2).abs() < 1e-9, "reward {}", out.reward);
    }

    #[test]
    fn strict_forwarding_limits_to_aggregator_content() {
        let mut cfg = MultiHopConfig::two_tier_default();
        cfg.init_queue = InitQueue::Fixed(0.0);
        cfg.strict_forwarding = true;
        cfg.cloud_departure = 0.0;
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        cfg.strict_transmission = true;
        let mut e = MultiHopEnv::new(cfg, 6).unwrap();
        e.reset();
        e.step(&[0, 0, 0, 0]).unwrap();
        // Nothing held anywhere → the clouds receive nothing.
        assert!(e.cloud_levels().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn strict_forwarding_conserves_packets_and_books_no_phantom_underflow() {
        // Aggregator 0 holds 0.1 but its rate is 0.2: only 0.1 may leave,
        // the queue must drain exactly to 0, the cloud must receive
        // exactly 0.1, and no underflow penalty may fire (nothing was
        // demanded that the queue could not supply).
        let mut cfg = MultiHopConfig::two_tier_default();
        cfg.init_queue = InitQueue::Fixed(0.1);
        cfg.strict_forwarding = true;
        cfg.forward_rates = vec![0.2, 0.2];
        cfg.cloud_departure = 0.0;
        cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
        cfg.packet_amounts = vec![0.05];
        cfg.strict_transmission = true;
        let mut e = MultiHopEnv::new(cfg, 7).unwrap();
        e.reset();
        // Each edge holds 0.1 and sends 0.05 to aggregator 0, which held
        // 0.1 and forwards min(0.2, 0.1) = 0.1 to cloud 0.
        let out = e.step(&[0, 0, 0, 0]).unwrap();
        let aggs = e.aggregator_levels();
        let clouds = e.cloud_levels();
        // Aggregator 0: 0.1 − 0.1 + 4·0.05 = 0.2; cloud 0: 0.1 + 0.1 = 0.2.
        assert!((aggs[0] - 0.2).abs() < 1e-12, "agg levels {aggs:?}");
        assert!((clouds[0] - 0.2).abs() < 1e-12, "cloud levels {clouds:?}");
        // Aggregator 1 got nothing, held 0.1, forwarded exactly 0.1 → it
        // hits empty with zero underflow magnitude (flag index 1 is the
        // second aggregator in the service-tier flag layout). No numeric
        // penalty anywhere.
        assert!(out.info.cloud_empty[1]);
        assert_eq!(out.reward, 0.0, "no phantom penalties: {}", out.reward);
    }

    #[test]
    fn deterministic_under_seed_and_reseed() {
        let run = |seed: u64| {
            let mut e = env(seed);
            e.reseed(seed);
            e.reset();
            let mut trace = Vec::new();
            for t in 0..20 {
                let a = [t % 4, (t + 1) % 4, (t + 2) % 4, (t + 3) % 4];
                let out = e.step(&a).unwrap();
                trace.push(out.reward);
                trace.extend(out.info.queue_levels);
            }
            trace
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn config_validation_rejects_each_degenerate_axis() {
        let ok = MultiHopConfig::two_tier_default();
        assert!(ok.validate().is_ok());
        let reject = |f: fn(&mut MultiHopConfig)| {
            let mut cfg = MultiHopConfig::two_tier_default();
            f(&mut cfg);
            assert!(
                matches!(cfg.validate(), Err(EnvError::InvalidConfig(_))),
                "expected rejection"
            );
        };
        reject(|c| c.n_edges = 0);
        reject(|c| c.n_aggregators = 0);
        reject(|c| c.n_clouds = 0);
        reject(|c| c.q_max = 0.0);
        reject(|c| c.w_r = -1.0);
        reject(|c| c.forward_rates = vec![0.3]); // wrong length for M = 2
        reject(|c| c.forward_rates = vec![0.3, -0.1]);
        reject(|c| c.cloud_departure = f64::NAN);
        reject(|c| c.episode_limit = 0);
        reject(|c| c.init_queue = InitQueue::Uniform(0.9, 0.1));
        reject(|c| c.packet_amounts = vec![]);
        reject(|c| c.arrival = ArrivalProcess::Uniform { max: -0.2 });
    }
}
