//! Normalized queue dynamics: `q_{t+1} = clip(q_t − u_t + b_t, 0, q_max)`.
//!
//! This is the single equation the paper's environment is built from
//! (Sec. IV-A). Both edge and cloud queues use it; the reward in eq. (1)
//! additionally needs the **pre-clip** value to measure how far a queue
//! under- or overflowed, so [`Queue::step`] reports the full transition.

/// The clipping function of the paper:
/// `clip(x, lo, hi) = min(hi, max(x, lo))`.
#[inline]
pub fn clip(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// A single normalized queue with capacity `q_max`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Queue {
    level: f64,
    q_max: f64,
}

/// Everything eq. (1) needs to know about one queue update.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueueTransition {
    /// The raw `q_t − u_t + b_t` before clipping.
    pub pre_clip: f64,
    /// The clipped next level `q_{t+1}`.
    pub next_level: f64,
    /// Amount the queue would have gone below zero (`≥ 0`).
    pub underflow: f64,
    /// Amount the queue would have exceeded capacity (`≥ 0`).
    pub overflow: f64,
    /// `true` when `q_{t+1} == 0` (the paper's "queue empty" event).
    pub is_empty: bool,
    /// `true` when `q_{t+1} == q_max` (the paper's "overflowed" event).
    pub is_full: bool,
}

impl Queue {
    /// A queue at `level` with capacity `q_max`.
    ///
    /// # Panics
    ///
    /// Panics if `q_max <= 0` or `level` is outside `[0, q_max]`.
    pub fn new(level: f64, q_max: f64) -> Self {
        assert!(q_max > 0.0, "queue capacity must be positive");
        assert!(
            (0.0..=q_max).contains(&level),
            "initial level {level} outside [0, {q_max}]"
        );
        Queue { level, q_max }
    }

    /// Current occupancy.
    #[inline]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Capacity.
    #[inline]
    pub fn q_max(&self) -> f64 {
        self.q_max
    }

    /// Occupancy as a fraction of capacity, in `[0, 1]`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.level / self.q_max
    }

    /// Advances one slot with `departure` (`u_t`) and `arrival` (`b_t`),
    /// returning the full transition record.
    pub fn step(&mut self, departure: f64, arrival: f64) -> QueueTransition {
        let pre_clip = self.level - departure + arrival;
        let next_level = clip(pre_clip, 0.0, self.q_max);
        let t = QueueTransition {
            pre_clip,
            next_level,
            underflow: (-pre_clip).max(0.0),
            overflow: (pre_clip - self.q_max).max(0.0),
            is_empty: next_level <= 0.0,
            is_full: next_level >= self.q_max,
        };
        self.level = next_level;
        t
    }

    /// Sets the level directly (used by `reset`).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, q_max]`.
    pub fn set_level(&mut self, level: f64) {
        assert!(
            (0.0..=self.q_max).contains(&level),
            "level {level} outside [0, {}]",
            self.q_max
        );
        self.level = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_matches_paper_definition() {
        assert_eq!(clip(-0.5, 0.0, 1.0), 0.0);
        assert_eq!(clip(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clip(1.5, 0.0, 1.0), 1.0);
        assert_eq!(clip(0.0, 0.0, 1.0), 0.0);
        assert_eq!(clip(1.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn normal_update_no_events() {
        let mut q = Queue::new(0.5, 1.0);
        let t = q.step(0.2, 0.1);
        assert!((t.next_level - 0.4).abs() < 1e-12);
        assert_eq!(t.underflow, 0.0);
        assert_eq!(t.overflow, 0.0);
        assert!(!t.is_empty && !t.is_full);
        assert!((q.level() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn underflow_clamps_and_reports() {
        let mut q = Queue::new(0.1, 1.0);
        let t = q.step(0.5, 0.0);
        assert_eq!(t.next_level, 0.0);
        assert!((t.underflow - 0.4).abs() < 1e-12);
        assert!(t.is_empty);
        assert!((t.pre_clip + 0.4).abs() < 1e-12);
    }

    #[test]
    fn overflow_clamps_and_reports() {
        let mut q = Queue::new(0.9, 1.0);
        let t = q.step(0.0, 0.5);
        assert_eq!(t.next_level, 1.0);
        assert!((t.overflow - 0.4).abs() < 1e-12);
        assert!(t.is_full);
    }

    #[test]
    fn exact_boundaries_count_as_events() {
        let mut q = Queue::new(0.3, 1.0);
        let t = q.step(0.3, 0.0);
        assert!(t.is_empty);
        assert_eq!(t.underflow, 0.0);
        let mut q = Queue::new(0.5, 1.0);
        let t = q.step(0.0, 0.5);
        assert!(t.is_full);
        assert_eq!(t.overflow, 0.0);
    }

    #[test]
    fn utilization_normalises_by_capacity() {
        let q = Queue::new(1.0, 2.0);
        assert!((q.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Queue::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_initial_level_rejected() {
        let _ = Queue::new(1.5, 1.0);
    }

    #[test]
    fn set_level_validates() {
        let mut q = Queue::new(0.0, 1.0);
        q.set_level(0.7);
        assert_eq!(q.level(), 0.7);
    }
}
