//! The joint action space `A = I × P` of Table I.
//!
//! Each edge agent picks a **destination cloud** `k ∈ {1, …, K}` and a
//! **packet amount** `p ∈ P = {p_min, …, p_max}` (Table II:
//! `P = {0.1, 0.2}`). Policies emit a flat action index; this module maps
//! between the flat index and the `(destination, amount)` pair.

use crate::error::EnvError;

/// A decoded edge action: where to offload and how much.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EdgeAction {
    /// Destination cloud index in `0..n_clouds`.
    pub destination: usize,
    /// Offloaded packet volume.
    pub amount: f64,
}

/// The discrete action space `I × P`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActionSpace {
    n_clouds: usize,
    amounts: Vec<f64>,
}

impl ActionSpace {
    /// Builds the space from the cloud count and the packet-amount set.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidConfig`] if either dimension is empty or
    /// an amount is non-positive.
    pub fn new(n_clouds: usize, amounts: Vec<f64>) -> Result<Self, EnvError> {
        if n_clouds == 0 {
            return Err(EnvError::InvalidConfig("need at least one cloud".into()));
        }
        if amounts.is_empty() {
            return Err(EnvError::InvalidConfig(
                "need at least one packet amount".into(),
            ));
        }
        if amounts.iter().any(|&a| a <= 0.0 || !a.is_finite()) {
            return Err(EnvError::InvalidConfig(
                "packet amounts must be positive".into(),
            ));
        }
        Ok(ActionSpace { n_clouds, amounts })
    }

    /// The paper's action space: K = 2 clouds, P = {0.1, 0.2}.
    pub fn paper_default() -> Self {
        ActionSpace::new(2, vec![0.1, 0.2]).expect("paper constants are valid")
    }

    /// Number of flat actions `|I| · |P|`.
    pub fn len(&self) -> usize {
        self.n_clouds * self.amounts.len()
    }

    /// `false` by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of destination clouds.
    pub fn n_clouds(&self) -> usize {
        self.n_clouds
    }

    /// The packet-amount set `P`.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Decodes a flat index: `index = destination · |P| + amount_idx`.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidAction`] when out of range.
    pub fn decode(&self, index: usize) -> Result<EdgeAction, EnvError> {
        if index >= self.len() {
            return Err(EnvError::InvalidAction {
                index,
                n_actions: self.len(),
            });
        }
        Ok(EdgeAction {
            destination: index / self.amounts.len(),
            amount: self.amounts[index % self.amounts.len()],
        })
    }

    /// Encodes a `(destination, amount_idx)` pair to a flat index.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidAction`] when either component is out of
    /// range.
    pub fn encode(&self, destination: usize, amount_idx: usize) -> Result<usize, EnvError> {
        if destination >= self.n_clouds || amount_idx >= self.amounts.len() {
            return Err(EnvError::InvalidAction {
                index: destination * self.amounts.len() + amount_idx,
                n_actions: self.len(),
            });
        }
        Ok(destination * self.amounts.len() + amount_idx)
    }

    /// Iterates over every decoded action in flat-index order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeAction> + '_ {
        (0..self.len()).map(|i| self.decode(i).expect("index in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_four_actions() {
        let a = ActionSpace::paper_default();
        assert_eq!(a.len(), 4);
        assert_eq!(a.n_clouds(), 2);
        assert_eq!(a.amounts(), &[0.1, 0.2]);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let a = ActionSpace::paper_default();
        for i in 0..a.len() {
            let act = a.decode(i).unwrap();
            let amount_idx = a.amounts().iter().position(|&x| x == act.amount).unwrap();
            assert_eq!(a.encode(act.destination, amount_idx).unwrap(), i);
        }
    }

    #[test]
    fn decode_layout() {
        let a = ActionSpace::paper_default();
        assert_eq!(
            a.decode(0).unwrap(),
            EdgeAction {
                destination: 0,
                amount: 0.1
            }
        );
        assert_eq!(
            a.decode(1).unwrap(),
            EdgeAction {
                destination: 0,
                amount: 0.2
            }
        );
        assert_eq!(
            a.decode(2).unwrap(),
            EdgeAction {
                destination: 1,
                amount: 0.1
            }
        );
        assert_eq!(
            a.decode(3).unwrap(),
            EdgeAction {
                destination: 1,
                amount: 0.2
            }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let a = ActionSpace::paper_default();
        assert!(a.decode(4).is_err());
        assert!(a.encode(2, 0).is_err());
        assert!(a.encode(0, 2).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ActionSpace::new(0, vec![0.1]).is_err());
        assert!(ActionSpace::new(2, vec![]).is_err());
        assert!(ActionSpace::new(2, vec![-0.1]).is_err());
        assert!(ActionSpace::new(2, vec![f64::NAN]).is_err());
    }

    #[test]
    fn iterator_visits_all() {
        let a = ActionSpace::paper_default();
        assert_eq!(a.iter().count(), 4);
        let total: f64 = a.iter().map(|e| e.amount).sum();
        assert!((total - 0.6).abs() < 1e-12);
    }
}
