//! # qmarl-env — the single-hop offloading environment
//!
//! The evaluation substrate of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443): `N` edge agents
//! offload packets into `K` cloud queues (Sec. IV-A, Table I), with the
//! underflow/overflow penalty of eq. (1) and the Table II constants as
//! defaults. Also provides the arrival processes, metric accumulation for
//! every Fig. 3 panel, the random-walk baseline and the achievability
//! normalisation of Sec. IV-D.
//!
//! ```
//! use qmarl_env::prelude::*;
//!
//! let mut env = SingleHopEnv::new(EnvConfig::paper_default(), 42)?;
//! let (obs, state) = env.reset();
//! assert_eq!(obs.len(), 4);        // N = 4 edge agents
//! assert_eq!(state.len(), 16);     // state = concatenated observations
//! let out = env.step(&[0, 1, 2, 3])?;
//! assert!(out.reward <= 0.0);      // eq. (1) is a pure penalty
//! # Ok::<(), qmarl_env::error::EnvError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod error;
pub mod metrics;
pub mod multi_agent;
pub mod queue;
pub mod random_walk;
pub mod single_hop;
pub mod traffic;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::action::{ActionSpace, EdgeAction};
    pub use crate::error::EnvError;
    pub use crate::metrics::{EpisodeMetrics, MetricsAccumulator, MetricsMean};
    pub use crate::multi_agent::{rollout_episode, MultiAgentEnv, StepInfo, StepOutcome};
    pub use crate::queue::{clip, Queue, QueueTransition};
    pub use crate::random_walk::{achievability, random_walk_baseline};
    pub use crate::single_hop::{EnvConfig, InitQueue, SingleHopEnv};
    pub use crate::traffic::{ArrivalProcess, ArrivalSampler};
}
