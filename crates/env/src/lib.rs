//! # qmarl-env — offloading environments, vectorized stepping, scenarios
//!
//! The evaluation substrate of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443), grown from the
//! paper's single scenario into a scenario *catalog*:
//!
//! * [`single_hop`] — the paper's environment (Sec. IV-A, Table I): `N`
//!   edge agents offload packets into `K` cloud queues with the
//!   underflow/overflow penalty of eq. (1) and Table II defaults.
//! * [`multi_hop`] — a two-tier extension: edges feed heterogeneous-rate
//!   aggregators that forward into the clouds.
//! * [`scenario`] — the registry: every environment variant constructible
//!   by a stable string name behind one boxed [`scenario::ScenarioEnv`]
//!   interface.
//! * [`vector`] — [`vector::VectorEnv`]: a batch of homogeneous episodes
//!   stepped in lockstep with struct-of-arrays buffers, the interface
//!   batched circuit executors feed from; plus the
//!   [`vector::ReplicatedVecEnv`] adapter that lifts any serial
//!   environment into it with bit-exact per-lane trajectories.
//! * [`traffic`], [`queue`], [`metrics`], [`random_walk`] — arrival
//!   processes, the clip-queue primitive, Fig. 3 metric accumulation and
//!   the achievability normalisation of Sec. IV-D.
//!
//! ```
//! use qmarl_env::prelude::*;
//!
//! let mut env = SingleHopEnv::new(EnvConfig::paper_default(), 42)?;
//! let (obs, state) = env.reset();
//! assert_eq!(obs.len(), 4);        // N = 4 edge agents
//! assert_eq!(state.len(), 16);     // state = concatenated observations
//! let out = env.step(&[0, 1, 2, 3])?;
//! assert!(out.reward <= 0.0);      // eq. (1) is a pure penalty
//!
//! // The same scenario as four lockstep lanes behind the vector interface.
//! let mut venv = ReplicatedVecEnv::new(&env, 4)?;
//! let reset = venv.reset_lanes(&[0, 1, 2, 3])?;
//! assert_eq!(reset.observations.len(), 4 * 4 * 4); // lanes × agents × obs
//! # Ok::<(), qmarl_env::error::EnvError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod error;
pub mod metrics;
pub mod multi_agent;
pub mod multi_hop;
pub mod queue;
pub mod random_walk;
pub mod scenario;
pub mod single_hop;
pub mod traffic;
pub mod vector;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::action::{ActionSpace, EdgeAction};
    pub use crate::error::EnvError;
    pub use crate::metrics::{EpisodeMetrics, MetricsAccumulator, MetricsMean};
    pub use crate::multi_agent::{rollout_episode, MultiAgentEnv, StepInfo, StepOutcome};
    pub use crate::multi_hop::{MultiHopConfig, MultiHopEnv};
    pub use crate::queue::{clip, Queue, QueueTransition};
    pub use crate::random_walk::{achievability, random_walk_baseline};
    pub use crate::scenario::{
        build_scenario, build_scenario_with, find_scenario, scenarios, ScenarioEnv, ScenarioParams,
        ScenarioSpec,
    };
    pub use crate::single_hop::{EnvConfig, InitQueue, SingleHopEnv};
    pub use crate::traffic::{ArrivalProcess, ArrivalSampler};
    pub use crate::vector::{ReplicatedVecEnv, SeedableEnv, VecReset, VecStepOutcome, VectorEnv};
}
