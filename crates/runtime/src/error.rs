//! Error type for the batched execution runtime.

use std::error::Error;
use std::fmt;

use qmarl_env::error::EnvError;
use qmarl_qsim::error::QsimError;
use qmarl_vqc::error::VqcError;

/// Errors produced by the runtime's compilation, batching and rollout
/// layers.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A bound input vector had the wrong length for the compiled circuit.
    InputLenMismatch {
        /// Declared input arity.
        expected: usize,
        /// Supplied vector length.
        actual: usize,
    },
    /// A bound parameter vector had the wrong length.
    ParamLenMismatch {
        /// Declared parameter arity.
        expected: usize,
        /// Supplied vector length.
        actual: usize,
    },
    /// A runtime configuration value was invalid.
    InvalidConfig(String),
    /// The VQC layer reported an error.
    Vqc(VqcError),
    /// The simulator reported an error.
    Simulator(QsimError),
    /// The environment reported an error during a rollout.
    Env(EnvError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputLenMismatch { expected, actual } => {
                write!(
                    f,
                    "compiled circuit expects {expected} inputs, got {actual}"
                )
            }
            RuntimeError::ParamLenMismatch { expected, actual } => {
                write!(
                    f,
                    "compiled circuit expects {expected} parameters, got {actual}"
                )
            }
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid runtime configuration: {msg}"),
            RuntimeError::Vqc(e) => write!(f, "vqc error: {e}"),
            RuntimeError::Simulator(e) => write!(f, "simulator error: {e}"),
            RuntimeError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl Error for RuntimeError {}

impl From<VqcError> for RuntimeError {
    fn from(e: VqcError) -> Self {
        RuntimeError::Vqc(e)
    }
}

impl From<QsimError> for RuntimeError {
    fn from(e: QsimError) -> Self {
        RuntimeError::Simulator(e)
    }
}

impl From<EnvError> for RuntimeError {
    fn from(e: EnvError) -> Self {
        RuntimeError::Env(e)
    }
}
