//! The compiled-circuit cache.
//!
//! Actors and critics are built from a handful of circuit *shapes* that
//! thousands of model instances share (every agent's policy has the same
//! encoder + ansatz structure). Compilation is cheap but not free, and a
//! shared cache also means one `Arc<CompiledCircuit>` serves every clone
//! of a model — cloning an actor for a rollout worker no longer copies
//! its schedule.
//!
//! Keying is by [`circuit_hash`] with full structural comparison on
//! lookup, so a hash collision degrades to a recompile, never to wrong
//! execution.
//!
//! The map is a `BTreeMap`, not a `HashMap`: runtime is a deterministic
//! crate, and while nothing here iterates the map today beyond an
//! order-independent `len()` sum, a sorted map makes any future
//! iteration (debug dumps, eviction) order-stable by construction
//! instead of by audit.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use qmarl_vqc::ir::Circuit;

use crate::compile::{circuit_hash, compile, CompiledCircuit};

/// One hash bucket: structurally distinct circuits sharing a hash.
type Bucket = Vec<(Circuit, Arc<CompiledCircuit>)>;

/// A thread-safe cache from circuit structure to compiled schedule.
#[derive(Debug, Default)]
pub struct CircuitCache {
    // Buckets resolve hash collisions by structural equality.
    map: RwLock<BTreeMap<u64, Bucket>>,
}

impl CircuitCache {
    /// An empty cache.
    pub fn new() -> Self {
        CircuitCache::default()
    }

    /// The process-wide cache used by [`crate::qnn::CompiledVqc`].
    pub fn global() -> &'static CircuitCache {
        static GLOBAL: OnceLock<CircuitCache> = OnceLock::new();
        GLOBAL.get_or_init(CircuitCache::new)
    }

    /// Returns the compiled form of `circuit`, compiling at most once per
    /// distinct structure.
    pub fn get_or_compile(&self, circuit: &Circuit) -> Arc<CompiledCircuit> {
        let key = circuit_hash(circuit);
        if let Some(bucket) = self.map.read().expect("cache lock").get(&key) {
            for (stored, compiled) in bucket {
                if stored == circuit {
                    return Arc::clone(compiled);
                }
            }
        }
        let compiled = Arc::new(compile(circuit));
        let mut map = self.map.write().expect("cache lock");
        let bucket = map.entry(key).or_default();
        // Re-check under the write lock: another thread may have won.
        for (stored, cached) in bucket.iter() {
            if stored == circuit {
                return Arc::clone(cached);
            }
        }
        bucket.push((circuit.clone(), Arc::clone(&compiled)));
        compiled
    }

    /// Number of distinct compiled circuits held.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .expect("cache lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// `true` when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached compilation (mainly for tests).
    pub fn clear(&self) {
        self.map.write().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ir::{Angle, ParamId};

    fn circ(n: usize) -> Circuit {
        let mut c = Circuit::new(2);
        for i in 0..n {
            c.rot(i % 2, Ax::Y, Angle::Param(ParamId(i))).unwrap();
        }
        c
    }

    #[test]
    fn caches_by_structure() {
        let cache = CircuitCache::new();
        let a = cache.get_or_compile(&circ(3));
        let b = cache.get_or_compile(&circ(3));
        assert!(Arc::ptr_eq(&a, &b), "equal circuits share one compilation");
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_compile(&circ(4));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_compiles_once_per_shape() {
        let cache = CircuitCache::new();
        let shapes: Vec<Circuit> = (1..5).map(circ).collect();
        let compiled = qmarl_qsim::par::parallel_map(&[(); 16], 8, |i, ()| {
            cache.get_or_compile(&shapes[i % shapes.len()])
        });
        assert_eq!(cache.len(), shapes.len());
        for (i, c) in compiled.iter().enumerate() {
            assert!(Arc::ptr_eq(c, &compiled[i % shapes.len()]));
        }
    }

    #[test]
    fn hits_are_invariant_to_insertion_order() {
        // Two caches fed the same shapes in opposite orders must agree
        // on size and on hit behavior: every lookup is served by the
        // one compilation its own cache made for that shape,
        // independent of where the shape landed in the map.
        let shapes: Vec<Circuit> = (1..6).map(circ).collect();
        let fwd = CircuitCache::new();
        let rev = CircuitCache::new();
        let fwd_first: Vec<_> = shapes.iter().map(|c| fwd.get_or_compile(c)).collect();
        let rev_first: Vec<_> = shapes.iter().rev().map(|c| rev.get_or_compile(c)).collect();
        assert_eq!(fwd.len(), shapes.len());
        assert_eq!(rev.len(), shapes.len());
        for (i, c) in shapes.iter().enumerate() {
            let f = fwd.get_or_compile(c);
            let r = rev.get_or_compile(c);
            assert!(Arc::ptr_eq(&f, &fwd_first[i]), "fwd hit for shape {i}");
            assert!(
                Arc::ptr_eq(&r, &rev_first[shapes.len() - 1 - i]),
                "rev hit for shape {i}"
            );
            // And the compiled schedules are identical across caches.
            assert_eq!(f.n_qubits(), r.n_qubits());
            assert_eq!(f.n_params(), r.n_params());
            assert_eq!(f.hash(), r.hash());
        }
    }

    #[test]
    fn global_cache_is_shared() {
        let a = CircuitCache::global().get_or_compile(&circ(2));
        let b = CircuitCache::global().get_or_compile(&circ(2));
        assert!(Arc::ptr_eq(&a, &b));
    }
}
