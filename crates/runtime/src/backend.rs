//! Execution backends: how a compiled circuit turns into numbers.
//!
//! The paper evaluates VQC policies under NISQ constraints, but an ideal
//! statevector simulator returns *exact* expectation values — the
//! `shots → ∞`, noise-free limit no hardware reaches. This module makes
//! the execution model an explicit, string-constructible axis of the
//! runtime:
//!
//! * [`ExecutionBackend::Ideal`] — the exact statevector path (the
//!   default; bit-identical to running without a backend at all),
//! * [`ExecutionBackend::Sampled`] — the circuit still runs exactly, but
//!   every readout is estimated from `shots` computational-basis samples,
//!   so policies, values and gradients carry `O(1/√shots)` shot noise,
//! * [`ExecutionBackend::Noisy`] — density-matrix execution with a
//!   [`NoiseModel`] channel injected after every gate (the raw, unfused
//!   schedule, so error grows with the *source* gate count exactly as in
//!   `vqc::exec::run_noisy`), optionally with finite-shot readout on top.
//!   Evaluations run on the compiled superoperator path
//!   (`runtime::superop`), verified against the interpreter at 1e-12,
//! * [`ExecutionBackend::Trajectory`] — quantum-trajectory (Kraus-
//!   sampling) execution of the same noise model: `samples` statevector
//!   runs with Pauli errors drawn after every raw-schedule gate, whose
//!   mean readout converges to the density result at `O(1/√samples)`
//!   cost per sample instead of `4^n` density work.
//!
//! # Determinism contract
//!
//! Stochastic backends mirror the rollout engine's seeding discipline:
//! nothing ever draws from a shared mutable RNG. Each evaluation's sample
//! stream is seeded by
//!
//! ```text
//! derive_seed(root_seed, SHOT_STREAM, fingerprint(inputs, params, salt))
//! ```
//!
//! where the fingerprint hashes the evaluation's exact circuit bindings
//! (bit patterns of the bound inputs and parameters, plus a salt
//! distinguishing parameter-shift overrides). The evaluation index is
//! therefore *content-addressed*: it does not depend on batch position,
//! batch size, worker count or thread scheduling, so sampled results are
//! worker-count invariant and identical between the serial and batched
//! execution paths — the same guarantee the rollout engine makes for
//! episodes, extended down to single circuit evaluations.

use std::fmt;
use std::str::FromStr;

use qmarl_qsim::noise::{NoiseChannel, NoiseModel};
use qmarl_vqc::grad::GradMethod;

use crate::error::RuntimeError;
use crate::rollout::derive_seed;

/// Stream tag for shot-sampling randomness (distinct from the rollout
/// engine's ENV/POLICY streams).
pub(crate) const SHOT_STREAM: u64 = 0x53_48_4F_54; // "SHOT"

/// Stream tag for per-trajectory error-sampling randomness: each
/// trajectory of an evaluation draws from
/// `derive_seed(eval_seed, TRAJ_STREAM, sample_index)`, so trajectories
/// are content-addressed exactly like shot streams.
pub(crate) const TRAJ_STREAM: u64 = 0x54_52_41_4A; // "TRAJ"

/// How compiled circuits are executed and read out.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ExecutionBackend {
    /// Exact statevector simulation (the default): fused schedule, exact
    /// expectation values, every gradient method available.
    #[default]
    Ideal,
    /// Exact statevector evolution with **finite-shot readout**: each
    /// expectation is the mean of `shots` sampled `±1` outcomes, seeded
    /// per evaluation from `seed` (see the module docs). Gradients route
    /// through the parameter-shift rule with shot-sampled expectations.
    Sampled {
        /// Samples per readout (must be positive).
        shots: usize,
        /// Root seed of the derived per-evaluation sample streams.
        seed: u64,
    },
    /// Density-matrix execution with a channel injected after every gate
    /// of the **raw** schedule, matching `vqc::exec::run_noisy`. With
    /// `shots`, the diagonal of the final `ρ` is sampled instead of read
    /// exactly — channel noise and shot noise together.
    Noisy {
        /// The per-gate noise model.
        model: NoiseModel,
        /// Optional finite-shot readout on the noisy state.
        shots: Option<usize>,
        /// Root seed of the derived per-evaluation sample streams
        /// (unused when `shots` is `None` — density evolution is exact).
        seed: u64,
    },
    /// Quantum-trajectory execution of a noise model: `samples`
    /// statevector runs of the **raw** schedule, each inserting Pauli
    /// errors drawn from the channel after every gate
    /// ([`NoiseChannel::sample_pauli_error`]), readouts averaged over
    /// trajectories. For Pauli channels (depolarizing, bit/phase flip)
    /// the mean converges to the [`ExecutionBackend::Noisy`] density
    /// result with standard error `O(1/√samples)` — at statevector
    /// instead of density-matrix cost per sample.
    Trajectory {
        /// The per-gate noise model (sampled, not Kraus-evolved).
        model: NoiseModel,
        /// Trajectories per evaluation (must be positive).
        samples: usize,
        /// Root seed of the derived per-evaluation trajectory streams.
        seed: u64,
    },
}

impl ExecutionBackend {
    /// `true` for the exact statevector backend.
    pub fn is_ideal(&self) -> bool {
        matches!(self, ExecutionBackend::Ideal)
    }

    /// Short kind name (`"ideal"` / `"sampled"` / `"noisy"` /
    /// `"trajectory"`), used as the bench/report label.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecutionBackend::Ideal => "ideal",
            ExecutionBackend::Sampled { .. } => "sampled",
            ExecutionBackend::Noisy { .. } => "noisy",
            ExecutionBackend::Trajectory { .. } => "trajectory",
        }
    }

    /// `true` when the adjoint (and the prebound-adjoint) gradient path
    /// is available. Adjoint differentiation needs the exact final
    /// statevector and its reverse sweep, so it exists only on
    /// [`ExecutionBackend::Ideal`]; the stochastic backends differentiate
    /// by the hardware-compatible parameter-shift rule.
    pub fn supports_adjoint(&self) -> bool {
        self.is_ideal()
    }

    /// Routes a requested gradient method by backend capability: `Ideal`
    /// honours the request, `Sampled`/`Noisy` always use
    /// [`GradMethod::ParameterShift`] (the only rule that is exact in
    /// expectation under finite shots and executable on hardware).
    pub fn effective_grad_method(&self, requested: GradMethod) -> GradMethod {
        if self.is_ideal() {
            requested
        } else {
            GradMethod::ParameterShift
        }
    }

    /// Validates the configuration (positive shot counts, channel
    /// strengths in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] on a zero shot budget, or
    /// a simulator error for a bad noise strength.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        match self {
            ExecutionBackend::Ideal => Ok(()),
            ExecutionBackend::Sampled { shots, .. } => {
                if *shots == 0 {
                    return Err(RuntimeError::InvalidConfig(
                        "sampled backend needs a positive shot count".into(),
                    ));
                }
                Ok(())
            }
            ExecutionBackend::Noisy { model, shots, .. } => {
                if shots == &Some(0) {
                    return Err(RuntimeError::InvalidConfig(
                        "noisy backend shot count must be positive when given".into(),
                    ));
                }
                model.validate().map_err(RuntimeError::from)
            }
            ExecutionBackend::Trajectory { model, samples, .. } => {
                if *samples == 0 {
                    return Err(RuntimeError::InvalidConfig(
                        "trajectory backend needs a positive sample count".into(),
                    ));
                }
                model.validate().map_err(RuntimeError::from)
            }
        }
    }

    /// The per-evaluation sample-stream seed for the given circuit
    /// bindings (see the module docs for the contract). `salt`
    /// distinguishes otherwise-identical bindings (the parameter-shift
    /// rule's angle overrides).
    pub(crate) fn eval_seed(root: u64, inputs: &[f64], params: &[f64], salt: u64) -> u64 {
        // FNV-1a over the exact bit patterns: the fingerprint is a pure
        // function of the bindings, so two evaluations of the same
        // circuit instance draw the same stream no matter where or when
        // they run.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bits: u64| {
            for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                h ^= (bits >> shift) & 0xFF;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for x in inputs {
            eat(x.to_bits());
        }
        eat(u64::MAX); // domain separator between inputs and params
        for x in params {
            eat(x.to_bits());
        }
        eat(salt);
        derive_seed(root, SHOT_STREAM, h)
    }
}

impl fmt::Display for ExecutionBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionBackend::Ideal => write!(f, "ideal"),
            ExecutionBackend::Sampled { shots, seed } => {
                write!(f, "sampled:shots={shots}")?;
                if *seed != 0 {
                    write!(f, ":seed={seed}")?;
                }
                Ok(())
            }
            ExecutionBackend::Noisy { model, shots, seed } => {
                write!(f, "noisy")?;
                // Only depolarizing channels have a spec spelling; any
                // other channel is rendered as a key the parser rejects,
                // so a lossy roundtrip fails loudly instead of silently
                // re-parsing to a weaker noise model.
                match model.after_gate1 {
                    Some(NoiseChannel::Depolarizing { p }) => write!(f, ":p1={p}")?,
                    Some(_) => write!(f, ":channel1=custom")?,
                    None => {}
                }
                match model.after_gate2 {
                    Some(NoiseChannel::Depolarizing { p }) => write!(f, ":p2={p}")?,
                    Some(_) => write!(f, ":channel2=custom")?,
                    None => {}
                }
                if let Some(s) = shots {
                    write!(f, ":shots={s}")?;
                }
                if *seed != 0 {
                    write!(f, ":seed={seed}")?;
                }
                Ok(())
            }
            ExecutionBackend::Trajectory {
                model,
                samples,
                seed,
            } => {
                write!(f, "trajectory")?;
                // Same lossy-roundtrip-fails-loudly rule as `noisy`:
                // only depolarizing channels have a spec spelling.
                match model.after_gate1 {
                    Some(NoiseChannel::Depolarizing { p }) => write!(f, ":p1={p}")?,
                    Some(_) => write!(f, ":channel1=custom")?,
                    None => {}
                }
                match model.after_gate2 {
                    Some(NoiseChannel::Depolarizing { p }) => write!(f, ":p2={p}")?,
                    Some(_) => write!(f, ":channel2=custom")?,
                    None => {}
                }
                write!(f, ":samples={samples}")?;
                if *seed != 0 {
                    write!(f, ":seed={seed}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for ExecutionBackend {
    type Err = RuntimeError;

    /// Parses a backend spec string:
    ///
    /// * `"ideal"`
    /// * `"sampled:shots=<n>[:seed=<n>]"`
    /// * `"noisy:p1=<f>:p2=<f>[:shots=<n>][:seed=<n>]"` — uniform
    ///   depolarizing noise with rate `p1` after one-qubit gates and `p2`
    ///   after two-qubit gates.
    /// * `"trajectory:p1=<f>:p2=<f>:samples=<n>[:seed=<n>]"` — the same
    ///   depolarizing model executed by quantum-trajectory sampling with
    ///   `samples` statevector runs per evaluation.
    fn from_str(spec: &str) -> Result<Self, RuntimeError> {
        let bad = |msg: String| RuntimeError::InvalidConfig(msg);
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut shots: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut p1: Option<f64> = None;
        let mut p2: Option<f64> = None;
        let mut samples: Option<usize> = None;
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("backend spec segment {part:?} is not key=value")))?;
            // Duplicate keys last-winning would silently discard the
            // earlier value, so they are rejected like every other
            // silently-dropped-input case.
            fn set<T: std::str::FromStr>(
                slot: &mut Option<T>,
                key: &str,
                value: &str,
            ) -> Result<(), RuntimeError> {
                if slot.is_some() {
                    return Err(RuntimeError::InvalidConfig(format!(
                        "backend spec key {key:?} given more than once"
                    )));
                }
                *slot = Some(value.parse().map_err(|_| {
                    RuntimeError::InvalidConfig(format!(
                        "backend spec {key} {value:?} is not a valid value"
                    ))
                })?);
                Ok(())
            }
            match key {
                "shots" => set(&mut shots, key, value)?,
                "seed" => set(&mut seed, key, value)?,
                "p1" => set(&mut p1, key, value)?,
                "p2" => set(&mut p2, key, value)?,
                "samples" => set(&mut samples, key, value)?,
                other => {
                    return Err(bad(format!(
                        "unknown backend spec key {other:?} \
                         (expected shots/seed/p1/p2/samples)"
                    )))
                }
            }
        }
        // Every key the chosen kind does not consume is an error, never
        // silently dropped — "sampled:shots=1024:p1=0.01" must not run a
        // noise-free experiment while looking like a noisy one.
        let backend = match kind {
            "ideal" => {
                if shots.is_some()
                    || p1.is_some()
                    || p2.is_some()
                    || seed.is_some()
                    || samples.is_some()
                {
                    return Err(bad("ideal backend takes no parameters".into()));
                }
                ExecutionBackend::Ideal
            }
            "sampled" => {
                if p1.is_some() || p2.is_some() {
                    return Err(bad(
                        "sampled backend has no noise channel (p1/p2); use the noisy kind".into(),
                    ));
                }
                if samples.is_some() {
                    return Err(bad(
                        "samples=<n> belongs to the trajectory kind; sampled uses shots=<n>".into(),
                    ));
                }
                ExecutionBackend::Sampled {
                    shots: shots.ok_or_else(|| bad("sampled backend needs shots=<n>".into()))?,
                    seed: seed.unwrap_or(0),
                }
            }
            "noisy" => {
                if p1.is_none() && p2.is_none() {
                    return Err(bad(
                        "noisy backend needs a channel (p1=<f> and/or p2=<f>); \
                         a rate-free spec would silently run noise-free"
                            .into(),
                    ));
                }
                if samples.is_some() {
                    return Err(bad(
                        "samples=<n> belongs to the trajectory kind; noisy evolves \
                         the full density matrix"
                            .into(),
                    ));
                }
                ExecutionBackend::Noisy {
                    model: NoiseModel::depolarizing(p1.unwrap_or(0.0), p2.unwrap_or(0.0))?,
                    shots,
                    seed: seed.unwrap_or(0),
                }
            }
            "trajectory" => {
                if p1.is_none() && p2.is_none() {
                    return Err(bad(
                        "trajectory backend needs a channel (p1=<f> and/or p2=<f>); \
                         a rate-free spec would silently run noise-free"
                            .into(),
                    ));
                }
                if shots.is_some() {
                    return Err(bad("trajectory backend reads each trajectory exactly; \
                         shots=<n> belongs to the sampled/noisy kinds"
                        .into()));
                }
                ExecutionBackend::Trajectory {
                    model: NoiseModel::depolarizing(p1.unwrap_or(0.0), p2.unwrap_or(0.0))?,
                    samples: samples
                        .ok_or_else(|| bad("trajectory backend needs samples=<n>".into()))?,
                    seed: seed.unwrap_or(0),
                }
            }
            other => {
                return Err(bad(format!(
                    "unknown backend kind {other:?} \
                     (expected ideal, sampled, noisy or trajectory)"
                )))
            }
        };
        backend.validate()?;
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for spec in [
            "ideal",
            "sampled:shots=1024",
            "sampled:shots=1024:seed=7",
            "noisy:p1=0.001:p2=0.002",
            "noisy:p1=0.001:p2=0.002:shots=2048:seed=9",
            "trajectory:p1=0.001:p2=0.002:samples=16",
            "trajectory:p1=0.001:p2=0.002:samples=16:seed=1",
        ] {
            let backend: ExecutionBackend = spec.parse().unwrap();
            assert_eq!(backend.to_string(), spec, "canonical form roundtrips");
            let again: ExecutionBackend = backend.to_string().parse().unwrap();
            assert_eq!(again, backend);
        }
        assert_eq!(
            "ideal".parse::<ExecutionBackend>().unwrap(),
            ExecutionBackend::default()
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "",
            "hardware",
            "sampled",             // missing shots
            "sampled:shots=0",     // zero shots
            "sampled:shots=abc",   // non-integer
            "sampled:1024",        // not key=value
            "noisy:p1=2.0:p2=0.0", // probability out of range
            "noisy:p1=0.1:p2=0.1:shots=0",
            "ideal:shots=5",           // ideal takes no parameters
            "ideal:seed=5",            // …including a seed
            "sampled:shots=8:p1=0.01", // noise keys on a noise-free kind
            "sampled:shots=8:laser=on",
            "noisy",                      // rate-free "noisy" would silently run noise-free
            "noisy:shots=64",             // …same with only a shot budget
            "sampled:shots=1024:shots=8", // duplicate keys must not last-win
            "trajectory:p1=0.01:p2=0.02", // missing samples
            "trajectory:samples=8",       // rate-free trajectory, same rule as noisy
            "trajectory:p1=0.1:samples=8:shots=4", // shots belong to sampled/noisy
            "trajectory:p1=0.1:samples=0", // zero samples
            "sampled:shots=8:samples=4",  // samples key on the wrong kind
            "noisy:p1=0.1:samples=4",     // …same for noisy
            "ideal:samples=1",            // ideal takes no parameters
        ] {
            assert!(
                spec.parse::<ExecutionBackend>().is_err(),
                "{spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn lossy_display_of_custom_channels_fails_to_reparse() {
        // The spec grammar only spells depolarizing channels; any other
        // channel must not roundtrip into a silently weaker backend.
        let custom = ExecutionBackend::Noisy {
            model: NoiseModel {
                after_gate1: Some(NoiseChannel::BitFlip { p: 0.1 }),
                after_gate2: None,
            },
            shots: None,
            seed: 0,
        };
        let spec = custom.to_string();
        assert!(spec.contains("channel1=custom"));
        assert!(spec.parse::<ExecutionBackend>().is_err());
        // Same rule for the trajectory kind.
        let custom_traj = ExecutionBackend::Trajectory {
            model: NoiseModel {
                after_gate1: None,
                after_gate2: Some(NoiseChannel::AmplitudeDamping { gamma: 0.2 }),
            },
            samples: 8,
            seed: 0,
        };
        let spec = custom_traj.to_string();
        assert!(spec.contains("channel2=custom"));
        assert!(spec.parse::<ExecutionBackend>().is_err());
    }

    #[test]
    fn capability_routing() {
        let ideal = ExecutionBackend::Ideal;
        let sampled = ExecutionBackend::Sampled { shots: 64, seed: 0 };
        let trajectory: ExecutionBackend = "trajectory:p1=0.01:p2=0.02:samples=8".parse().unwrap();
        assert!(ideal.supports_adjoint());
        assert!(!sampled.supports_adjoint());
        assert!(!trajectory.supports_adjoint());
        assert_eq!(
            ideal.effective_grad_method(GradMethod::Adjoint),
            GradMethod::Adjoint
        );
        assert_eq!(
            sampled.effective_grad_method(GradMethod::Adjoint),
            GradMethod::ParameterShift
        );
        assert_eq!(
            trajectory.effective_grad_method(GradMethod::Adjoint),
            GradMethod::ParameterShift
        );
        assert_eq!(ideal.kind(), "ideal");
        assert_eq!(sampled.kind(), "sampled");
        assert_eq!(trajectory.kind(), "trajectory");
        assert!(!trajectory.is_ideal());
    }

    #[test]
    fn eval_seed_is_content_addressed() {
        let a = ExecutionBackend::eval_seed(1, &[0.1, 0.2], &[0.3], 0);
        // Same bindings, same stream.
        assert_eq!(a, ExecutionBackend::eval_seed(1, &[0.1, 0.2], &[0.3], 0));
        // Any change to root, inputs, params or salt moves the stream.
        assert_ne!(a, ExecutionBackend::eval_seed(2, &[0.1, 0.2], &[0.3], 0));
        assert_ne!(a, ExecutionBackend::eval_seed(1, &[0.1, 0.3], &[0.3], 0));
        assert_ne!(a, ExecutionBackend::eval_seed(1, &[0.1, 0.2], &[0.4], 0));
        assert_ne!(a, ExecutionBackend::eval_seed(1, &[0.1, 0.2], &[0.3], 1));
        // Moving a value across the inputs/params boundary changes the
        // fingerprint (domain separation).
        assert_ne!(
            ExecutionBackend::eval_seed(1, &[0.1, 0.2], &[], 0),
            ExecutionBackend::eval_seed(1, &[0.1], &[0.2], 0)
        );
    }
}
