//! Lowering [`Circuit`] IR into flat, fusion-optimised gate schedules.
//!
//! The VQC layer's [`Circuit`] is a builder-friendly list of symbolic ops
//! that `vqc::exec::run` re-interprets on every evaluation: every gate
//! dispatches through the op enum, resolves its symbolic angle, and
//! re-validates wires. Training evaluates the *same* circuit thousands of
//! times per epoch (policy forward passes, parameter-shift fan-outs), so
//! this module lowers a circuit **once** into a [`CompiledCircuit`]:
//!
//! * angle slots resolved to direct input/parameter indices
//!   ([`FusedAngle`] — a constant plus a list of slot references),
//! * wires validated at compile time (execution skips all checks),
//! * adjacent same-axis rotations on the same wire **fused** into one
//!   gate whose angle is the sum of the originals' angle expressions, and
//!   adjacent fixed gates on the same wire fused into one pre-multiplied
//!   unitary,
//! * the raw (unfused) schedule and its trainable-parameter occurrence
//!   table retained for the parameter-shift gradient path, which must
//!   shift *individual* occurrences and therefore cannot use the fused
//!   schedule when a fusion merged two occurrences of the same parameter.
//!
//! Compiled circuits are keyed by a structural [`circuit_hash`] in
//! [`crate::cache::CircuitCache`], so repeated model constructions share
//! one compilation.

use std::hash::{Hash, Hasher};

use qmarl_qsim::gate::{Gate1, Gate2, RotationAxis};
use qmarl_vqc::ir::{Angle, Circuit, InputId, Op, ParamId};

/// One symbolic term of a fused rotation angle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AngleTerm {
    /// Add the classical input at this index.
    Input(usize),
    /// Add the trainable parameter at this index.
    Param(usize),
}

/// A compiled rotation angle: a constant plus zero or more slot terms.
///
/// The unfused cases (`Const`, `Single` with base 0) resolve with one
/// branch and at most one indexed load — no slower than the interpreter's
/// symbolic lookup — while fusion products fall back to the general
/// `Sum` form.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedAngle {
    /// A constant angle (radians).
    Const(f64),
    /// `base + slot` — the common single-occurrence case.
    Single {
        /// Constant offset.
        base: f64,
        /// The slot reference.
        term: AngleTerm,
    },
    /// `base + Σ terms` — produced when fusion merges several angles (a
    /// slot may repeat when two gates driven by the same slot merged).
    Sum {
        /// Constant offset.
        base: f64,
        /// Slot references, coefficient 1 each.
        terms: Vec<AngleTerm>,
    },
}

impl FusedAngle {
    fn from_angle(angle: Angle) -> Self {
        match angle {
            Angle::Const(c) => FusedAngle::Const(c),
            Angle::Input(InputId(i)) => FusedAngle::Single {
                base: 0.0,
                term: AngleTerm::Input(i),
            },
            Angle::Param(ParamId(p)) => FusedAngle::Single {
                base: 0.0,
                term: AngleTerm::Param(p),
            },
        }
    }

    /// The constant part.
    fn base(&self) -> f64 {
        match *self {
            FusedAngle::Const(c) => c,
            FusedAngle::Single { base, .. } | FusedAngle::Sum { base, .. } => base,
        }
    }

    /// The slot terms.
    fn term_list(&self) -> Vec<AngleTerm> {
        match self {
            FusedAngle::Const(_) => Vec::new(),
            FusedAngle::Single { term, .. } => vec![*term],
            FusedAngle::Sum { terms, .. } => terms.clone(),
        }
    }

    fn merge(&mut self, other: &FusedAngle) {
        let base = self.base() + other.base();
        let mut terms = self.term_list();
        terms.extend(other.term_list());
        *self = match (terms.len(), terms.first()) {
            (0, _) => FusedAngle::Const(base),
            (1, Some(&term)) => FusedAngle::Single { base, term },
            _ => FusedAngle::Sum { base, terms },
        };
    }

    /// `true` when the angle references any input slot (so it cannot be
    /// resolved by parameter prebinding alone).
    pub fn depends_on_inputs(&self) -> bool {
        match self {
            FusedAngle::Const(_) => false,
            FusedAngle::Single { term, .. } => matches!(term, AngleTerm::Input(_)),
            FusedAngle::Sum { terms, .. } => terms.iter().any(|t| matches!(t, AngleTerm::Input(_))),
        }
    }

    /// Resolves the angle under bindings.
    #[inline]
    pub fn value(&self, inputs: &[f64], params: &[f64]) -> f64 {
        match self {
            FusedAngle::Const(c) => *c,
            FusedAngle::Single { base, term } => {
                base + match *term {
                    AngleTerm::Input(i) => inputs[i],
                    AngleTerm::Param(p) => params[p],
                }
            }
            FusedAngle::Sum { base, terms } => {
                let mut v = *base;
                for t in terms {
                    v += match *t {
                        AngleTerm::Input(i) => inputs[i],
                        AngleTerm::Param(p) => params[p],
                    };
                }
                v
            }
        }
    }
}

/// One gate of a compiled schedule. Wires are pre-validated; fixed gates
/// carry their concrete unitary.
#[derive(Debug, Clone, PartialEq)]
pub enum CGate {
    /// Rotation with a compiled angle.
    Rot {
        /// Target wire.
        qubit: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression.
        angle: FusedAngle,
    },
    /// Controlled rotation with a compiled angle.
    CRot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression.
        angle: FusedAngle,
    },
    /// CNOT (amplitude-swap fast path).
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
    /// Controlled-Z (diagonal sign-flip fast path).
    Cz {
        /// First wire.
        control: usize,
        /// Second wire.
        target: usize,
    },
    /// A fixed (possibly pre-fused) single-qubit unitary.
    Fixed {
        /// Target wire.
        qubit: usize,
        /// Concrete unitary.
        gate: Gate1,
    },
    /// A fixed two-qubit unitary produced by entangler fusion: an
    /// entangler pre-multiplied with the constant one-qubit gates (and
    /// further entanglers) adjacent to it on its wire pair. Appears only
    /// in the **fused** schedule, never in `raw` (the gradient paths walk
    /// the raw schedule and are unaffected).
    Fixed2 {
        /// First wire — bit 0 of the matrix index.
        qa: usize,
        /// Second wire — bit 1 of the matrix index.
        qb: usize,
        /// Concrete two-qubit unitary in `(qa, qb)` orientation.
        gate: Gate2,
    },
}

impl CGate {
    /// `true` when fusing `next` into this gate is legal and performed.
    fn try_fuse(&mut self, next: &CGate) -> bool {
        match (self, next) {
            (
                CGate::Rot {
                    qubit: q1,
                    axis: a1,
                    angle,
                },
                CGate::Rot {
                    qubit: q2,
                    axis: a2,
                    angle: angle2,
                },
            ) if q1 == q2 && a1 == a2 => {
                angle.merge(angle2);
                true
            }
            (
                CGate::Fixed { qubit: q1, gate },
                CGate::Fixed {
                    qubit: q2,
                    gate: g2,
                },
            ) if q1 == q2 => {
                // Applying `gate` then `g2` is the matrix product `g2·gate`.
                *gate = g2.matmul(gate);
                true
            }
            _ => false,
        }
    }
}

/// One trainable-parameter occurrence in the **raw** schedule — the unit
/// of work of the parameter-shift rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Index into [`CompiledCircuit::raw`].
    pub raw_idx: usize,
    /// The parameter this occurrence consumes.
    pub param: usize,
    /// `true` for controlled rotations (four-term shift rule).
    pub controlled: bool,
}

/// A circuit lowered to flat schedules plus gradient metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit {
    n_qubits: usize,
    n_inputs: usize,
    n_params: usize,
    /// Fusion-optimised forward schedule.
    fused: Vec<CGate>,
    /// Unfused schedule, 1:1 with the source circuit's ops.
    raw: Vec<CGate>,
    /// Trainable occurrences in `raw`, in op order.
    occurrences: Vec<Occurrence>,
    hash: u64,
}

impl CompiledCircuit {
    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Declared classical-input arity.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Declared trainable-parameter arity.
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The fusion-optimised forward schedule.
    #[inline]
    pub fn fused_schedule(&self) -> &[CGate] {
        &self.fused
    }

    /// The unfused schedule (1:1 with the source ops).
    #[inline]
    pub fn raw_schedule(&self) -> &[CGate] {
        &self.raw
    }

    /// Trainable-parameter occurrences in the raw schedule.
    #[inline]
    pub fn occurrences(&self) -> &[Occurrence] {
        &self.occurrences
    }

    /// The structural hash this compilation is cached under.
    #[inline]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Gates eliminated by fusion (diagnostic).
    pub fn gates_fused(&self) -> usize {
        self.raw.len() - self.fused.len()
    }
}

fn lower_op(op: &Op) -> CGate {
    match *op {
        Op::Rot { qubit, axis, angle } => CGate::Rot {
            qubit,
            axis,
            angle: FusedAngle::from_angle(angle),
        },
        Op::ControlledRot {
            control,
            target,
            axis,
            angle,
        } => CGate::CRot {
            control,
            target,
            axis,
            angle: FusedAngle::from_angle(angle),
        },
        Op::Cnot { control, target } => CGate::Cnot { control, target },
        Op::Cz { control, target } => CGate::Cz { control, target },
        Op::Fixed { qubit, gate } => CGate::Fixed {
            qubit,
            gate: gate.gate(),
        },
    }
}

/// Lowers a circuit into a [`CompiledCircuit`].
///
/// Wire validity is guaranteed by the [`Circuit`] builder, so lowering
/// cannot fail; fusion preserves semantics exactly (rotation angles about
/// the same axis add; fixed unitaries multiply).
pub fn compile(circuit: &Circuit) -> CompiledCircuit {
    let raw: Vec<CGate> = circuit.ops().iter().map(lower_op).collect();

    let occurrences = circuit
        .ops()
        .iter()
        .enumerate()
        .filter_map(|(raw_idx, op)| match op.angle() {
            Some(Angle::Param(ParamId(param))) => Some(Occurrence {
                raw_idx,
                param,
                controlled: matches!(op, Op::ControlledRot { .. }),
            }),
            _ => None,
        })
        .collect();

    // Fusion pass: `pending[w]` is the index (into `fused`) of the last
    // single-qubit gate on wire `w` with nothing later touching `w`.
    let mut fused: Vec<CGate> = Vec::with_capacity(raw.len());
    let mut pending: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    for gate in &raw {
        match gate {
            CGate::Rot { qubit, .. } | CGate::Fixed { qubit, .. } => {
                if let Some(idx) = pending[*qubit] {
                    if fused[idx].try_fuse(gate) {
                        continue;
                    }
                }
                pending[*qubit] = Some(fused.len());
                fused.push(gate.clone());
            }
            CGate::CRot {
                control, target, ..
            }
            | CGate::Cnot { control, target }
            | CGate::Cz { control, target } => {
                pending[*control] = None;
                pending[*target] = None;
                fused.push(gate.clone());
            }
            CGate::Fixed2 { .. } => unreachable!("lowering never emits Fixed2"),
        }
    }

    let fused = fuse_entanglers(fused, circuit.n_qubits());

    CompiledCircuit {
        n_qubits: circuit.n_qubits(),
        n_inputs: circuit.input_count(),
        n_params: circuit.param_count(),
        fused,
        raw,
        occurrences,
        hash: circuit_hash(circuit),
    }
}

/// The concrete unitary and wire of an angle-free single-qubit gate.
fn const_1q(gate: &CGate) -> Option<(usize, Gate1)> {
    match gate {
        CGate::Fixed { qubit, gate } => Some((*qubit, *gate)),
        CGate::Rot {
            qubit,
            axis,
            angle: FusedAngle::Const(theta),
        } => Some((*qubit, axis.gate(*theta))),
        _ => None,
    }
}

/// The 4×4 matrix of an entangler, expressed in the `(qa, qb)` orientation
/// where `qa` is bit 0 of the matrix index. `None` when the entangler does
/// not act on exactly that wire pair.
fn entangler_matrix(gate: &CGate, qa: usize, qb: usize) -> Option<Gate2> {
    match *gate {
        CGate::Cnot { control, target } => {
            if control == qa && target == qb {
                Some(Gate2::cnot())
            } else if control == qb && target == qa {
                Some(Gate2::controlled_flipped(&Gate1::pauli_x()))
            } else {
                None
            }
        }
        CGate::Cz { control, target } => {
            // CZ is symmetric in its operands.
            if (control == qa && target == qb) || (control == qb && target == qa) {
                Some(Gate2::cz())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Second fusion pass: folds **constant** one-qubit gates into adjacent
/// entanglers (CNOT/CZ) and collapses entangler chains on the same wire
/// pair, producing single two-qubit matrix applications
/// ([`CGate::Fixed2`]) — the ansatz's rotation + entangler pattern in its
/// compile-time-resolvable (angle-free) form.
///
/// Only angle-free gates participate: input- and parameter-driven
/// rotations keep their specialised kernels (faster than a generic 4×4
/// for a lone gate, and their angles are unknown at compile time) and act
/// as barriers. Schedules without constant gates — including every paper
/// circuit — therefore pass through **untouched**, preserving golden
/// fingerprints bit for bit.
fn fuse_entanglers(gates: Vec<CGate>, n_qubits: usize) -> Vec<CGate> {
    // `out` uses tombstones so absorbed gates can be removed without
    // invalidating the `last[w]` indices (index of the last surviving
    // gate that touches wire `w`).
    let mut out: Vec<Option<CGate>> = Vec::with_capacity(gates.len());
    let mut last: Vec<Option<usize>> = vec![None; n_qubits];
    for gate in gates {
        // A constant 1-qubit gate folds into a two-qubit product already
        // formed on its wire (gates between them touch other wires only,
        // so commuting it back across them is exact).
        if let Some((w, u)) = const_1q(&gate) {
            if let Some(k) = last[w] {
                if let Some(CGate::Fixed2 { qa, qb, gate: m }) = &mut out[k] {
                    if *qa == w {
                        *m = Gate2::embed_first(&u).matmul(m);
                        continue;
                    } else if *qb == w {
                        *m = Gate2::embed_second(&u).matmul(m);
                        continue;
                    }
                }
            }
            last[w] = Some(out.len());
            out.push(Some(gate));
            continue;
        }
        if matches!(gate, CGate::Cnot { .. } | CGate::Cz { .. }) {
            let (a, b) = match &gate {
                CGate::Cnot { control, target } | CGate::Cz { control, target } => {
                    (*control, *target)
                }
                _ => unreachable!(),
            };
            // Chain-merge: the previous gate on *both* wires is one
            // Fixed2 on this same pair.
            if let (Some(ka), Some(kb)) = (last[a], last[b]) {
                if ka == kb {
                    if let Some(CGate::Fixed2 { qa, qb, gate: m }) = &mut out[ka] {
                        let e = entangler_matrix(&gate, *qa, *qb)
                            .expect("gate touching both wires of the pair acts on the pair");
                        *m = e.matmul(m);
                        continue;
                    }
                }
            }
            // Absorb pending constant 1-qubit predecessors, if any. The
            // entangler matrix multiplies from the left (it is applied
            // after them); `a` is bit 0, `b` bit 1.
            let ua = last[a].and_then(|k| out[k].as_ref().and_then(const_1q).map(|(_, u)| (k, u)));
            let ub = last[b].and_then(|k| out[k].as_ref().and_then(const_1q).map(|(_, u)| (k, u)));
            if ua.is_some() || ub.is_some() {
                let mut m = entangler_matrix(&gate, a, b).expect("entangler on its own pair");
                if let Some((k, u)) = ua {
                    m = m.matmul(&Gate2::embed_first(&u));
                    out[k] = None;
                }
                if let Some((k, u)) = ub {
                    m = m.matmul(&Gate2::embed_second(&u));
                    out[k] = None;
                }
                last[a] = Some(out.len());
                last[b] = Some(out.len());
                out.push(Some(CGate::Fixed2 {
                    qa: a,
                    qb: b,
                    gate: m,
                }));
                continue;
            }
            // Nothing to fuse: keep the cheap specialised kernel.
            last[a] = Some(out.len());
            last[b] = Some(out.len());
            out.push(Some(gate));
            continue;
        }
        // Symbolic rotations and controlled rotations are barriers.
        match &gate {
            CGate::Rot { qubit, .. } => last[*qubit] = Some(out.len()),
            CGate::CRot {
                control, target, ..
            } => {
                last[*control] = Some(out.len());
                last[*target] = Some(out.len());
            }
            _ => unreachable!("constant 1q gates and entanglers are handled above"),
        }
        out.push(Some(gate));
    }
    out.into_iter().flatten().collect()
}

fn hash_angle<H: Hasher>(angle: &Angle, h: &mut H) {
    match *angle {
        Angle::Input(InputId(i)) => {
            0u8.hash(h);
            i.hash(h);
        }
        Angle::Param(ParamId(p)) => {
            1u8.hash(h);
            p.hash(h);
        }
        Angle::Const(c) => {
            2u8.hash(h);
            c.to_bits().hash(h);
        }
    }
}

/// A structural hash of a circuit: width, op sequence, wires, axes and
/// angle symbols (constants by bit pattern). Equal circuits hash equal;
/// the cache resolves the (astronomically unlikely) collisions by full
/// structural comparison.
pub fn circuit_hash(circuit: &Circuit) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    circuit.n_qubits().hash(&mut h);
    for op in circuit.ops() {
        match *op {
            Op::Rot {
                qubit,
                axis,
                ref angle,
            } => {
                0u8.hash(&mut h);
                qubit.hash(&mut h);
                (axis as u8).hash(&mut h);
                hash_angle(angle, &mut h);
            }
            Op::ControlledRot {
                control,
                target,
                axis,
                ref angle,
            } => {
                1u8.hash(&mut h);
                control.hash(&mut h);
                target.hash(&mut h);
                (axis as u8).hash(&mut h);
                hash_angle(angle, &mut h);
            }
            Op::Cnot { control, target } => {
                2u8.hash(&mut h);
                control.hash(&mut h);
                target.hash(&mut h);
            }
            Op::Cz { control, target } => {
                3u8.hash(&mut h);
                control.hash(&mut h);
                target.hash(&mut h);
            }
            Op::Fixed { qubit, gate } => {
                4u8.hash(&mut h);
                qubit.hash(&mut h);
                gate.hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ir::FixedGate;

    fn chain() -> Circuit {
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Y, Angle::Input(InputId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Const(0.5)).unwrap();
        c.rot(1, Ax::X, Angle::Param(ParamId(1))).unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(2))).unwrap();
        c
    }

    #[test]
    fn fuses_adjacent_same_axis_rotations() {
        let compiled = compile(&chain());
        // The three Ry on wire 0 fuse; the CNOT blocks the final Ry.
        assert_eq!(compiled.raw_schedule().len(), 6);
        assert_eq!(compiled.fused_schedule().len(), 4);
        assert_eq!(compiled.gates_fused(), 2);
        match &compiled.fused_schedule()[0] {
            CGate::Rot {
                qubit: 0,
                axis: Ax::Y,
                angle,
            } => {
                assert_eq!(
                    *angle,
                    FusedAngle::Sum {
                        base: 0.5,
                        terms: vec![AngleTerm::Input(0), AngleTerm::Param(0)],
                    }
                );
            }
            other => panic!("expected fused rotation, got {other:?}"),
        }
    }

    #[test]
    fn different_axis_or_wire_does_not_fuse() {
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Y, Angle::Const(0.3)).unwrap();
        c.rot(0, Ax::Z, Angle::Const(0.4)).unwrap();
        c.rot(1, Ax::Y, Angle::Const(0.5)).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 3);
    }

    #[test]
    fn nonadjacent_same_wire_blocked_by_two_qubit_gate() {
        // Symbolic angles keep the entangler pass out of the picture, so
        // the schedule length directly witnesses that *rotation* fusion
        // was blocked by the CZ. (The all-constant variant of this
        // circuit now collapses into a single two-qubit matrix — see the
        // entangler-fusion tests below.)
        let mut c = Circuit::new(2);
        c.rot(0, Ax::X, Angle::Param(ParamId(0))).unwrap();
        c.cz(0, 1).unwrap();
        c.rot(0, Ax::X, Angle::Param(ParamId(1))).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 3);
    }

    #[test]
    fn interleaved_other_wire_rotations_still_fuse() {
        // Wire-1 rotations between the wire-0 rotations don't block fusion
        // on wire 0 (they commute: disjoint supports).
        let mut c = Circuit::new(2);
        c.rot(0, Ax::X, Angle::Const(0.1)).unwrap();
        c.rot(1, Ax::Y, Angle::Const(0.7)).unwrap();
        c.rot(0, Ax::X, Angle::Const(0.2)).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 2);
    }

    #[test]
    fn fixed_gates_premultiply() {
        let mut c = Circuit::new(1);
        c.fixed(0, FixedGate::H).unwrap();
        c.fixed(0, FixedGate::H).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 1);
        match &compiled.fused_schedule()[0] {
            // H·H = I.
            CGate::Fixed { gate, .. } => {
                assert!(gate.approx_eq(&Gate1::hadamard().matmul(&Gate1::hadamard()), 1e-12));
            }
            other => panic!("expected fused fixed gate, got {other:?}"),
        }
    }

    #[test]
    fn occurrence_table_matches_trainable_ops() {
        let compiled = compile(&chain());
        assert_eq!(
            compiled.occurrences(),
            &[
                Occurrence {
                    raw_idx: 1,
                    param: 0,
                    controlled: false
                },
                Occurrence {
                    raw_idx: 3,
                    param: 1,
                    controlled: false
                },
                Occurrence {
                    raw_idx: 5,
                    param: 2,
                    controlled: false
                },
            ]
        );
    }

    #[test]
    fn controlled_occurrences_flagged() {
        let mut c = Circuit::new(2);
        c.controlled_rot(0, 1, Ax::Z, Angle::Param(ParamId(0)))
            .unwrap();
        let compiled = compile(&c);
        assert!(compiled.occurrences()[0].controlled);
    }

    #[test]
    fn hash_is_structural() {
        let a = chain();
        let b = chain();
        assert_eq!(circuit_hash(&a), circuit_hash(&b));
        let mut c = chain();
        c.rot(1, Ax::Z, Angle::Const(0.0)).unwrap();
        assert_ne!(circuit_hash(&a), circuit_hash(&c));
        // Same shape, different constant: different hash.
        let mut d = Circuit::new(1);
        d.rot(0, Ax::X, Angle::Const(1.0)).unwrap();
        let mut e = Circuit::new(1);
        e.rot(0, Ax::X, Angle::Const(2.0)).unwrap();
        assert_ne!(circuit_hash(&d), circuit_hash(&e));
    }

    #[test]
    fn fused_angle_resolves_bindings() {
        let a = FusedAngle::Sum {
            base: 0.25,
            terms: vec![
                AngleTerm::Input(1),
                AngleTerm::Param(0),
                AngleTerm::Param(0),
            ],
        };
        assert!((a.value(&[9.0, 2.0], &[0.5]) - (0.25 + 2.0 + 1.0)).abs() < 1e-15);
        let s = FusedAngle::Single {
            base: 0.5,
            term: AngleTerm::Input(0),
        };
        assert!((s.value(&[1.25], &[]) - 1.75).abs() < 1e-15);
        assert!((FusedAngle::Const(0.75).value(&[], &[]) - 0.75).abs() < 1e-15);
    }

    /// Max |amplitude difference| between the fused and raw schedules.
    fn fused_raw_divergence(c: &Circuit, inputs: &[f64], params: &[f64]) -> f64 {
        let compiled = compile(c);
        let fused = crate::exec::run_schedule_unchecked(
            c.n_qubits(),
            compiled.fused_schedule(),
            inputs,
            params,
        );
        let raw = crate::exec::run_schedule_unchecked(
            c.n_qubits(),
            compiled.raw_schedule(),
            inputs,
            params,
        );
        fused
            .amplitudes()
            .iter()
            .zip(raw.amplitudes())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn const_rotation_entangler_chain_collapses_to_one_fixed2() {
        // rz(0), ry(1), cnot(0,1), rx(1), cz(0,1): five constant gates,
        // one two-qubit matrix.
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Z, Angle::Const(0.3)).unwrap();
        c.rot(1, Ax::Y, Angle::Const(-0.8)).unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(1, Ax::X, Angle::Const(1.1)).unwrap();
        c.cz(0, 1).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 1);
        match &compiled.fused_schedule()[0] {
            CGate::Fixed2 { qa: 0, qb: 1, gate } => {
                let expect = Gate2::cz()
                    .matmul(&Gate2::embed_second(&Ax::X.gate(1.1)))
                    .matmul(&Gate2::cnot())
                    .matmul(&Gate2::embed_second(&Ax::Y.gate(-0.8)))
                    .matmul(&Gate2::embed_first(&Ax::Z.gate(0.3)));
                assert!(gate.approx_eq(&expect, 1e-12));
                assert!(gate.is_unitary(1e-12));
            }
            other => panic!("expected Fixed2, got {other:?}"),
        }
        assert!(fused_raw_divergence(&c, &[], &[]) < 1e-12);
    }

    #[test]
    fn flipped_orientation_entangler_fuses() {
        // The CNOT's control is the *second* wire of the pair as the
        // Fixed2 orients it (qa = control of the first absorbing gate).
        let mut c = Circuit::new(2);
        c.rot(0, Ax::X, Angle::Const(0.7)).unwrap();
        c.cnot(1, 0).unwrap();
        c.cz(1, 0).unwrap();
        // Control on the Fixed2's qb wire: exercises the flipped-control
        // CNOT embedding.
        c.cnot(0, 1).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 1);
        assert!(matches!(
            compiled.fused_schedule()[0],
            CGate::Fixed2 { qa: 1, qb: 0, .. }
        ));
        assert!(fused_raw_divergence(&c, &[], &[]) < 1e-12);
    }

    #[test]
    fn fixed_gate_then_entangler_fuses() {
        let mut c = Circuit::new(3);
        c.fixed(2, FixedGate::H).unwrap();
        c.cnot(2, 0).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 1);
        assert!(matches!(
            compiled.fused_schedule()[0],
            CGate::Fixed2 { qa: 2, qb: 0, .. }
        ));
        assert!(fused_raw_divergence(&c, &[], &[]) < 1e-12);
    }

    #[test]
    fn symbolic_rotations_block_entangler_fusion() {
        // Input- and parameter-driven rotations are barriers: the
        // ansatz/encoder shape (the golden path) must compile untouched.
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Y, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(0, Ax::Z, Angle::Param(ParamId(1))).unwrap();
        c.cnot(1, 0).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 5);
        assert!(!compiled
            .fused_schedule()
            .iter()
            .any(|g| matches!(g, CGate::Fixed2 { .. })));
    }

    #[test]
    fn lone_entanglers_keep_their_fast_path() {
        // With nothing to absorb, CNOT/CZ stay on the specialised
        // swap/sign kernels rather than becoming a generic 4×4.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap();
        c.cz(1, 0).unwrap();
        let compiled = compile(&c);
        assert!(matches!(compiled.fused_schedule()[0], CGate::Cnot { .. }));
        // The second entangler merges with... nothing: the first stayed
        // a plain CNOT, which is not a fusion product.
        assert!(matches!(compiled.fused_schedule()[1], CGate::Cz { .. }));
    }

    #[test]
    fn entangler_fusion_respects_other_pair_barriers() {
        // The const rotation on wire 1 is NOT adjacent to cnot(1, 2) —
        // cnot(0, 1) touches wire 1 in between — so only the inner pair
        // may fuse.
        let mut c = Circuit::new(3);
        c.rot(1, Ax::X, Angle::Const(0.4)).unwrap();
        c.cnot(0, 1).unwrap();
        c.cnot(1, 2).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 2);
        assert!(matches!(
            compiled.fused_schedule()[0],
            CGate::Fixed2 { qa: 0, qb: 1, .. }
        ));
        assert!(matches!(compiled.fused_schedule()[1], CGate::Cnot { .. }));
        assert!(fused_raw_divergence(&c, &[], &[]) < 1e-12);
    }

    #[test]
    fn merging_const_angles_stays_const() {
        let mut c = Circuit::new(1);
        c.rot(0, Ax::Z, Angle::Const(0.25)).unwrap();
        c.rot(0, Ax::Z, Angle::Const(0.5)).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.fused_schedule().len(), 1);
        match &compiled.fused_schedule()[0] {
            CGate::Rot {
                angle: FusedAngle::Const(v),
                ..
            } => assert!((v - 0.75).abs() < 1e-15),
            other => panic!("expected fused const rotation, got {other:?}"),
        }
    }
}
