//! Vectorized episode collection: lockstep ticks over a [`VectorEnv`].
//!
//! The per-episode engine in [`crate::rollout`] parallelises across
//! episodes but evaluates the policy one observation at a time *within*
//! each episode — so the batched circuit executor only ever sees
//! single-sample forward passes during collection. This module flips the
//! loop: a [`VectorEnv`] advances `B` episodes ("lanes") in lockstep, and
//! at every tick the policy sees **all live lanes at once** as one flat
//! struct-of-arrays observation slab. A policy backed by
//! [`crate::batch::BatchExecutor`] turns that slab into one flat forward
//! batch of `lanes × agents` circuits per tick — the shape the executor
//! is built for.
//!
//! ## Determinism contract (same as the per-episode engine)
//!
//! > The trace of episode `i` depends only on `(base_seed, i)`, the
//! > environment template and the policy — never on the lane count. The
//! > environment stream seeds from `derive_seed(base_seed, ENV_STREAM,
//! > i)` and the action stream from `derive_seed(base_seed,
//! > POLICY_STREAM, i)`, exactly like [`crate::rollout::collect_episodes`] —
//! > so for a policy that consumes its per-lane RNG the same way, the
//! > vectorized traces are **bit-identical** to the serial ones
//! > (property-tested per scenario in `tests/vec_equivalence.rs`).
//!
//! Collections larger than the lane count run as successive waves: the
//! first `B` episodes fill the lanes, the next `B` re-seed them, and so
//! on — episode indexing (and therefore seeding) is independent of `B`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qmarl_env::vector::VectorEnv;

use crate::rollout::{
    derive_seed, EpisodeTrace, RolloutError, TraceStep, ENV_STREAM, POLICY_STREAM,
};

/// One lockstep decision for all live lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct VecDecision {
    /// Flat joint actions, row-major: `lanes.len() · n_agents` indices.
    pub actions: Vec<usize>,
    /// Policy-defined per-lane scalar (the trainers record mean policy
    /// entropy), one per row.
    pub aux: Vec<f64>,
}

/// A decision rule evaluated across all live lanes at once.
///
/// `observations` is the SoA slab (`rows × n_agents × obs_dim`);
/// `lanes[r]` names row `r`'s wave-lane, which is also its index into
/// `rngs`. To match the serial engine bit-for-bit, a policy must consume
/// `rngs[lanes[r]]` exactly as its serial counterpart consumes the
/// episode RNG: once per agent in agent order when sampling, not at all
/// when deterministic.
pub trait VecRolloutPolicy {
    /// The policy's error type.
    type Error: Send;

    /// Chooses joint actions for every live lane at one lockstep tick.
    ///
    /// # Errors
    ///
    /// Policy evaluation errors abort the whole collection.
    fn act_vec(
        &mut self,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, Self::Error>;
}

/// Blanket impl so plain closures work as vectorized policies.
impl<F, E> VecRolloutPolicy for F
where
    F: FnMut(&[f64], &[usize], &mut [StdRng]) -> Result<VecDecision, E>,
    E: Send,
{
    type Error = E;
    fn act_vec(
        &mut self,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, E> {
        self(observations, lanes, rngs)
    }
}

/// Splits one SoA observation row back into per-agent vectors.
fn unflatten_obs(row: &[f64], n_agents: usize, obs_dim: usize) -> Vec<Vec<f64>> {
    (0..n_agents)
        .map(|n| row[n * obs_dim..(n + 1) * obs_dim].to_vec())
        .collect()
}

/// Collects `n_episodes` episodes over the vector environment's lanes,
/// returning them **in episode-index order** (see the module-level
/// determinism contract). Episodes beyond the lane count run as
/// successive waves.
///
/// # Errors
///
/// Propagates environment and policy errors.
pub fn collect_episodes_vec<V, P>(
    venv: &mut V,
    policy: &mut P,
    n_episodes: usize,
    config: &crate::rollout::RolloutConfig,
) -> Result<Vec<EpisodeTrace>, RolloutError<P::Error>>
where
    V: VectorEnv,
    P: VecRolloutPolicy,
{
    let lanes_max = venv.batch_size();
    let (na, od, sd) = (venv.n_agents(), venv.obs_dim(), venv.state_dim());
    let mut traces = Vec::with_capacity(n_episodes);

    let mut wave_start = 0;
    while wave_start < n_episodes {
        let ids: Vec<usize> = (wave_start..(wave_start + lanes_max).min(n_episodes)).collect();
        let k = ids.len();
        let seeds: Vec<u64> = ids
            .iter()
            .map(|&i| derive_seed(config.base_seed, ENV_STREAM, i as u64))
            .collect();
        let mut rngs: Vec<StdRng> = ids
            .iter()
            .map(|&i| StdRng::seed_from_u64(derive_seed(config.base_seed, POLICY_STREAM, i as u64)))
            .collect();

        let reset = venv.reset_lanes(&seeds).map_err(RolloutError::Env)?;
        let mut prev_obs: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|r| unflatten_obs(&reset.observations[r * na * od..(r + 1) * na * od], na, od))
            .collect();
        let mut prev_state: Vec<Vec<f64>> = (0..k)
            .map(|r| reset.states[r * sd..(r + 1) * sd].to_vec())
            .collect();
        let mut steps: Vec<Vec<TraceStep>> = (0..k)
            .map(|_| Vec::with_capacity(venv.episode_limit()))
            .collect();

        let mut live: Vec<usize> = reset.lanes;
        let mut obs_soa = reset.observations;
        while !live.is_empty() {
            let decision = policy
                .act_vec(&obs_soa, &live, &mut rngs)
                .map_err(RolloutError::Policy)?;
            let out = venv
                .step_lanes(&decision.actions)
                .map_err(RolloutError::Env)?;
            debug_assert_eq!(out.lanes, live, "lockstep rows must track live lanes");

            for (row, &lane) in out.lanes.iter().enumerate() {
                let next_state = out.states[row * sd..(row + 1) * sd].to_vec();
                let next_obs = unflatten_obs(
                    &out.observations[row * na * od..(row + 1) * na * od],
                    na,
                    od,
                );
                let state = std::mem::replace(&mut prev_state[lane], next_state.clone());
                let observations = std::mem::replace(&mut prev_obs[lane], next_obs.clone());
                steps[lane].push(TraceStep {
                    state,
                    observations,
                    actions: decision.actions[row * na..(row + 1) * na].to_vec(),
                    reward: out.rewards[row],
                    next_state,
                    next_observations: next_obs,
                    done: out.dones[row],
                    info: out.infos[row].clone(),
                    aux: decision.aux[row],
                });
            }

            if out.dones.iter().any(|&d| d) {
                // Compact the SoA slab down to the lanes still running.
                let mut next_live = Vec::with_capacity(live.len());
                let mut next_soa = Vec::with_capacity(out.observations.len());
                for (row, &lane) in out.lanes.iter().enumerate() {
                    if !out.dones[row] {
                        next_live.push(lane);
                        next_soa.extend_from_slice(
                            &out.observations[row * na * od..(row + 1) * na * od],
                        );
                    }
                }
                live = next_live;
                obs_soa = next_soa;
            } else {
                live = out.lanes;
                obs_soa = out.observations;
            }
        }

        for (lane, lane_steps) in steps.into_iter().enumerate() {
            traces.push(EpisodeTrace {
                index: ids[lane],
                steps: lane_steps,
            });
        }
        wave_start += k;
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::{collect_episodes, RolloutConfig};
    use qmarl_env::error::EnvError;
    use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};
    use qmarl_env::vector::ReplicatedVecEnv;
    use rand::Rng;

    fn tiny_env(limit: usize) -> SingleHopEnv {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = limit;
        SingleHopEnv::new(cfg, 0).unwrap()
    }

    /// Serial reference policy: uniform random joint actions, aux 1.5.
    #[allow(clippy::type_complexity)]
    fn serial_policy(
        _episode: usize,
    ) -> impl FnMut(&[Vec<f64>], &mut StdRng) -> Result<(Vec<usize>, f64), EnvError> {
        |obs: &[Vec<f64>], rng: &mut StdRng| {
            let actions = obs.iter().map(|_| rng.gen_range(0..4)).collect();
            Ok((actions, 1.5))
        }
    }

    /// The vectorized twin: consumes each lane's RNG once per agent in
    /// agent order, exactly like the serial policy.
    fn vec_policy(
        obs: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, EnvError> {
        let n_agents = 4;
        let mut actions = Vec::with_capacity(lanes.len() * n_agents);
        for &lane in lanes {
            for _ in 0..n_agents {
                actions.push(rngs[lane].gen_range(0..4));
            }
        }
        let _ = obs;
        Ok(VecDecision {
            actions,
            aux: vec![1.5; lanes.len()],
        })
    }

    #[test]
    fn vectorized_matches_serial_bit_exactly() {
        let template = tiny_env(9);
        let config = RolloutConfig::new(42).with_workers(1);
        let reference = collect_episodes(&template, serial_policy, 5, &config).unwrap();
        for lanes in [1usize, 2, 3, 8] {
            let mut venv = ReplicatedVecEnv::new(&template, lanes).unwrap();
            let got = collect_episodes_vec(&mut venv, &mut vec_policy, 5, &config).unwrap();
            assert_eq!(got, reference, "lanes={lanes}");
        }
    }

    #[test]
    fn wave_chunking_preserves_episode_indexing() {
        let template = tiny_env(4);
        let config = RolloutConfig::new(7);
        let mut venv = ReplicatedVecEnv::new(&template, 2).unwrap();
        let traces = collect_episodes_vec(&mut venv, &mut vec_policy, 5, &config).unwrap();
        assert_eq!(traces.len(), 5);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.steps.len(), 4);
            assert!(t.steps.last().unwrap().done);
            assert!((t.mean_aux() - 1.5).abs() < 1e-15);
        }
        // Lane count must not change which episodes were collected.
        let mut wide = ReplicatedVecEnv::new(&template, 5).unwrap();
        let one_wave = collect_episodes_vec(&mut wide, &mut vec_policy, 5, &config).unwrap();
        assert_eq!(one_wave, traces);
    }

    #[test]
    fn empty_collection_is_empty() {
        let template = tiny_env(4);
        let mut venv = ReplicatedVecEnv::new(&template, 2).unwrap();
        let traces =
            collect_episodes_vec(&mut venv, &mut vec_policy, 0, &RolloutConfig::new(0)).unwrap();
        assert!(traces.is_empty());
    }

    #[test]
    fn policy_errors_abort_collection() {
        let template = tiny_env(4);
        let mut venv = ReplicatedVecEnv::new(&template, 2).unwrap();
        let mut failing = |_obs: &[f64],
                           _lanes: &[usize],
                           _rngs: &mut [StdRng]|
         -> Result<VecDecision, String> { Err("no policy".into()) };
        let err =
            collect_episodes_vec(&mut venv, &mut failing, 3, &RolloutConfig::new(0)).unwrap_err();
        assert!(matches!(err, RolloutError::Policy(ref m) if m == "no policy"));
    }

    #[test]
    fn trace_chaining_is_consistent() {
        let template = tiny_env(6);
        let mut venv = ReplicatedVecEnv::new(&template, 3).unwrap();
        let traces =
            collect_episodes_vec(&mut venv, &mut vec_policy, 3, &RolloutConfig::new(3)).unwrap();
        for t in &traces {
            for w in t.steps.windows(2) {
                assert_eq!(w[0].next_state, w[1].state);
                assert_eq!(w[0].next_observations, w[1].observations);
            }
            let m = t.metrics();
            assert_eq!(m.len, t.steps.len());
            assert!((m.total_reward - t.total_reward()).abs() < 1e-12);
        }
    }
}
