//! Parameter-prebound schedules: trig hoisted out of the per-circuit loop.
//!
//! During rollout collection the policy parameters are **frozen**: every
//! circuit of a collection runs the same compiled schedule under the same
//! parameter vector, varying only in its input (observation) angles. For
//! the paper's actor that means ~42 of ~46 rotation angles are identical
//! across every evaluation — yet the plain executor re-resolves each
//! angle and recomputes its half-angle sine/cosine for every circuit.
//!
//! [`prebind`] resolves a `(CompiledCircuit, params)` pair once: every
//! rotation whose angle does not reference an input slot collapses to a
//! precomputed `(sin θ/2, cos θ/2)` pair ([`PreOp::RotSC`]), and only
//! input-dependent rotations stay symbolic. [`run_prebound`] then
//! evaluates circuits with per-rotation trig only where an observation
//! actually enters — on the paper's shapes that cuts the dominant
//! trig cost of vectorized rollout by roughly the ansatz/encoder ratio.
//!
//! **Exactness.** Prebinding reorders no floating-point operation: angles
//! resolve through the same [`FusedAngle::value`] and kernels consume the
//! same `sin_cos()` results the plain path computes internally, so
//! prebound outputs are **bit-identical** to [`crate::exec::run_compiled`]
//! (asserted in this module's tests and by the vectorized-rollout
//! equivalence suite).

use qmarl_qsim::apply;
use qmarl_qsim::complex::Complex64;
use qmarl_qsim::gate::{Gate1, Gate2, RotationAxis};
use qmarl_qsim::rows;
use qmarl_qsim::state::StateVector;

use crate::compile::{CGate, CompiledCircuit, FusedAngle};
use crate::error::RuntimeError;

/// One gate of a prebound schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum PreOp {
    /// A rotation whose angle was fully resolved at prebind time; carries
    /// the precomputed half-angle `(sin, cos)`.
    RotSC {
        /// Target wire.
        qubit: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// `sin(θ/2)`.
        s: f64,
        /// `cos(θ/2)`.
        c: f64,
    },
    /// A controlled rotation resolved at prebind time.
    CRotSC {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// `sin(θ/2)`.
        s: f64,
        /// `cos(θ/2)`.
        c: f64,
    },
    /// An input-dependent rotation, still symbolic.
    Rot {
        /// Target wire.
        qubit: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression (may mix input and parameter terms).
        angle: FusedAngle,
    },
    /// An input-dependent controlled rotation, still symbolic.
    CRot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression.
        angle: FusedAngle,
    },
    /// CNOT (amplitude-swap fast path).
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
    /// Controlled-Z (diagonal sign-flip fast path).
    Cz {
        /// First wire.
        control: usize,
        /// Second wire.
        target: usize,
    },
    /// A fixed single-qubit unitary.
    Fixed {
        /// Target wire.
        qubit: usize,
        /// Concrete unitary.
        gate: Gate1,
    },
    /// A fixed two-qubit unitary (compile-time entangler fusion product).
    Fixed2 {
        /// First wire — bit 0 of the matrix index.
        qa: usize,
        /// Second wire — bit 1 of the matrix index.
        qb: usize,
        /// Concrete two-qubit unitary in `(qa, qb)` orientation.
        gate: Gate2,
    },
}

/// A compiled schedule bound to one frozen parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PreboundCircuit {
    n_qubits: usize,
    n_inputs: usize,
    params: Vec<f64>,
    ops: Vec<PreOp>,
}

impl PreboundCircuit {
    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Expected input-vector length.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The frozen parameter vector this schedule was bound with.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Number of rotations whose trig was hoisted (diagnostic).
    pub fn resolved_rotations(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PreOp::RotSC { .. } | PreOp::CRotSC { .. }))
            .count()
    }
}

/// Binds a compiled schedule to a frozen parameter vector, hoisting every
/// parameter-only rotation's trig out of the per-circuit loop.
///
/// # Errors
///
/// Returns [`RuntimeError::ParamLenMismatch`] when `params` does not match
/// the compiled arity.
pub fn prebind(
    compiled: &CompiledCircuit,
    params: &[f64],
) -> Result<PreboundCircuit, RuntimeError> {
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    let ops = compiled
        .fused_schedule()
        .iter()
        .map(|gate| match gate {
            CGate::Rot { qubit, axis, angle } => {
                if angle.depends_on_inputs() {
                    PreOp::Rot {
                        qubit: *qubit,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    // No input slot is referenced, so the empty slice can
                    // never be indexed; the resolved θ and its sin_cos are
                    // the exact values the plain path would compute.
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    PreOp::RotSC {
                        qubit: *qubit,
                        axis: *axis,
                        s,
                        c,
                    }
                }
            }
            CGate::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                if angle.depends_on_inputs() {
                    PreOp::CRot {
                        control: *control,
                        target: *target,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    PreOp::CRotSC {
                        control: *control,
                        target: *target,
                        axis: *axis,
                        s,
                        c,
                    }
                }
            }
            CGate::Cnot { control, target } => PreOp::Cnot {
                control: *control,
                target: *target,
            },
            CGate::Cz { control, target } => PreOp::Cz {
                control: *control,
                target: *target,
            },
            CGate::Fixed { qubit, gate } => PreOp::Fixed {
                qubit: *qubit,
                gate: *gate,
            },
            CGate::Fixed2 { qa, qb, gate } => PreOp::Fixed2 {
                qa: *qa,
                qb: *qb,
                gate: *gate,
            },
        })
        .collect();
    Ok(PreboundCircuit {
        n_qubits: compiled.n_qubits(),
        n_inputs: compiled.n_inputs(),
        params: params.to_vec(),
        ops,
    })
}

/// Runs a prebound schedule from `|0…0⟩` with **no** input validation
/// (callers validate once per batch).
pub(crate) fn run_prebound_unchecked(pb: &PreboundCircuit, inputs: &[f64]) -> StateVector {
    let mut state = StateVector::zero(pb.n_qubits);
    let amps = state.amplitudes_mut();
    for op in &pb.ops {
        match op {
            PreOp::RotSC { qubit, axis, s, c } => match axis {
                RotationAxis::X => apply::apply_rx_sc(amps, *qubit, *s, *c),
                RotationAxis::Y => apply::apply_ry_sc(amps, *qubit, *s, *c),
                RotationAxis::Z => apply::apply_rz_sc(amps, *qubit, *s, *c),
            },
            PreOp::CRotSC {
                control,
                target,
                axis,
                s,
                c,
            } => match axis {
                RotationAxis::X => apply::apply_crx_sc(amps, *control, *target, *s, *c),
                RotationAxis::Y => apply::apply_cry_sc(amps, *control, *target, *s, *c),
                RotationAxis::Z => apply::apply_crz_sc(amps, *control, *target, *s, *c),
            },
            PreOp::Rot { qubit, axis, angle } => {
                let theta = angle.value(inputs, &pb.params);
                match axis {
                    RotationAxis::X => apply::apply_rx(amps, *qubit, theta),
                    RotationAxis::Y => apply::apply_ry(amps, *qubit, theta),
                    RotationAxis::Z => apply::apply_rz(amps, *qubit, theta),
                }
            }
            PreOp::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                let theta = angle.value(inputs, &pb.params);
                match axis {
                    RotationAxis::X => apply::apply_crx(amps, *control, *target, theta),
                    RotationAxis::Y => apply::apply_cry(amps, *control, *target, theta),
                    RotationAxis::Z => apply::apply_crz(amps, *control, *target, theta),
                }
            }
            PreOp::Cnot { control, target } => apply::apply_cnot(amps, *control, *target),
            PreOp::Cz { control, target } => apply::apply_cz(amps, *control, *target),
            PreOp::Fixed { qubit, gate } => apply::apply_gate1(amps, *qubit, gate),
            PreOp::Fixed2 { qa, qb, gate } => apply::apply_gate2(amps, *qa, *qb, gate),
        }
    }
    state
}

/// Runs a prebound schedule from `|0…0⟩`, returning the final state.
///
/// # Errors
///
/// Returns [`RuntimeError::InputLenMismatch`] when `inputs` does not match
/// the bound arity.
pub fn run_prebound(pb: &PreboundCircuit, inputs: &[f64]) -> Result<StateVector, RuntimeError> {
    if inputs.len() != pb.n_inputs {
        return Err(RuntimeError::InputLenMismatch {
            expected: pb.n_inputs,
            actual: inputs.len(),
        });
    }
    Ok(run_prebound_unchecked(pb, inputs))
}

// ---------------------------------------------------------------------
// Lane-slab execution: many circuits through one schedule walk.
//
// The slab stores `L` statevectors transposed — `slab[amp · L + lane]` —
// so each gate is dispatched **once** and its update runs over contiguous
// per-amplitude lane rows. Every lane sees exactly the arithmetic of the
// per-circuit kernels (the update formulas below are copied verbatim from
// `qsim::apply`), so slab execution is bit-identical to running each lane
// alone; only the loop nesting changes.
// ---------------------------------------------------------------------

/// Disjoint mutable views of amplitude rows `i0 < i1` (shared with the
/// superoperator and trajectory executors).
#[inline]
pub(crate) fn rows_mut(
    slab: &mut [Complex64],
    lanes: usize,
    i0: usize,
    i1: usize,
) -> (&mut [Complex64], &mut [Complex64]) {
    debug_assert!(i0 < i1);
    let (head, tail) = slab.split_at_mut(i1 * lanes);
    (&mut head[i0 * lanes..(i0 + 1) * lanes], &mut tail[..lanes])
}

// Gate updates delegate to `qsim::rows` slab kernels — one SIMD dispatch
// per gate, pair loop inside the kernel, with scalar paths that are the
// exact formulas this module historically inlined (and AVX2 paths
// bit-identical to those; see `qsim::simd`).

#[inline]
#[allow(clippy::too_many_arguments)]
fn rot_slab(
    axis: RotationAxis,
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    s: f64,
    c: f64,
) {
    match axis {
        RotationAxis::X => rows::rot_x_slab(slab, lanes, dim, mt, mc, s, c),
        RotationAxis::Y => rows::rot_y_slab(slab, lanes, dim, mt, mc, s, c),
        RotationAxis::Z => unreachable!("Rz is diagonal; handled per amplitude row"),
    }
}

#[inline]
fn rot_slab_lanes(
    axis: RotationAxis,
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    trig: &[(f64, f64)],
) {
    match axis {
        RotationAxis::X => rows::rot_x_slab_lanes(slab, lanes, dim, mt, mc, trig),
        RotationAxis::Y => rows::rot_y_slab_lanes(slab, lanes, dim, mt, mc, trig),
        RotationAxis::Z => unreachable!("Rz is diagonal; handled per amplitude row"),
    }
}

/// Fills per-lane `(pr, pi)` phase pairs for the two Rz row classes from
/// per-lane `(s, c)` trig: bit-clear rows multiply by `(c, −s)`, bit-set
/// rows by `(c, s)` — the exact factors the inlined Rz row loops used.
#[inline]
fn z_phase_classes(trig: &[(f64, f64)], lo: &mut Vec<(f64, f64)>, hi: &mut Vec<(f64, f64)>) {
    lo.clear();
    hi.clear();
    for &(s, c) in trig {
        lo.push((c, -s));
        hi.push((c, s));
    }
}

/// Per-lane `(sin, cos)` pairs of an input-dependent rotation, resolved
/// with the exact arithmetic of the per-circuit path.
#[inline]
fn lane_trig(angle: &FusedAngle, inputs: &[&[f64]], params: &[f64], out: &mut Vec<(f64, f64)>) {
    out.clear();
    out.extend(inputs.iter().map(|lane_inputs| {
        let theta = angle.value(lane_inputs, params);
        (theta / 2.0).sin_cos()
    }));
}

/// Runs a prebound schedule over all `inputs` lanes in one schedule walk,
/// returning each lane's final state (bit-identical to per-lane
/// [`run_prebound`]; input lengths are the caller's responsibility).
/// The executor consumes the raw slab directly; this materialised form
/// is the equivalence-test surface.
#[cfg(test)]
pub(crate) fn run_prebound_slab(pb: &PreboundCircuit, inputs: &[&[f64]]) -> Vec<StateVector> {
    let lanes = inputs.len();
    let slab = run_prebound_slab_raw(pb, inputs);
    (0..lanes)
        .map(|lane| {
            let mut state = StateVector::zero(pb.n_qubits);
            let amps = state.amplitudes_mut();
            for (i, amp) in amps.iter_mut().enumerate() {
                *amp = slab[i * lanes + lane];
            }
            state
        })
        .collect()
}

/// Evaluates a readout for **every** lane in a single pass over the
/// transposed slab, with exactly the arithmetic (and summation order) of
/// `Readout::evaluate` over per-lane statevectors — each `(qubit, lane)`
/// ⟨Z⟩ accumulator folds `±|a|²` in ascending amplitude order, and the
/// weighted sum folds over qubits afterwards, so every lane's result is
/// bit-identical to the old per-lane walk while touching the slab once
/// instead of `lanes × outputs` times. Guarded bit-exact against the
/// plain path by the executor's prebound batch test.
pub(crate) fn readouts_from_slab(
    readout: &qmarl_vqc::observable::Readout,
    slab: &[Complex64],
    lanes: usize,
) -> Vec<Vec<f64>> {
    use qmarl_vqc::observable::Readout;
    if lanes == 0 {
        return Vec::new();
    }
    let dim = slab.len() / lanes;
    let qs: Vec<usize> = match readout {
        Readout::ZPerQubit { qubits } => qubits.clone(),
        Readout::WeightedZSum { weights } => (0..weights.len()).collect(),
    };
    // ez[k · lanes + lane] = ⟨Z_{qs[k]}⟩ of lane — |a|² computed once per
    // cell and reused across qubits (same value either way).
    let mut ez = vec![0.0f64; qs.len() * lanes];
    for i in 0..dim {
        let row = &slab[i * lanes..(i + 1) * lanes];
        for (lane, a) in row.iter().enumerate() {
            let n = a.norm_sqr();
            for (k, &q) in qs.iter().enumerate() {
                if i & (1usize << q) == 0 {
                    ez[k * lanes + lane] += n;
                } else {
                    ez[k * lanes + lane] -= n;
                }
            }
        }
    }
    match readout {
        Readout::ZPerQubit { .. } => (0..lanes)
            .map(|lane| (0..qs.len()).map(|k| ez[k * lanes + lane]).collect())
            .collect(),
        Readout::WeightedZSum { weights } => (0..lanes)
            .map(|lane| {
                let mut acc = 0.0;
                for (k, w) in weights.iter().enumerate() {
                    acc += w * ez[k * lanes + lane];
                }
                vec![acc]
            })
            .collect(),
    }
}

/// The slab itself, `slab[amp · lanes + lane]`, after the schedule walk.
pub(crate) fn run_prebound_slab_raw(pb: &PreboundCircuit, inputs: &[&[f64]]) -> Vec<Complex64> {
    let lanes = inputs.len();
    if lanes == 0 {
        return Vec::new();
    }
    let dim = 1usize << pb.n_qubits;
    let mut slab = vec![Complex64::ZERO; dim * lanes];
    for cell in slab[..lanes].iter_mut() {
        *cell = Complex64::ONE; // every lane starts in |0…0⟩
    }
    let mut trig: Vec<(f64, f64)> = Vec::with_capacity(lanes);
    let mut zlo: Vec<(f64, f64)> = Vec::with_capacity(lanes);
    let mut zhi: Vec<(f64, f64)> = Vec::with_capacity(lanes);

    for op in &pb.ops {
        match op {
            PreOp::RotSC { qubit, axis, s, c } => match axis {
                RotationAxis::Z => {
                    let mt = 1usize << qubit;
                    rows::phase_slab(&mut slab, lanes, dim, mt, 0, (*c, -*s), (*c, *s));
                }
                _ => rot_slab(*axis, &mut slab, lanes, dim, 1usize << qubit, 0, *s, *c),
            },
            PreOp::Rot { qubit, axis, angle } => {
                lane_trig(angle, inputs, &pb.params, &mut trig);
                let mt = 1usize << qubit;
                match axis {
                    RotationAxis::Z => {
                        z_phase_classes(&trig, &mut zlo, &mut zhi);
                        rows::phase_slab_lanes(&mut slab, lanes, dim, mt, 0, &zlo, &zhi);
                    }
                    _ => rot_slab_lanes(*axis, &mut slab, lanes, dim, mt, 0, &trig),
                }
            }
            PreOp::CRotSC {
                control,
                target,
                axis,
                s,
                c,
            } => {
                let mc = 1usize << control;
                let mt = 1usize << target;
                match axis {
                    RotationAxis::Z => {
                        rows::phase_slab(&mut slab, lanes, dim, mt, mc, (*c, -*s), (*c, *s));
                    }
                    _ => rot_slab(*axis, &mut slab, lanes, dim, mt, mc, *s, *c),
                }
            }
            PreOp::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                lane_trig(angle, inputs, &pb.params, &mut trig);
                let mc = 1usize << control;
                let mt = 1usize << target;
                match axis {
                    RotationAxis::Z => {
                        z_phase_classes(&trig, &mut zlo, &mut zhi);
                        rows::phase_slab_lanes(&mut slab, lanes, dim, mt, mc, &zlo, &zhi);
                    }
                    _ => rot_slab_lanes(*axis, &mut slab, lanes, dim, mt, mc, &trig),
                }
            }
            PreOp::Cnot { control, target } => {
                let mc = 1usize << control;
                let mt = 1usize << target;
                for i in 0..dim {
                    if i & mc == 0 || i & mt != 0 {
                        continue;
                    }
                    let (r0, r1) = rows_mut(&mut slab, lanes, i, i | mt);
                    r0.swap_with_slice(r1);
                }
            }
            PreOp::Cz { control, target } => {
                let mask = (1usize << control) | (1usize << target);
                for i in 0..dim {
                    if i & mask != mask {
                        continue;
                    }
                    for a in slab[i * lanes..(i + 1) * lanes].iter_mut() {
                        *a = -*a;
                    }
                }
            }
            PreOp::Fixed { qubit, gate } => {
                rows::gate1_slab(&mut slab, lanes, dim, 1usize << qubit, gate);
            }
            PreOp::Fixed2 { qa, qb, gate } => {
                apply_gate2_slab(&mut slab, lanes, dim, *qa, *qb, gate);
            }
        }
    }

    slab
}

/// Applies a concrete two-qubit unitary to every lane of the slab.
///
/// Mirrors `qsim::apply::apply_gate2`'s scalar arithmetic exactly: for each
/// both-bits-clear base index (ascending), gather the four amplitudes and
/// rebuild each via the same `mul_acc` chain from `+0`, in column order.
fn apply_gate2_slab(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    qa: usize,
    qb: usize,
    gate: &Gate2,
) {
    let m = gate.matrix();
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    for i in 0..dim {
        if i & (ma | mb) != 0 {
            continue;
        }
        let idx = [i, i | ma, i | mb, i | ma | mb];
        for lane in 0..lanes {
            let v = [
                slab[idx[0] * lanes + lane],
                slab[idx[1] * lanes + lane],
                slab[idx[2] * lanes + lane],
                slab[idx[3] * lanes + lane],
            ];
            for (r, &ix) in idx.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (col, &vc) in v.iter().enumerate() {
                    acc = m[r][col].mul_acc(vc, acc);
                }
                slab[ix * lanes + lane] = acc;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Prebound adjoint differentiation: the training hot path.
//
// The serial adjoint (`qmarl_vqc::grad::jacobian_adjoint`) walks the raw
// op list once forward and once backward, rebuilding every rotation's
// trig (and its inverse's trig) from scratch on every sample, through the
// generic 2×2 gate interpreter. During an update sweep the parameters are
// frozen, so — exactly like [`prebind`] for the forward path — all
// parameter-only trig can be hoisted out of the per-sample loop, and the
// whole minibatch can share one schedule walk per lane slab, reusing the
// forward amplitude slab as the starting point of the reverse sweep.
//
// **Exactness.** The per-lane arithmetic below replicates the serial
// interpreter *value for value*:
//
// * hoisted trig pairs are the exact values `Gate1::rx/ry/rz` compute —
//   in particular `Gate1::rz` builds its phases via `from_polar(1, ∓θ/2)`
//   and the inverse gate is built from the *negated angle*, so the
//   hoisted pairs are recomputed from `−θ` rather than derived by sign
//   flips (bitwise equality must not assume libm symmetry);
// * the specialised pair/phase updates are value-identical to the generic
//   complex 2×2 product against rotation matrices (the dropped terms are
//   exact-zero products, and IEEE-754 makes `x·(−s) ≡ −(x·s)` and
//   `a + (−t) ≡ a − t` exact);
// * reductions (inner products, ⟨Z⟩ readouts) fold in amplitude order,
//   matching the serial folds.
//
// `run_adjoint_slab` is therefore bit-identical (as `f64` values) to
// per-sample `jacobian_adjoint` calls — asserted against the vqc engine
// in this module's tests and end-to-end by the trainer equivalence suite.
// ---------------------------------------------------------------------

use qmarl_vqc::grad::Jacobian;
use qmarl_vqc::observable::Readout;

/// The two diagonal phases of `Gate1::rz(θ)` exactly as the interpreter
/// builds them: `(pr0, pi0) = e^{−iθ/2}`, `(pr1, pi1) = e^{iθ/2}`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ZPhases {
    pr0: f64,
    pi0: f64,
    pr1: f64,
    pi1: f64,
}

impl ZPhases {
    fn of(theta: f64) -> Self {
        ZPhases {
            pr0: (-theta / 2.0).cos(),
            pi0: (-theta / 2.0).sin(),
            pr1: (theta / 2.0).cos(),
            pi1: (theta / 2.0).sin(),
        }
    }
}

/// `(sin θ/2, cos θ/2)` as `Gate1::rx`/`Gate1::ry` evaluate them.
fn xy_trig(theta: f64) -> (f64, f64) {
    ((theta / 2.0).sin(), (theta / 2.0).cos())
}

/// One gate of a prebound adjoint schedule (raw, unfused order).
/// Resolved rotations carry hoisted forward **and** inverse trig.
#[derive(Debug, Clone, PartialEq)]
enum AdjGate {
    /// X/Y rotation resolved at prebind time.
    RotSC {
        qubit: usize,
        axis: RotationAxis,
        fwd: (f64, f64),
        inv: (f64, f64),
    },
    /// Z rotation resolved at prebind time.
    RotZSC {
        qubit: usize,
        fwd: ZPhases,
        inv: ZPhases,
    },
    /// Input-dependent rotation (any axis), still symbolic.
    RotSym {
        qubit: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// Controlled X/Y rotation resolved at prebind time.
    CRotSC {
        control: usize,
        target: usize,
        axis: RotationAxis,
        fwd: (f64, f64),
        inv: (f64, f64),
    },
    /// Controlled Z rotation resolved at prebind time.
    CRotZSC {
        control: usize,
        target: usize,
        fwd: ZPhases,
        inv: ZPhases,
    },
    /// Input-dependent controlled rotation, still symbolic.
    CRotSym {
        control: usize,
        target: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// CNOT (self-inverse swap fast path).
    Cnot { control: usize, target: usize },
    /// CZ (self-inverse sign-flip fast path).
    Cz { control: usize, target: usize },
    /// A fixed unitary with its dagger hoisted.
    Fixed {
        qubit: usize,
        gate: Gate1,
        dag: Gate1,
    },
}

/// One op of the adjoint schedule plus its trainable-parameter slot.
#[derive(Debug, Clone, PartialEq)]
struct AdjOp {
    gate: AdjGate,
    param: Option<usize>,
}

/// A raw (unfused) schedule bound to one frozen parameter vector for
/// adjoint differentiation: forward and inverse trig of every
/// parameter-only rotation hoisted, fixed-gate daggers premultiplied,
/// trainable occurrences annotated.
#[derive(Debug, Clone, PartialEq)]
pub struct PreboundAdjoint {
    n_qubits: usize,
    n_inputs: usize,
    n_params: usize,
    params: Vec<f64>,
    ops: Vec<AdjOp>,
}

impl PreboundAdjoint {
    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Expected input-vector length.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Trainable-parameter arity (Jacobian columns).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The frozen parameter vector this schedule was bound with.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Number of rotations whose trig was hoisted (diagnostic).
    pub fn resolved_rotations(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op.gate,
                    AdjGate::RotSC { .. }
                        | AdjGate::RotZSC { .. }
                        | AdjGate::CRotSC { .. }
                        | AdjGate::CRotZSC { .. }
                )
            })
            .count()
    }
}

/// Binds the **raw** schedule of a compiled circuit to a frozen parameter
/// vector for adjoint differentiation (the adjoint sweep shifts
/// individual op occurrences, so it cannot run the fused schedule).
///
/// # Errors
///
/// Returns [`RuntimeError::ParamLenMismatch`] when `params` does not match
/// the compiled arity.
pub fn prebind_adjoint(
    compiled: &CompiledCircuit,
    params: &[f64],
) -> Result<PreboundAdjoint, RuntimeError> {
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    let mut param_of = vec![None; compiled.raw_schedule().len()];
    for occ in compiled.occurrences() {
        param_of[occ.raw_idx] = Some(occ.param);
    }
    let ops = compiled
        .raw_schedule()
        .iter()
        .enumerate()
        .map(|(k, gate)| {
            let gate = match gate {
                CGate::Rot { qubit, axis, angle } => {
                    if angle.depends_on_inputs() {
                        AdjGate::RotSym {
                            qubit: *qubit,
                            axis: *axis,
                            angle: angle.clone(),
                        }
                    } else {
                        let theta = angle.value(&[], params);
                        match axis {
                            RotationAxis::Z => AdjGate::RotZSC {
                                qubit: *qubit,
                                fwd: ZPhases::of(theta),
                                inv: ZPhases::of(-theta),
                            },
                            _ => AdjGate::RotSC {
                                qubit: *qubit,
                                axis: *axis,
                                fwd: xy_trig(theta),
                                inv: xy_trig(-theta),
                            },
                        }
                    }
                }
                CGate::CRot {
                    control,
                    target,
                    axis,
                    angle,
                } => {
                    if angle.depends_on_inputs() {
                        AdjGate::CRotSym {
                            control: *control,
                            target: *target,
                            axis: *axis,
                            angle: angle.clone(),
                        }
                    } else {
                        let theta = angle.value(&[], params);
                        match axis {
                            RotationAxis::Z => AdjGate::CRotZSC {
                                control: *control,
                                target: *target,
                                fwd: ZPhases::of(theta),
                                inv: ZPhases::of(-theta),
                            },
                            _ => AdjGate::CRotSC {
                                control: *control,
                                target: *target,
                                axis: *axis,
                                fwd: xy_trig(theta),
                                inv: xy_trig(-theta),
                            },
                        }
                    }
                }
                CGate::Cnot { control, target } => AdjGate::Cnot {
                    control: *control,
                    target: *target,
                },
                CGate::Cz { control, target } => AdjGate::Cz {
                    control: *control,
                    target: *target,
                },
                CGate::Fixed { qubit, gate } => AdjGate::Fixed {
                    qubit: *qubit,
                    gate: *gate,
                    dag: gate.dagger(),
                },
                CGate::Fixed2 { .. } => {
                    unreachable!("entangler fusion never emits Fixed2 into the raw schedule")
                }
            };
            AdjOp {
                gate,
                param: param_of[k],
            }
        })
        .collect();
    Ok(PreboundAdjoint {
        n_qubits: compiled.n_qubits(),
        n_inputs: compiled.n_inputs(),
        n_params: compiled.n_params(),
        params: params.to_vec(),
        ops,
    })
}

/// Fills the per-lane trig scratch for an input-dependent rotation (a
/// no-op for every other gate kind). Split out of the application so the
/// reverse sweep resolves each symbolic op's trig **once** and reuses it
/// across the φ and every λ un-apply — the values are identical either
/// way, only the redundant sin/cos work goes away.
fn resolve_sym_trig(
    gate: &AdjGate,
    inverse: bool,
    inputs: &[&[f64]],
    params: &[f64],
    xy: &mut Vec<(f64, f64)>,
    zlo: &mut Vec<(f64, f64)>,
    zhi: &mut Vec<(f64, f64)>,
) {
    let (axis, angle) = match gate {
        AdjGate::RotSym { axis, angle, .. } | AdjGate::CRotSym { axis, angle, .. } => {
            (*axis, angle)
        }
        _ => return,
    };
    match axis {
        RotationAxis::Z => {
            zlo.clear();
            zhi.clear();
            for li in inputs {
                let theta = angle.value(li, params);
                let z = ZPhases::of(if inverse { -theta } else { theta });
                zlo.push((z.pr0, z.pi0));
                zhi.push((z.pr1, z.pi1));
            }
        }
        _ => {
            xy.clear();
            xy.extend(inputs.iter().map(|li| {
                let theta = angle.value(li, params);
                xy_trig(if inverse { -theta } else { theta })
            }));
        }
    }
}

/// Applies one adjoint-schedule gate (or its inverse) to a lane slab.
/// `xy`/`zp` are per-lane trig scratch buffers reused across gates.
#[allow(clippy::too_many_arguments)]
fn adj_apply(
    gate: &AdjGate,
    inverse: bool,
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    inputs: &[&[f64]],
    params: &[f64],
    xy: &mut Vec<(f64, f64)>,
    zlo: &mut Vec<(f64, f64)>,
    zhi: &mut Vec<(f64, f64)>,
) {
    resolve_sym_trig(gate, inverse, inputs, params, xy, zlo, zhi);
    adj_apply_resolved(gate, inverse, slab, lanes, dim, xy, zlo, zhi);
}

/// [`adj_apply`] with any input-dependent trig already resolved into
/// `xy`/`zlo`/`zhi` by [`resolve_sym_trig`].
#[allow(clippy::too_many_arguments)]
fn adj_apply_resolved(
    gate: &AdjGate,
    inverse: bool,
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    xy: &[(f64, f64)],
    zlo: &[(f64, f64)],
    zhi: &[(f64, f64)],
) {
    match gate {
        AdjGate::RotSC {
            qubit,
            axis,
            fwd,
            inv,
            ..
        } => {
            let (s, c) = if inverse { *inv } else { *fwd };
            rot_slab(*axis, slab, lanes, dim, 1usize << qubit, 0, s, c);
        }
        AdjGate::RotZSC { qubit, fwd, inv } => {
            let z = if inverse { inv } else { fwd };
            let mt = 1usize << qubit;
            rows::phase_slab(slab, lanes, dim, mt, 0, (z.pr0, z.pi0), (z.pr1, z.pi1));
        }
        AdjGate::RotSym { qubit, axis, .. } => {
            let mt = 1usize << qubit;
            match axis {
                RotationAxis::Z => rows::phase_slab_lanes(slab, lanes, dim, mt, 0, zlo, zhi),
                _ => rot_slab_lanes(*axis, slab, lanes, dim, mt, 0, xy),
            }
        }
        AdjGate::CRotSC {
            control,
            target,
            axis,
            fwd,
            inv,
        } => {
            let (s, c) = if inverse { *inv } else { *fwd };
            let mc = 1usize << control;
            let mt = 1usize << target;
            rot_slab(*axis, slab, lanes, dim, mt, mc, s, c);
        }
        AdjGate::CRotZSC {
            control,
            target,
            fwd,
            inv,
        } => {
            let z = if inverse { inv } else { fwd };
            let mc = 1usize << control;
            let mt = 1usize << target;
            rows::phase_slab(slab, lanes, dim, mt, mc, (z.pr0, z.pi0), (z.pr1, z.pi1));
        }
        AdjGate::CRotSym {
            control,
            target,
            axis,
            ..
        } => {
            let mc = 1usize << control;
            let mt = 1usize << target;
            match axis {
                RotationAxis::Z => rows::phase_slab_lanes(slab, lanes, dim, mt, mc, zlo, zhi),
                _ => rot_slab_lanes(*axis, slab, lanes, dim, mt, mc, xy),
            }
        }
        AdjGate::Cnot { control, target } => {
            let mc = 1usize << control;
            let mt = 1usize << target;
            for i in 0..dim {
                if i & mc == 0 || i & mt != 0 {
                    continue;
                }
                let (r0, r1) = rows_mut(slab, lanes, i, i | mt);
                r0.swap_with_slice(r1);
            }
        }
        AdjGate::Cz { control, target } => {
            let mask = (1usize << control) | (1usize << target);
            for i in 0..dim {
                if i & mask != mask {
                    continue;
                }
                for a in slab[i * lanes..(i + 1) * lanes].iter_mut() {
                    *a = -*a;
                }
            }
        }
        AdjGate::Fixed { qubit, gate, dag } => {
            let g = if inverse { dag } else { gate };
            rows::gate1_slab(slab, lanes, dim, 1usize << qubit, g);
        }
    }
}

/// An output observable of the adjoint sweep (λ construction). Shared
/// with the trajectory adjoint in [`crate::trajectory`].
pub(crate) enum SlabObservable {
    SingleZ(usize),
    WeightedZ(Vec<f64>),
}

impl SlabObservable {
    /// The λ observables of a readout, in output order.
    pub(crate) fn of_readout(readout: &Readout) -> Vec<SlabObservable> {
        match readout {
            Readout::ZPerQubit { qubits } => {
                qubits.iter().map(|&q| SlabObservable::SingleZ(q)).collect()
            }
            Readout::WeightedZSum { weights } => vec![SlabObservable::WeightedZ(weights.clone())],
        }
    }

    /// `O|ψ⟩` over a whole lane slab, mirroring the serial observable
    /// application amplitude for amplitude.
    pub(crate) fn apply_slab(&self, slab: &[Complex64], lanes: usize) -> Vec<Complex64> {
        let mut out = slab.to_vec();
        let dim = slab.len() / lanes.max(1);
        match self {
            SlabObservable::SingleZ(q) => {
                let mask = 1usize << q;
                for i in 0..dim {
                    if i & mask != 0 {
                        for a in out[i * lanes..(i + 1) * lanes].iter_mut() {
                            *a = -*a;
                        }
                    }
                }
            }
            SlabObservable::WeightedZ(weights) => {
                for i in 0..dim {
                    let mut coeff = 0.0;
                    for (q, w) in weights.iter().enumerate() {
                        let sign = if i & (1usize << q) == 0 { 1.0 } else { -1.0 };
                        coeff += w * sign;
                    }
                    for (a, &src) in out[i * lanes..(i + 1) * lanes]
                        .iter_mut()
                        .zip(&slab[i * lanes..(i + 1) * lanes])
                    {
                        *a = src.scale(coeff);
                    }
                }
            }
        }
        out
    }
}

/// Accumulates `Im⟨λ_j|G|φ⟩` into `accs[j·lanes + lane]` for every
/// `(output, lane)` pair, where `G` is the generator of the parameterised
/// rotation (`U = exp(−iθG/2)`, with a `|1⟩⟨1|` control projector for
/// controlled rotations) — **without materialising `G|φ⟩`**. The old
/// reduction copied the full φ slab per trainable occurrence and rewrote
/// it with the generator; here each generator row is rebuilt from φ on
/// the fly, one `dim × lanes` sweep per occurrence with zero copies.
///
/// Bit-exactness vs. the slab-materialising reduction:
///
/// * the Pauli row maps replicate `apply_pauli` value for value —
///   `X: (Gφ)ᵢ = φ_{i⊕mt}`; `Y: (Gφ)ᵢ = (x.im, −x.re)` from `x = φ_{i⊕mt}`
///   on target-clear rows and `(−x.im, x.re)` on target-set rows;
///   `Z: (Gφ)ᵢ = ±φᵢ` — unary `f64` negation is an exact sign flip;
/// * control-clear rows are skipped rather than folded as zeros: every
///   accumulator starts `+0.0` and adding `±0.0` to a `+0.0`-or-nonzero
///   `f64` never changes it (and no nonzero fold ever yields `−0.0`), so
///   skipping those terms is bit-free;
/// * `(λ*·g).im ≡ λ.re·g.im − λ.im·g.re` because `(−a)·b ≡ −(a·b)` and
///   `x + (−t) ≡ x − t` are exact in IEEE-754;
/// * per `(j, lane)` the fold still runs in ascending amplitude order —
///   the row-major multi-λ sweep reorders only *distinct* accumulators,
///   never the terms within one;
/// * the sweep itself is `rows::adj_acc_slab_multi`, which builds each
///   generator row once and folds every λ against it; its AVX2 path uses
///   exact sign flips and folds each lane with the scalar
///   `mul, mul, sub, add` (`hsub` subtracts the same two products) —
///   bit-identical by construction and asserted in its parity test.
fn accumulate_generator_im(
    gate: &AdjGate,
    phi: &[Complex64],
    lambdas: &[&[Complex64]],
    lanes: usize,
    dim: usize,
    accs: &mut [f64],
    gbuf: &mut [Complex64],
) {
    let (control, target, axis) = match *gate {
        AdjGate::RotSC { qubit, axis, .. } | AdjGate::RotSym { qubit, axis, .. } => {
            (None, qubit, axis)
        }
        AdjGate::RotZSC { qubit, .. } => (None, qubit, RotationAxis::Z),
        AdjGate::CRotSC {
            control,
            target,
            axis,
            ..
        }
        | AdjGate::CRotSym {
            control,
            target,
            axis,
            ..
        } => (Some(control), target, axis),
        AdjGate::CRotZSC {
            control, target, ..
        } => (Some(control), target, RotationAxis::Z),
        _ => unreachable!("generator requested for non-parameterised op"),
    };
    let mt = 1usize << target;
    let mc = control.map_or(0, |c| 1usize << c);
    match axis {
        RotationAxis::X => rows::adj_acc_slab_multi::<{ rows::AXIS_X }>(
            accs, lambdas, phi, gbuf, lanes, dim, mt, mc,
        ),
        RotationAxis::Y => rows::adj_acc_slab_multi::<{ rows::AXIS_Y }>(
            accs, lambdas, phi, gbuf, lanes, dim, mt, mc,
        ),
        RotationAxis::Z => rows::adj_acc_slab_multi::<{ rows::AXIS_Z }>(
            accs, lambdas, phi, gbuf, lanes, dim, mt, mc,
        ),
    }
}

/// Runs the adjoint sweep over all `inputs` lanes in one pair of schedule
/// walks (forward, then reverse reusing the forward slab), returning each
/// lane's `(raw readout vector, circuit-parameter Jacobian)`.
///
/// Bit-identical per lane to `readout.evaluate(vqc::exec::run(…))` plus
/// `qmarl_vqc::grad::jacobian_adjoint` — input lengths and the readout are
/// the caller's responsibility (the executor validates once per batch).
pub(crate) fn run_adjoint_slab(
    pa: &PreboundAdjoint,
    readout: &Readout,
    inputs: &[&[f64]],
) -> Vec<(Vec<f64>, Jacobian)> {
    let lanes = inputs.len();
    if lanes == 0 {
        return Vec::new();
    }
    let dim = 1usize << pa.n_qubits;
    let n_out = readout.output_len();
    let mut xy: Vec<(f64, f64)> = Vec::with_capacity(lanes);
    let mut zlo: Vec<(f64, f64)> = Vec::with_capacity(lanes);
    let mut zhi: Vec<(f64, f64)> = Vec::with_capacity(lanes);

    // Forward walk over the raw (unfused) schedule: the serial adjoint
    // differentiates the op list 1:1, so no fusion here either.
    let mut phi = vec![Complex64::ZERO; dim * lanes];
    for cell in phi[..lanes].iter_mut() {
        *cell = Complex64::ONE;
    }
    for op in &pa.ops {
        adj_apply(
            &op.gate, false, &mut phi, lanes, dim, inputs, &pa.params, &mut xy, &mut zlo, &mut zhi,
        );
    }

    let outs = readouts_from_slab(readout, &phi, lanes);

    // λ_j = O_j |ψ⟩ per output observable, then the reverse sweep.
    let observables = SlabObservable::of_readout(readout);
    let mut lambdas: Vec<Vec<Complex64>> = observables
        .iter()
        .map(|o| o.apply_slab(&phi, lanes))
        .collect();

    let mut jacs = vec![Jacobian::zeros(n_out, pa.n_params); lanes];
    let mut accs = vec![0.0f64; n_out * lanes];
    let mut gbuf = vec![Complex64::new(0.0, 0.0); lanes];
    // The reverse sweep only exists to serve the accumulates: states
    // before the first parameterised op (the input-encoder prefix) are
    // never read, so the sweep ends right after that op's contribution
    // instead of un-applying the prefix through φ and every λ.
    let Some(first_param) = pa.ops.iter().position(|op| op.param.is_some()) else {
        return outs.into_iter().zip(jacs).collect();
    };
    for (k, op) in pa.ops.iter().enumerate().rev() {
        // Contribution uses φ = ψ_k (state *after* gate k) and λ = λ_k,
        // exactly like the serial sweep: ∂E/∂θ += Im⟨λ_k|G|ψ_k⟩.
        if let Some(p) = op.param {
            accs.fill(0.0);
            let lrefs: Vec<&[Complex64]> = lambdas.iter().map(|l| l.as_slice()).collect();
            accumulate_generator_im(&op.gate, &phi, &lrefs, lanes, dim, &mut accs, &mut gbuf);
            for (lane, jac) in jacs.iter_mut().enumerate() {
                for j in 0..n_out {
                    *jac.get_mut(j, p) += accs[j * lanes + lane];
                }
            }
        }
        if k == first_param {
            break;
        }
        // Un-apply the gate from φ and every λ, resolving any
        // input-dependent trig once for all of them.
        resolve_sym_trig(
            &op.gate, true, inputs, &pa.params, &mut xy, &mut zlo, &mut zhi,
        );
        adj_apply_resolved(&op.gate, true, &mut phi, lanes, dim, &xy, &zlo, &zhi);
        for lam in &mut lambdas {
            adj_apply_resolved(&op.gate, true, lam, lanes, dim, &xy, &zlo, &zhi);
        }
    }
    outs.into_iter().zip(jacs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::run_compiled;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ansatz::{init_params, layered_ansatz};
    use qmarl_vqc::encoder::layered_angle_encoder;
    use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

    fn actor_circuit() -> Circuit {
        let mut c = layered_angle_encoder(4, 4).unwrap();
        c.append_shifted(&layered_ansatz(4, 42).unwrap()).unwrap();
        c
    }

    #[test]
    fn prebound_matches_compiled_bit_exactly() {
        let circuit = actor_circuit();
        let compiled = compile(&circuit);
        let params = init_params(circuit.param_count(), 11);
        let pb = prebind(&compiled, &params).unwrap();
        assert!(pb.resolved_rotations() >= 40, "ansatz must be hoisted");
        for b in 0..8 {
            let inputs: Vec<f64> = (0..4).map(|i| 0.09 * (b * 4 + i) as f64 - 0.6).collect();
            let fast = run_prebound(&pb, &inputs).unwrap();
            let reference = run_compiled(&compiled, &inputs, &params).unwrap();
            assert_eq!(
                fast.amplitudes(),
                reference.amplitudes(),
                "prebound execution must be bit-identical"
            );
        }
    }

    #[test]
    fn mixed_input_param_angles_stay_symbolic_and_exact() {
        // Adjacent same-axis rotations fuse; an input rotation followed by
        // a parameter rotation on one wire produces a mixed Sum angle that
        // prebinding must leave symbolic.
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Y, Angle::Input(InputId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.fixed(1, FixedGate::H).unwrap();
        c.controlled_rot(0, 1, Ax::Z, Angle::Param(ParamId(1)))
            .unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(1, Ax::X, Angle::Const(0.4)).unwrap();
        let compiled = compile(&c);
        let params = [0.7, -1.1];
        let pb = prebind(&compiled, &params).unwrap();
        // The fused Y rotation depends on input 0 → symbolic; the CRz and
        // the constant Rx resolve.
        assert_eq!(pb.resolved_rotations(), 2);
        for x in [-0.9, 0.0, 1.3] {
            let fast = run_prebound(&pb, &[x]).unwrap();
            let reference = run_compiled(&compiled, &[x], &params).unwrap();
            assert_eq!(fast.amplitudes(), reference.amplitudes());
        }
    }

    #[test]
    fn slab_execution_is_bit_identical_to_per_lane() {
        let circuit = actor_circuit();
        let compiled = compile(&circuit);
        let params = init_params(circuit.param_count(), 5);
        let pb = prebind(&compiled, &params).unwrap();
        let inputs: Vec<Vec<f64>> = (0..7)
            .map(|b| (0..4).map(|i| 0.11 * (b * 4 + i) as f64 - 0.8).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let slab = run_prebound_slab(&pb, &refs);
        assert_eq!(slab.len(), 7);
        for (item, state) in refs.iter().zip(&slab) {
            let single = run_prebound(&pb, item).unwrap();
            assert_eq!(state.amplitudes(), single.amplitudes());
        }
        assert!(run_prebound_slab(&pb, &[]).is_empty());
    }

    #[test]
    fn slab_handles_every_gate_kind_bit_exactly() {
        // CRot on every axis, CZ, CNOT, fixed gates and a mixed fused
        // angle, across several lanes.
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(1))).unwrap();
        c.rot(1, Ax::Z, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(1)))
            .unwrap();
        c.controlled_rot(1, 2, Ax::Y, Angle::Param(ParamId(2)))
            .unwrap();
        c.controlled_rot(2, 0, Ax::Z, Angle::Input(InputId(0)))
            .unwrap();
        c.cnot(0, 2).unwrap();
        c.cz(1, 2).unwrap();
        c.rot(2, Ax::Y, Angle::Const(-0.9)).unwrap();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7];
        let pb = prebind(&compiled, &params).unwrap();
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|b| vec![0.3 * b as f64 - 0.7, 0.2 * b as f64])
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for (item, state) in refs.iter().zip(run_prebound_slab(&pb, &refs)) {
            let single = run_prebound(&pb, item).unwrap();
            assert_eq!(state.amplitudes(), single.amplitudes());
        }
    }

    /// The serial reference the adjoint engine must match bit-for-bit:
    /// interpreter forward + readout + `jacobian_adjoint`.
    fn serial_adjoint_reference(
        circuit: &Circuit,
        readout: &qmarl_vqc::observable::Readout,
        inputs: &[f64],
        params: &[f64],
    ) -> (Vec<f64>, Jacobian) {
        let state = qmarl_vqc::exec::run(circuit, inputs, params).unwrap();
        let out = readout.evaluate(&state).unwrap();
        let jac = qmarl_vqc::grad::jacobian_adjoint(circuit, readout, inputs, params).unwrap();
        (out, jac)
    }

    #[test]
    fn adjoint_slab_is_bit_identical_to_serial_adjoint() {
        // The paper's actor shape: layered encoder + ansatz, Z readout on
        // every wire. Hoisted trig + slab execution must reproduce the
        // vqc interpreter's values exactly, for any lane count.
        let circuit = actor_circuit();
        let compiled = compile(&circuit);
        let params = init_params(circuit.param_count(), 33);
        let readout = qmarl_vqc::observable::Readout::z_all(4);
        let pa = prebind_adjoint(&compiled, &params).unwrap();
        assert!(pa.resolved_rotations() >= 40, "ansatz must be hoisted");
        assert_eq!(pa.n_params(), circuit.param_count());

        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|b| (0..4).map(|i| 0.13 * (b * 4 + i) as f64 - 0.9).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let slab = run_adjoint_slab(&pa, &readout, &refs);
        assert_eq!(slab.len(), 6);
        for (item, (out, jac)) in refs.iter().zip(&slab) {
            let (out_ref, jac_ref) = serial_adjoint_reference(&circuit, &readout, item, &params);
            assert_eq!(*out, out_ref, "forward readout must be bit-identical");
            assert_eq!(*jac, jac_ref, "adjoint Jacobian must be bit-identical");
        }
        // Lane-count invariance: a 1-lane slab reproduces every lane of
        // the wide slab exactly.
        for (item, wide) in refs.iter().zip(&slab) {
            let single = run_adjoint_slab(&pa, &readout, &[item]);
            assert_eq!(single[0], *wide);
        }
        assert!(run_adjoint_slab(&pa, &readout, &[]).is_empty());
    }

    #[test]
    fn adjoint_slab_handles_every_gate_kind_and_weighted_readout() {
        // Rotations on every axis (input-dependent and parameterised,
        // plain and controlled), CNOT, CZ, fixed gates, a shared
        // parameter, and the critic's weighted-Z scalar readout.
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(1))).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.rot(2, Ax::Z, Angle::Param(ParamId(1))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(2)))
            .unwrap();
        c.controlled_rot(1, 2, Ax::Y, Angle::Param(ParamId(3)))
            .unwrap();
        c.controlled_rot(2, 0, Ax::Z, Angle::Param(ParamId(4)))
            .unwrap();
        c.controlled_rot(0, 2, Ax::Y, Angle::Input(InputId(0)))
            .unwrap();
        c.controlled_rot(1, 0, Ax::Z, Angle::Input(InputId(1)))
            .unwrap();
        c.cnot(0, 2).unwrap();
        c.cz(1, 2).unwrap();
        c.rot(2, Ax::X, Angle::Param(ParamId(0))).unwrap(); // shared param
        c.rot(0, Ax::Y, Angle::Const(-0.9)).unwrap();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7, 0.3, -1.1];
        let pa = prebind_adjoint(&compiled, &params).unwrap();

        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|b| vec![0.3 * b as f64 - 0.7, 0.2 * b as f64 + 0.1])
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for readout in [
            qmarl_vqc::observable::Readout::z_all(3),
            qmarl_vqc::observable::Readout::mean_z(3),
            qmarl_vqc::observable::Readout::WeightedZSum {
                weights: vec![0.2, -1.3, 0.7],
            },
        ] {
            for (item, (out, jac)) in refs.iter().zip(run_adjoint_slab(&pa, &readout, &refs)) {
                let (out_ref, jac_ref) = serial_adjoint_reference(&c, &readout, item, &params);
                assert_eq!(out, out_ref);
                assert_eq!(jac, jac_ref);
            }
        }
    }

    #[test]
    fn adjoint_prebinding_lengths_validated() {
        let compiled = compile(&actor_circuit());
        let params = init_params(42, 0);
        assert!(matches!(
            prebind_adjoint(&compiled, &params[..7]),
            Err(RuntimeError::ParamLenMismatch { .. })
        ));
        let pa = prebind_adjoint(&compiled, &params).unwrap();
        assert_eq!(pa.n_qubits(), 4);
        assert_eq!(pa.n_inputs(), 4);
        assert_eq!(pa.params(), &params[..]);
    }

    #[test]
    fn binding_lengths_validated() {
        let compiled = compile(&actor_circuit());
        let params = init_params(42, 0);
        assert!(matches!(
            prebind(&compiled, &params[..10]),
            Err(RuntimeError::ParamLenMismatch { .. })
        ));
        let pb = prebind(&compiled, &params).unwrap();
        assert_eq!(pb.n_qubits(), 4);
        assert_eq!(pb.n_inputs(), 4);
        assert_eq!(pb.params(), &params[..]);
        assert!(matches!(
            run_prebound(&pb, &[0.0; 3]),
            Err(RuntimeError::InputLenMismatch { .. })
        ));
    }
}
