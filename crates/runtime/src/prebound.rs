//! Parameter-prebound schedules: trig hoisted out of the per-circuit loop.
//!
//! During rollout collection the policy parameters are **frozen**: every
//! circuit of a collection runs the same compiled schedule under the same
//! parameter vector, varying only in its input (observation) angles. For
//! the paper's actor that means ~42 of ~46 rotation angles are identical
//! across every evaluation — yet the plain executor re-resolves each
//! angle and recomputes its half-angle sine/cosine for every circuit.
//!
//! [`prebind`] resolves a `(CompiledCircuit, params)` pair once: every
//! rotation whose angle does not reference an input slot collapses to a
//! precomputed `(sin θ/2, cos θ/2)` pair ([`PreOp::RotSC`]), and only
//! input-dependent rotations stay symbolic. [`run_prebound`] then
//! evaluates circuits with per-rotation trig only where an observation
//! actually enters — on the paper's shapes that cuts the dominant
//! trig cost of vectorized rollout by roughly the ansatz/encoder ratio.
//!
//! **Exactness.** Prebinding reorders no floating-point operation: angles
//! resolve through the same [`FusedAngle::value`] and kernels consume the
//! same `sin_cos()` results the plain path computes internally, so
//! prebound outputs are **bit-identical** to [`crate::exec::run_compiled`]
//! (asserted in this module's tests and by the vectorized-rollout
//! equivalence suite).

use qmarl_qsim::apply;
use qmarl_qsim::complex::Complex64;
use qmarl_qsim::gate::{Gate1, RotationAxis};
use qmarl_qsim::state::StateVector;

use crate::compile::{CGate, CompiledCircuit, FusedAngle};
use crate::error::RuntimeError;

/// One gate of a prebound schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum PreOp {
    /// A rotation whose angle was fully resolved at prebind time; carries
    /// the precomputed half-angle `(sin, cos)`.
    RotSC {
        /// Target wire.
        qubit: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// `sin(θ/2)`.
        s: f64,
        /// `cos(θ/2)`.
        c: f64,
    },
    /// A controlled rotation resolved at prebind time.
    CRotSC {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// `sin(θ/2)`.
        s: f64,
        /// `cos(θ/2)`.
        c: f64,
    },
    /// An input-dependent rotation, still symbolic.
    Rot {
        /// Target wire.
        qubit: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression (may mix input and parameter terms).
        angle: FusedAngle,
    },
    /// An input-dependent controlled rotation, still symbolic.
    CRot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis.
        axis: RotationAxis,
        /// Compiled angle expression.
        angle: FusedAngle,
    },
    /// CNOT (amplitude-swap fast path).
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
    /// Controlled-Z (diagonal sign-flip fast path).
    Cz {
        /// First wire.
        control: usize,
        /// Second wire.
        target: usize,
    },
    /// A fixed single-qubit unitary.
    Fixed {
        /// Target wire.
        qubit: usize,
        /// Concrete unitary.
        gate: Gate1,
    },
}

/// A compiled schedule bound to one frozen parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PreboundCircuit {
    n_qubits: usize,
    n_inputs: usize,
    params: Vec<f64>,
    ops: Vec<PreOp>,
}

impl PreboundCircuit {
    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Expected input-vector length.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The frozen parameter vector this schedule was bound with.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Number of rotations whose trig was hoisted (diagnostic).
    pub fn resolved_rotations(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PreOp::RotSC { .. } | PreOp::CRotSC { .. }))
            .count()
    }
}

/// Binds a compiled schedule to a frozen parameter vector, hoisting every
/// parameter-only rotation's trig out of the per-circuit loop.
///
/// # Errors
///
/// Returns [`RuntimeError::ParamLenMismatch`] when `params` does not match
/// the compiled arity.
pub fn prebind(
    compiled: &CompiledCircuit,
    params: &[f64],
) -> Result<PreboundCircuit, RuntimeError> {
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    let ops = compiled
        .fused_schedule()
        .iter()
        .map(|gate| match gate {
            CGate::Rot { qubit, axis, angle } => {
                if angle.depends_on_inputs() {
                    PreOp::Rot {
                        qubit: *qubit,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    // No input slot is referenced, so the empty slice can
                    // never be indexed; the resolved θ and its sin_cos are
                    // the exact values the plain path would compute.
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    PreOp::RotSC {
                        qubit: *qubit,
                        axis: *axis,
                        s,
                        c,
                    }
                }
            }
            CGate::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                if angle.depends_on_inputs() {
                    PreOp::CRot {
                        control: *control,
                        target: *target,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    PreOp::CRotSC {
                        control: *control,
                        target: *target,
                        axis: *axis,
                        s,
                        c,
                    }
                }
            }
            CGate::Cnot { control, target } => PreOp::Cnot {
                control: *control,
                target: *target,
            },
            CGate::Cz { control, target } => PreOp::Cz {
                control: *control,
                target: *target,
            },
            CGate::Fixed { qubit, gate } => PreOp::Fixed {
                qubit: *qubit,
                gate: *gate,
            },
        })
        .collect();
    Ok(PreboundCircuit {
        n_qubits: compiled.n_qubits(),
        n_inputs: compiled.n_inputs(),
        params: params.to_vec(),
        ops,
    })
}

/// Runs a prebound schedule from `|0…0⟩` with **no** input validation
/// (callers validate once per batch).
pub(crate) fn run_prebound_unchecked(pb: &PreboundCircuit, inputs: &[f64]) -> StateVector {
    let mut state = StateVector::zero(pb.n_qubits);
    let amps = state.amplitudes_mut();
    for op in &pb.ops {
        match op {
            PreOp::RotSC { qubit, axis, s, c } => match axis {
                RotationAxis::X => apply::apply_rx_sc(amps, *qubit, *s, *c),
                RotationAxis::Y => apply::apply_ry_sc(amps, *qubit, *s, *c),
                RotationAxis::Z => apply::apply_rz_sc(amps, *qubit, *s, *c),
            },
            PreOp::CRotSC {
                control,
                target,
                axis,
                s,
                c,
            } => match axis {
                RotationAxis::X => apply::apply_crx_sc(amps, *control, *target, *s, *c),
                RotationAxis::Y => apply::apply_cry_sc(amps, *control, *target, *s, *c),
                RotationAxis::Z => apply::apply_crz_sc(amps, *control, *target, *s, *c),
            },
            PreOp::Rot { qubit, axis, angle } => {
                let theta = angle.value(inputs, &pb.params);
                match axis {
                    RotationAxis::X => apply::apply_rx(amps, *qubit, theta),
                    RotationAxis::Y => apply::apply_ry(amps, *qubit, theta),
                    RotationAxis::Z => apply::apply_rz(amps, *qubit, theta),
                }
            }
            PreOp::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                let theta = angle.value(inputs, &pb.params);
                match axis {
                    RotationAxis::X => apply::apply_crx(amps, *control, *target, theta),
                    RotationAxis::Y => apply::apply_cry(amps, *control, *target, theta),
                    RotationAxis::Z => apply::apply_crz(amps, *control, *target, theta),
                }
            }
            PreOp::Cnot { control, target } => apply::apply_cnot(amps, *control, *target),
            PreOp::Cz { control, target } => apply::apply_cz(amps, *control, *target),
            PreOp::Fixed { qubit, gate } => apply::apply_gate1(amps, *qubit, gate),
        }
    }
    state
}

/// Runs a prebound schedule from `|0…0⟩`, returning the final state.
///
/// # Errors
///
/// Returns [`RuntimeError::InputLenMismatch`] when `inputs` does not match
/// the bound arity.
pub fn run_prebound(pb: &PreboundCircuit, inputs: &[f64]) -> Result<StateVector, RuntimeError> {
    if inputs.len() != pb.n_inputs {
        return Err(RuntimeError::InputLenMismatch {
            expected: pb.n_inputs,
            actual: inputs.len(),
        });
    }
    Ok(run_prebound_unchecked(pb, inputs))
}

// ---------------------------------------------------------------------
// Lane-slab execution: many circuits through one schedule walk.
//
// The slab stores `L` statevectors transposed — `slab[amp · L + lane]` —
// so each gate is dispatched **once** and its update runs over contiguous
// per-amplitude lane rows. Every lane sees exactly the arithmetic of the
// per-circuit kernels (the update formulas below are copied verbatim from
// `qsim::apply`), so slab execution is bit-identical to running each lane
// alone; only the loop nesting changes.
// ---------------------------------------------------------------------

/// Visits every `(i0, i1 = i0 + stride)` amplitude pair of one qubit.
#[inline]
fn for_each_pair(dim: usize, stride: usize, mut f: impl FnMut(usize, usize)) {
    let mut base = 0;
    while base < dim {
        for i0 in base..base + stride {
            f(i0, i0 + stride);
        }
        base += stride << 1;
    }
}

/// Disjoint mutable views of amplitude rows `i0 < i1`.
#[inline]
fn rows_mut(
    slab: &mut [Complex64],
    lanes: usize,
    i0: usize,
    i1: usize,
) -> (&mut [Complex64], &mut [Complex64]) {
    debug_assert!(i0 < i1);
    let (head, tail) = slab.split_at_mut(i1 * lanes);
    (&mut head[i0 * lanes..(i0 + 1) * lanes], &mut tail[..lanes])
}

#[inline]
fn rot_rows(axis: RotationAxis, r0: &mut [Complex64], r1: &mut [Complex64], s: f64, c: f64) {
    match axis {
        RotationAxis::X => {
            for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = Complex64::new(c * x0.re + s * x1.im, c * x0.im - s * x1.re);
                *a1 = Complex64::new(s * x0.im + c * x1.re, -s * x0.re + c * x1.im);
            }
        }
        RotationAxis::Y => {
            for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = Complex64::new(c * x0.re - s * x1.re, c * x0.im - s * x1.im);
                *a1 = Complex64::new(s * x0.re + c * x1.re, s * x0.im + c * x1.im);
            }
        }
        RotationAxis::Z => unreachable!("Rz is diagonal; handled per amplitude row"),
    }
}

#[inline]
fn phase_row(row: &mut [Complex64], pr: f64, pi: f64) {
    for a in row.iter_mut() {
        *a = Complex64::new(a.re * pr - a.im * pi, a.re * pi + a.im * pr);
    }
}

/// Per-lane `(sin, cos)` pairs of an input-dependent rotation, resolved
/// with the exact arithmetic of the per-circuit path.
#[inline]
fn lane_trig(angle: &FusedAngle, inputs: &[&[f64]], params: &[f64], out: &mut Vec<(f64, f64)>) {
    out.clear();
    out.extend(inputs.iter().map(|lane_inputs| {
        let theta = angle.value(lane_inputs, params);
        (theta / 2.0).sin_cos()
    }));
}

/// Runs a prebound schedule over all `inputs` lanes in one schedule walk,
/// returning each lane's final state (bit-identical to per-lane
/// [`run_prebound`]; input lengths are the caller's responsibility).
/// The executor consumes the raw slab directly; this materialised form
/// is the equivalence-test surface.
#[cfg(test)]
pub(crate) fn run_prebound_slab(pb: &PreboundCircuit, inputs: &[&[f64]]) -> Vec<StateVector> {
    let lanes = inputs.len();
    let slab = run_prebound_slab_raw(pb, inputs);
    (0..lanes)
        .map(|lane| {
            let mut state = StateVector::zero(pb.n_qubits);
            let amps = state.amplitudes_mut();
            for (i, amp) in amps.iter_mut().enumerate() {
                *amp = slab[i * lanes + lane];
            }
            state
        })
        .collect()
}

/// Evaluates a readout for one lane directly off the transposed slab,
/// with exactly the arithmetic (and summation order) of
/// `Readout::evaluate` over a per-lane statevector — skipping the
/// per-lane statevector materialisation entirely. Guarded bit-exact
/// against the plain path by the executor's prebound batch test.
pub(crate) fn readout_from_slab(
    readout: &qmarl_vqc::observable::Readout,
    slab: &[Complex64],
    lanes: usize,
    lane: usize,
) -> Vec<f64> {
    use qmarl_vqc::observable::Readout;
    let dim = slab.len() / lanes;
    let expectation_z = |q: usize| -> f64 {
        let mask = 1usize << q;
        let mut acc = 0.0;
        for i in 0..dim {
            let a = slab[i * lanes + lane];
            if i & mask == 0 {
                acc += a.norm_sqr();
            } else {
                acc -= a.norm_sqr();
            }
        }
        acc
    };
    match readout {
        Readout::ZPerQubit { qubits } => qubits.iter().map(|&q| expectation_z(q)).collect(),
        Readout::WeightedZSum { weights } => {
            let mut acc = 0.0;
            for (q, w) in weights.iter().enumerate() {
                acc += w * expectation_z(q);
            }
            vec![acc]
        }
    }
}

/// The slab itself, `slab[amp · lanes + lane]`, after the schedule walk.
pub(crate) fn run_prebound_slab_raw(pb: &PreboundCircuit, inputs: &[&[f64]]) -> Vec<Complex64> {
    let lanes = inputs.len();
    if lanes == 0 {
        return Vec::new();
    }
    let dim = 1usize << pb.n_qubits;
    let mut slab = vec![Complex64::ZERO; dim * lanes];
    for cell in slab[..lanes].iter_mut() {
        *cell = Complex64::ONE; // every lane starts in |0…0⟩
    }
    let mut trig: Vec<(f64, f64)> = Vec::with_capacity(lanes);

    for op in &pb.ops {
        match op {
            PreOp::RotSC { qubit, axis, s, c } => match axis {
                RotationAxis::Z => {
                    let mask = 1usize << qubit;
                    for i in 0..dim {
                        let (pr, pi) = if i & mask == 0 { (*c, -*s) } else { (*c, *s) };
                        phase_row(&mut slab[i * lanes..(i + 1) * lanes], pr, pi);
                    }
                }
                _ => for_each_pair(dim, 1usize << qubit, |i0, i1| {
                    let (r0, r1) = rows_mut(&mut slab, lanes, i0, i1);
                    rot_rows(*axis, r0, r1, *s, *c);
                }),
            },
            PreOp::Rot { qubit, axis, angle } => {
                lane_trig(angle, inputs, &pb.params, &mut trig);
                match axis {
                    RotationAxis::Z => {
                        let mask = 1usize << qubit;
                        for i in 0..dim {
                            let row = &mut slab[i * lanes..(i + 1) * lanes];
                            if i & mask == 0 {
                                for (a, &(s, c)) in row.iter_mut().zip(&trig) {
                                    let x = *a;
                                    *a = Complex64::new(x.re * c + x.im * s, -x.re * s + x.im * c);
                                }
                            } else {
                                for (a, &(s, c)) in row.iter_mut().zip(&trig) {
                                    let x = *a;
                                    *a = Complex64::new(x.re * c - x.im * s, x.re * s + x.im * c);
                                }
                            }
                        }
                    }
                    _ => for_each_pair(dim, 1usize << qubit, |i0, i1| {
                        let (r0, r1) = rows_mut(&mut slab, lanes, i0, i1);
                        match axis {
                            RotationAxis::X => {
                                for ((a0, a1), &(s, c)) in
                                    r0.iter_mut().zip(r1.iter_mut()).zip(&trig)
                                {
                                    let x0 = *a0;
                                    let x1 = *a1;
                                    *a0 = Complex64::new(
                                        c * x0.re + s * x1.im,
                                        c * x0.im - s * x1.re,
                                    );
                                    *a1 = Complex64::new(
                                        s * x0.im + c * x1.re,
                                        -s * x0.re + c * x1.im,
                                    );
                                }
                            }
                            RotationAxis::Y => {
                                for ((a0, a1), &(s, c)) in
                                    r0.iter_mut().zip(r1.iter_mut()).zip(&trig)
                                {
                                    let x0 = *a0;
                                    let x1 = *a1;
                                    *a0 = Complex64::new(
                                        c * x0.re - s * x1.re,
                                        c * x0.im - s * x1.im,
                                    );
                                    *a1 = Complex64::new(
                                        s * x0.re + c * x1.re,
                                        s * x0.im + c * x1.im,
                                    );
                                }
                            }
                            RotationAxis::Z => unreachable!(),
                        }
                    }),
                }
            }
            PreOp::CRotSC {
                control,
                target,
                axis,
                s,
                c,
            } => {
                let mc = 1usize << control;
                let mt = 1usize << target;
                match axis {
                    RotationAxis::Z => {
                        for i in 0..dim {
                            if i & mc == 0 {
                                continue;
                            }
                            let (pr, pi) = if i & mt == 0 { (*c, -*s) } else { (*c, *s) };
                            phase_row(&mut slab[i * lanes..(i + 1) * lanes], pr, pi);
                        }
                    }
                    _ => {
                        for i0 in 0..dim {
                            if i0 & mc == 0 || i0 & mt != 0 {
                                continue;
                            }
                            let (r0, r1) = rows_mut(&mut slab, lanes, i0, i0 | mt);
                            rot_rows(*axis, r0, r1, *s, *c);
                        }
                    }
                }
            }
            PreOp::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                lane_trig(angle, inputs, &pb.params, &mut trig);
                let mc = 1usize << control;
                let mt = 1usize << target;
                match axis {
                    RotationAxis::Z => {
                        for i in 0..dim {
                            if i & mc == 0 {
                                continue;
                            }
                            let row = &mut slab[i * lanes..(i + 1) * lanes];
                            let flip = i & mt != 0;
                            for (a, &(s, c)) in row.iter_mut().zip(&trig) {
                                let pi = if flip { s } else { -s };
                                let x = *a;
                                *a = Complex64::new(x.re * c - x.im * pi, x.re * pi + x.im * c);
                            }
                        }
                    }
                    _ => {
                        for i0 in 0..dim {
                            if i0 & mc == 0 || i0 & mt != 0 {
                                continue;
                            }
                            let (r0, r1) = rows_mut(&mut slab, lanes, i0, i0 | mt);
                            for ((a0, a1), &(s, c)) in r0.iter_mut().zip(r1.iter_mut()).zip(&trig) {
                                let x0 = *a0;
                                let x1 = *a1;
                                match axis {
                                    RotationAxis::X => {
                                        *a0 = Complex64::new(
                                            c * x0.re + s * x1.im,
                                            c * x0.im - s * x1.re,
                                        );
                                        *a1 = Complex64::new(
                                            s * x0.im + c * x1.re,
                                            -s * x0.re + c * x1.im,
                                        );
                                    }
                                    RotationAxis::Y => {
                                        *a0 = Complex64::new(
                                            c * x0.re - s * x1.re,
                                            c * x0.im - s * x1.im,
                                        );
                                        *a1 = Complex64::new(
                                            s * x0.re + c * x1.re,
                                            s * x0.im + c * x1.im,
                                        );
                                    }
                                    RotationAxis::Z => unreachable!(),
                                }
                            }
                        }
                    }
                }
            }
            PreOp::Cnot { control, target } => {
                let mc = 1usize << control;
                let mt = 1usize << target;
                for i in 0..dim {
                    if i & mc == 0 || i & mt != 0 {
                        continue;
                    }
                    let (r0, r1) = rows_mut(&mut slab, lanes, i, i | mt);
                    r0.swap_with_slice(r1);
                }
            }
            PreOp::Cz { control, target } => {
                let mask = (1usize << control) | (1usize << target);
                for i in 0..dim {
                    if i & mask != mask {
                        continue;
                    }
                    for a in slab[i * lanes..(i + 1) * lanes].iter_mut() {
                        *a = -*a;
                    }
                }
            }
            PreOp::Fixed { qubit, gate } => {
                let m = gate.matrix();
                for_each_pair(dim, 1usize << qubit, |i0, i1| {
                    let (r0, r1) = rows_mut(&mut slab, lanes, i0, i1);
                    for (a0, a1) in r0.iter_mut().zip(r1.iter_mut()) {
                        let x0 = *a0;
                        let x1 = *a1;
                        *a0 = m[0][0] * x0 + m[0][1] * x1;
                        *a1 = m[1][0] * x0 + m[1][1] * x1;
                    }
                });
            }
        }
    }

    slab
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::run_compiled;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ansatz::{init_params, layered_ansatz};
    use qmarl_vqc::encoder::layered_angle_encoder;
    use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

    fn actor_circuit() -> Circuit {
        let mut c = layered_angle_encoder(4, 4).unwrap();
        c.append_shifted(&layered_ansatz(4, 42).unwrap()).unwrap();
        c
    }

    #[test]
    fn prebound_matches_compiled_bit_exactly() {
        let circuit = actor_circuit();
        let compiled = compile(&circuit);
        let params = init_params(circuit.param_count(), 11);
        let pb = prebind(&compiled, &params).unwrap();
        assert!(pb.resolved_rotations() >= 40, "ansatz must be hoisted");
        for b in 0..8 {
            let inputs: Vec<f64> = (0..4).map(|i| 0.09 * (b * 4 + i) as f64 - 0.6).collect();
            let fast = run_prebound(&pb, &inputs).unwrap();
            let reference = run_compiled(&compiled, &inputs, &params).unwrap();
            assert_eq!(
                fast.amplitudes(),
                reference.amplitudes(),
                "prebound execution must be bit-identical"
            );
        }
    }

    #[test]
    fn mixed_input_param_angles_stay_symbolic_and_exact() {
        // Adjacent same-axis rotations fuse; an input rotation followed by
        // a parameter rotation on one wire produces a mixed Sum angle that
        // prebinding must leave symbolic.
        let mut c = Circuit::new(2);
        c.rot(0, Ax::Y, Angle::Input(InputId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.fixed(1, FixedGate::H).unwrap();
        c.controlled_rot(0, 1, Ax::Z, Angle::Param(ParamId(1)))
            .unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(1, Ax::X, Angle::Const(0.4)).unwrap();
        let compiled = compile(&c);
        let params = [0.7, -1.1];
        let pb = prebind(&compiled, &params).unwrap();
        // The fused Y rotation depends on input 0 → symbolic; the CRz and
        // the constant Rx resolve.
        assert_eq!(pb.resolved_rotations(), 2);
        for x in [-0.9, 0.0, 1.3] {
            let fast = run_prebound(&pb, &[x]).unwrap();
            let reference = run_compiled(&compiled, &[x], &params).unwrap();
            assert_eq!(fast.amplitudes(), reference.amplitudes());
        }
    }

    #[test]
    fn slab_execution_is_bit_identical_to_per_lane() {
        let circuit = actor_circuit();
        let compiled = compile(&circuit);
        let params = init_params(circuit.param_count(), 5);
        let pb = prebind(&compiled, &params).unwrap();
        let inputs: Vec<Vec<f64>> = (0..7)
            .map(|b| (0..4).map(|i| 0.11 * (b * 4 + i) as f64 - 0.8).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let slab = run_prebound_slab(&pb, &refs);
        assert_eq!(slab.len(), 7);
        for (item, state) in refs.iter().zip(&slab) {
            let single = run_prebound(&pb, item).unwrap();
            assert_eq!(state.amplitudes(), single.amplitudes());
        }
        assert!(run_prebound_slab(&pb, &[]).is_empty());
    }

    #[test]
    fn slab_handles_every_gate_kind_bit_exactly() {
        // CRot on every axis, CZ, CNOT, fixed gates and a mixed fused
        // angle, across several lanes.
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(1))).unwrap();
        c.rot(1, Ax::Z, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(1)))
            .unwrap();
        c.controlled_rot(1, 2, Ax::Y, Angle::Param(ParamId(2)))
            .unwrap();
        c.controlled_rot(2, 0, Ax::Z, Angle::Input(InputId(0)))
            .unwrap();
        c.cnot(0, 2).unwrap();
        c.cz(1, 2).unwrap();
        c.rot(2, Ax::Y, Angle::Const(-0.9)).unwrap();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7];
        let pb = prebind(&compiled, &params).unwrap();
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|b| vec![0.3 * b as f64 - 0.7, 0.2 * b as f64])
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for (item, state) in refs.iter().zip(run_prebound_slab(&pb, &refs)) {
            let single = run_prebound(&pb, item).unwrap();
            assert_eq!(state.amplitudes(), single.amplitudes());
        }
    }

    #[test]
    fn binding_lengths_validated() {
        let compiled = compile(&actor_circuit());
        let params = init_params(42, 0);
        assert!(matches!(
            prebind(&compiled, &params[..10]),
            Err(RuntimeError::ParamLenMismatch { .. })
        ));
        let pb = prebind(&compiled, &params).unwrap();
        assert_eq!(pb.n_qubits(), 4);
        assert_eq!(pb.n_inputs(), 4);
        assert_eq!(pb.params(), &params[..]);
        assert!(matches!(
            run_prebound(&pb, &[0.0; 3]),
            Err(RuntimeError::InputLenMismatch { .. })
        ));
    }
}
