//! The batched executor: B statevectors over one shared schedule.
//!
//! Policy evaluation over a replay minibatch, per-agent evaluation at one
//! timestep, and the parameter-shift rule's ±π/2 fan-out are all "run the
//! same compiled schedule under many bindings". [`BatchExecutor`] turns
//! each of those into a flat work queue drained by the shared
//! [`qmarl_qsim::par`] scheduler:
//!
//! * [`BatchExecutor::run_batch`] — final states for B input vectors
//!   under shared parameters,
//! * [`BatchExecutor::run_batch_with_params`] — per-item parameters too
//!   (N agents with identical circuit shape but private weights),
//! * [`BatchExecutor::expectation_batch`] — readout vectors instead of
//!   raw states,
//! * [`BatchExecutor::jacobian_batch`] /
//!   [`BatchExecutor::forward_and_jacobian_batch`] — the batched
//!   parameter-shift path: **every** shift evaluation of every minibatch
//!   sample is one task in a single queue, so a 4-sample × 48-parameter
//!   gradient sweep keeps every core busy instead of parallelising only
//!   within one sample.
//!
//! Results are folded in deterministic (input, occurrence) order, so
//! batched outputs are bit-identical to their serial counterparts.

use qmarl_qsim::par;
use qmarl_qsim::state::StateVector;
use qmarl_vqc::grad::Jacobian;
use qmarl_vqc::observable::Readout;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::ExecutionBackend;
use crate::compile::{CGate, CompiledCircuit, Occurrence};
use crate::error::RuntimeError;
use crate::exec::{check_bindings, run_raw_with_override, run_schedule_unchecked};
use crate::prebound::{
    readouts_from_slab, run_adjoint_slab, run_prebound_slab_raw, PreboundAdjoint, PreboundCircuit,
};
use crate::superop::{
    extract_lane, prebind_density, run_density, run_density_slab, DensityPrebound,
};
use crate::trajectory::{
    prebind_trajectory, run_trajectory_adjoint, trajectory_outputs, TrajPrebound,
};
use qmarl_qsim::density::DensityMatrix;

/// One shared-parameter group of a prebound batch: a frozen schedule plus
/// the input vectors to run under it.
#[derive(Debug)]
pub struct PreboundGroup<'a> {
    /// The parameter-prebound schedule (see [`crate::prebound::prebind`]).
    pub circuit: &'a PreboundCircuit,
    /// Input vectors, as slices into caller-owned storage.
    pub inputs: Vec<&'a [f64]>,
}

/// Per-group, per-item `(raw readout vector, circuit-parameter Jacobian)`
/// results of a prebound adjoint batch.
pub type AdjointBatchResults = Vec<Vec<(Vec<f64>, Jacobian)>>;

/// One shared-parameter group of a prebound **adjoint** batch: a frozen
/// adjoint schedule plus the input vectors to differentiate under it.
#[derive(Debug)]
pub struct AdjointGroup<'a> {
    /// The adjoint-prebound schedule (see
    /// [`crate::prebound::prebind_adjoint`]).
    pub circuit: &'a PreboundAdjoint,
    /// Input vectors, as slices into caller-owned storage.
    pub inputs: Vec<&'a [f64]>,
}

/// Evaluates compiled schedules over batches of bindings in parallel.
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    workers: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor {
            workers: par::default_workers(),
        }
    }
}

impl BatchExecutor {
    /// An executor with an explicit worker count (`0` = auto-detect).
    pub fn new(workers: usize) -> Self {
        BatchExecutor {
            workers: if workers == 0 {
                par::default_workers()
            } else {
                workers
            },
        }
    }

    /// A strictly serial executor (the property-test reference).
    pub fn serial() -> Self {
        BatchExecutor { workers: 1 }
    }

    /// The worker count used for every batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the fused schedule for every input vector under shared
    /// parameters, returning final states in input order.
    ///
    /// # Errors
    ///
    /// Returns a binding-length error naming the first offending item.
    pub fn run_batch(
        &self,
        compiled: &CompiledCircuit,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<StateVector>, RuntimeError> {
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        Ok(par::parallel_map(inputs, self.workers, |_, item| {
            run_schedule_unchecked(compiled.n_qubits(), compiled.fused_schedule(), item, params)
        }))
    }

    /// Runs the fused schedule for every `(inputs, params)` pair — the
    /// multi-agent case: one circuit shape, per-agent weights.
    ///
    /// # Errors
    ///
    /// Returns a binding-length error naming the first offending pair.
    pub fn run_batch_with_params(
        &self,
        compiled: &CompiledCircuit,
        bindings: &[(Vec<f64>, Vec<f64>)],
    ) -> Result<Vec<StateVector>, RuntimeError> {
        for (inputs, params) in bindings {
            check_bindings(compiled, inputs, params)?;
        }
        Ok(par::parallel_map(
            bindings,
            self.workers,
            |_, (inputs, params)| {
                run_schedule_unchecked(
                    compiled.n_qubits(),
                    compiled.fused_schedule(),
                    inputs,
                    params,
                )
            },
        ))
    }

    /// Batched forward pass through a readout: one output vector per
    /// input vector.
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn expectation_batch(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        readout.validate(compiled.n_qubits())?;
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        par::try_parallel_map(inputs, self.workers, |_, item| {
            let state = run_schedule_unchecked(
                compiled.n_qubits(),
                compiled.fused_schedule(),
                item,
                params,
            );
            readout.evaluate(&state).map_err(RuntimeError::from)
        })
    }

    /// Batched forward pass through a readout with **per-item parameters
    /// by reference** — the vectorized rollout hot path, where one tick
    /// contributes `lanes × agents` circuit evaluations whose inputs and
    /// parameters are slices into caller-owned slabs (no per-item
    /// allocation or parameter cloning).
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn expectation_batch_with_params(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        bindings: &[(&[f64], &[f64])],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        readout.validate(compiled.n_qubits())?;
        for (inputs, params) in bindings {
            check_bindings(compiled, inputs, params)?;
        }
        par::try_parallel_map(bindings, self.workers, |_, &(inputs, params)| {
            let state = run_schedule_unchecked(
                compiled.n_qubits(),
                compiled.fused_schedule(),
                inputs,
                params,
            );
            readout.evaluate(&state).map_err(RuntimeError::from)
        })
    }

    /// Batched forward pass over **prebound** schedules, grouped by
    /// parameter set — the vectorized rollout tick. Each group's frozen
    /// parameters were resolved once by [`crate::prebound::prebind`]
    /// (hoisting all parameter-only trig); a task runs a contiguous lane
    /// chunk of one group through a single slab schedule walk, and the
    /// whole tick's chunks form one flat work queue. Outputs come back
    /// per group, per item, bit-identical to
    /// [`BatchExecutor::expectation_batch`] under the same bindings
    /// (lanes are independent, so chunking cannot change any value).
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn expectation_batch_prebound(
        &self,
        readout: &Readout,
        groups: &[PreboundGroup<'_>],
    ) -> Result<Vec<Vec<Vec<f64>>>, RuntimeError> {
        let mut total_items = 0usize;
        for group in groups {
            readout.validate(group.circuit.n_qubits())?;
            total_items += group.inputs.len();
            for inputs in &group.inputs {
                if inputs.len() != group.circuit.n_inputs() {
                    return Err(RuntimeError::InputLenMismatch {
                        expected: group.circuit.n_inputs(),
                        actual: inputs.len(),
                    });
                }
            }
        }
        // One task per (group, lane chunk): big enough to amortise the
        // slab walk, small enough to fill every worker.
        let chunk = (total_items / self.workers.max(1)).clamp(1, 64);
        let tasks: Vec<(usize, usize, usize)> = groups
            .iter()
            .enumerate()
            .flat_map(|(g, group)| {
                (0..group.inputs.len())
                    .step_by(chunk)
                    .map(move |start| (g, start, (start + chunk).min(group.inputs.len())))
            })
            .collect();
        // Readout validation already ran, so the per-task work is
        // infallible: walk the chunk's slab once, then fold each lane's
        // readout straight off it.
        let results: Vec<Vec<Vec<f64>>> =
            par::parallel_map(&tasks, self.workers, |_, &(g, start, end)| {
                let chunk_inputs = &groups[g].inputs[start..end];
                let slab = run_prebound_slab_raw(groups[g].circuit, chunk_inputs);
                readouts_from_slab(readout, &slab, chunk_inputs.len())
            });
        let mut out: Vec<Vec<Vec<f64>>> = groups
            .iter()
            .map(|group| Vec::with_capacity(group.inputs.len()))
            .collect();
        for (&(g, _, _), chunk_results) in tasks.iter().zip(results) {
            out[g].extend(chunk_results);
        }
        Ok(out)
    }

    /// Batched **prebound adjoint** forward + Jacobian, grouped by
    /// parameter set — the update-sweep hot path. Each group's frozen
    /// parameters were resolved once by
    /// [`crate::prebound::prebind_adjoint`] (hoisting every
    /// parameter-only rotation's forward *and* inverse trig); a task runs
    /// a contiguous lane chunk of one group through a single
    /// forward-walk-plus-reverse-sweep pair, and the whole batch's chunks
    /// form one flat work queue. Per lane the result is **bit-identical**
    /// to the serial model-path adjoint
    /// (`Vqc::forward_with_jacobian(…, GradMethod::Adjoint)` before the
    /// output head) — lanes are independent, so neither chunking nor the
    /// worker count can change any value.
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn forward_and_jacobian_batch_prebound(
        &self,
        readout: &Readout,
        groups: &[AdjointGroup<'_>],
    ) -> Result<AdjointBatchResults, RuntimeError> {
        let mut total_items = 0usize;
        for group in groups {
            readout.validate(group.circuit.n_qubits())?;
            total_items += group.inputs.len();
            for inputs in &group.inputs {
                if inputs.len() != group.circuit.n_inputs() {
                    return Err(RuntimeError::InputLenMismatch {
                        expected: group.circuit.n_inputs(),
                        actual: inputs.len(),
                    });
                }
            }
        }
        // One task per (group, lane chunk): the adjoint walk keeps
        // (2 + outputs) slabs live, so chunks stay small enough for cache
        // while still amortising the per-walk dispatch.
        let chunk = (total_items / self.workers.max(1)).clamp(1, 32);
        let tasks: Vec<(usize, usize, usize)> = groups
            .iter()
            .enumerate()
            .flat_map(|(g, group)| {
                (0..group.inputs.len())
                    .step_by(chunk)
                    .map(move |start| (g, start, (start + chunk).min(group.inputs.len())))
            })
            .collect();
        let results: Vec<Vec<(Vec<f64>, Jacobian)>> =
            par::parallel_map(&tasks, self.workers, |_, &(g, start, end)| {
                run_adjoint_slab(groups[g].circuit, readout, &groups[g].inputs[start..end])
            });
        let mut out: AdjointBatchResults = groups
            .iter()
            .map(|group| Vec::with_capacity(group.inputs.len()))
            .collect();
        for (&(g, _, _), chunk_results) in tasks.iter().zip(results) {
            out[g].extend(chunk_results);
        }
        Ok(out)
    }

    /// Batched forward pass under an [`ExecutionBackend`]: one readout
    /// vector per input vector. `Ideal` delegates to
    /// [`BatchExecutor::expectation_batch`] and is bit-identical to it;
    /// the stochastic backends are worker-count invariant by the
    /// content-addressed seed derivation (see [`crate::backend`]).
    ///
    /// `Noisy` prebinds the superoperator schedule once and runs the
    /// batch as lane **chunks** of one density slab walk per task
    /// (lanes are independent, so chunking cannot change any value);
    /// `Sampled` and `Trajectory` evaluations are one task each — a
    /// trajectory evaluation already fills a slab with its samples.
    ///
    /// # Errors
    ///
    /// Returns binding-length, readout- or backend-validation errors.
    pub fn expectation_batch_backend(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        inputs: &[Vec<f64>],
        params: &[f64],
        backend: &ExecutionBackend,
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        if backend.is_ideal() {
            return self.expectation_batch(compiled, readout, inputs, params);
        }
        backend.validate()?;
        readout.validate(compiled.n_qubits())?;
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        let prep = BackendPrep::new(compiled, params, backend)?;
        if let (ExecutionBackend::Noisy { shots, seed, .. }, BackendPrep::Density(pb)) =
            (backend, &prep)
        {
            // Lane-chunked slab walk. The chunk cap stays small: an
            // 8-qubit density lane is 65 536 amplitudes, so 16 lanes keep
            // the slab around cache-friendly sizes.
            let chunk = (inputs.len() / self.workers.max(1)).clamp(1, 16);
            let tasks: Vec<(usize, usize)> = (0..inputs.len())
                .step_by(chunk)
                .map(|start| (start, (start + chunk).min(inputs.len())))
                .collect();
            let results = par::try_parallel_map(&tasks, self.workers, |_, &(start, end)| {
                let lane_inputs: Vec<&[f64]> =
                    inputs[start..end].iter().map(|v| v.as_slice()).collect();
                let lanes = lane_inputs.len();
                let slab = run_density_slab(pb, &lane_inputs, None);
                let mut out = Vec::with_capacity(lanes);
                for lane in 0..lanes {
                    let rho = DensityMatrix::from_flat(
                        compiled.n_qubits(),
                        extract_lane(&slab, lanes, lane),
                    );
                    let vals = match shots {
                        None => readout.evaluate_density(&rho)?,
                        Some(s) => {
                            let mut rng = StdRng::seed_from_u64(ExecutionBackend::eval_seed(
                                *seed,
                                &inputs[start + lane],
                                params,
                                0,
                            ));
                            readout.evaluate_shots_density(&rho, *s, &mut rng)?
                        }
                    };
                    out.push(vals);
                }
                Ok::<_, RuntimeError>(out)
            })?;
            return Ok(results.into_iter().flatten().collect());
        }
        par::try_parallel_map(inputs, self.workers, |_, item| {
            backend_eval(compiled, readout, item, params, backend, &prep, None)
        })
    }

    /// Batched forward **and** Jacobian under an [`ExecutionBackend`] —
    /// the gradient path of the stochastic backends. Under
    /// `Sampled`/`Noisy`, every forward and every ±shift evaluation of
    /// the whole minibatch is one parameter-shift task, so the resulting
    /// gradients carry exactly the noise hardware execution would.
    /// `Trajectory` instead runs one **per-trajectory adjoint** task per
    /// minibatch item (exact gradient of the sampled estimator — the jump
    /// draws are parameter-independent). `Ideal` delegates to
    /// [`BatchExecutor::forward_and_jacobian_batch`] and is bit-identical
    /// to it.
    ///
    /// # Errors
    ///
    /// Returns binding-length, readout- or backend-validation errors.
    pub fn forward_and_jacobian_batch_backend(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        inputs: &[Vec<f64>],
        params: &[f64],
        backend: &ExecutionBackend,
    ) -> Result<(Vec<Vec<f64>>, Vec<Jacobian>), RuntimeError> {
        if backend.is_ideal() {
            return self.forward_and_jacobian_batch(compiled, readout, inputs, params);
        }
        backend.validate()?;
        readout.validate(compiled.n_qubits())?;
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        let prep = BackendPrep::new(compiled, params, backend)?;
        // Trajectory gradients skip the shift queue entirely: the jump
        // draws are parameter-independent, so each evaluation's exact
        // Jacobian comes from one per-trajectory adjoint sweep
        // ([`crate::trajectory::run_trajectory_adjoint`]) — one task per
        // minibatch item, with the forward outputs bit-identical to the
        // plain forward pass (same walk, same streams).
        if let (ExecutionBackend::Trajectory { samples, seed, .. }, BackendPrep::Traj(pb)) =
            (backend, &prep)
        {
            let results = par::try_parallel_map(inputs, self.workers, |_, item| {
                let eval_seed = ExecutionBackend::eval_seed(*seed, item, params, 0);
                Ok::<_, RuntimeError>(run_trajectory_adjoint(
                    pb, readout, item, *samples, eval_seed,
                ))
            })?;
            return Ok(results.into_iter().unzip());
        }
        let occurrences = compiled.occurrences();
        // Task id: b * (occurrences + 1); offset 0 = forward pass.
        let per_sample = occurrences.len() + 1;
        let tasks: Vec<usize> = (0..inputs.len() * per_sample).collect();
        let results = par::try_parallel_map(&tasks, self.workers, |_, &t| {
            let b = t / per_sample;
            let slot = t % per_sample;
            if slot == 0 {
                backend_eval(compiled, readout, &inputs[b], params, backend, &prep, None)
                    .map(TaskResult::Forward)
            } else {
                let occ = occurrences[slot - 1];
                let theta = occurrence_angle(compiled, occ, &inputs[b], params);
                qmarl_vqc::grad::shift_rule(theta, occ.controlled, |t| {
                    backend_eval(
                        compiled,
                        readout,
                        &inputs[b],
                        params,
                        backend,
                        &prep,
                        Some((occ.raw_idx, t)),
                    )
                })
                .map(|g| TaskResult::Shift {
                    param: occ.param,
                    grads: g,
                })
            }
        })?;

        let mut outputs = vec![Vec::new(); inputs.len()];
        let mut jacobians =
            vec![Jacobian::zeros(readout.output_len(), compiled.n_params()); inputs.len()];
        for (t, result) in results.into_iter().enumerate() {
            let b = t / per_sample;
            match result {
                TaskResult::Forward(out) => outputs[b] = out,
                TaskResult::Shift { param, grads } => {
                    for (j, g) in grads.into_iter().enumerate() {
                        *jacobians[b].get_mut(j, param) += g;
                    }
                }
            }
        }
        Ok((outputs, jacobians))
    }

    /// Batched parameter-shift Jacobians: one Jacobian per input vector,
    /// with all shift evaluations of the whole minibatch scheduled as one
    /// flat work queue.
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn jacobian_batch(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<Jacobian>, RuntimeError> {
        readout.validate(compiled.n_qubits())?;
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        // One task per (sample, parameter occurrence): a task runs the 2
        // (plain) or 4 (controlled) shifted circuits of that occurrence.
        let occurrences = compiled.occurrences();
        let tasks: Vec<(usize, usize)> = (0..inputs.len())
            .flat_map(|b| (0..occurrences.len()).map(move |o| (b, o)))
            .collect();
        let contributions = par::try_parallel_map(&tasks, self.workers, |_, &(b, o)| {
            occurrence_shift(compiled, readout, &inputs[b], params, occurrences[o])
                .map(|grads| (b, occurrences[o].param, grads))
        })?;

        let mut jacobians =
            vec![Jacobian::zeros(readout.output_len(), compiled.n_params()); inputs.len()];
        for (b, param, grads) in contributions {
            for (j, g) in grads.into_iter().enumerate() {
                *jacobians[b].get_mut(j, param) += g;
            }
        }
        Ok(jacobians)
    }

    /// Batched forward **and** Jacobian in one queue: the forward
    /// evaluations ride the same scheduler as the shift evaluations.
    ///
    /// # Errors
    ///
    /// Returns binding-length or readout-validation errors.
    pub fn forward_and_jacobian_batch(
        &self,
        compiled: &CompiledCircuit,
        readout: &Readout,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<(Vec<Vec<f64>>, Vec<Jacobian>), RuntimeError> {
        readout.validate(compiled.n_qubits())?;
        for item in inputs {
            check_bindings(compiled, item, params)?;
        }
        let occurrences = compiled.occurrences();
        // Task id: b * (occurrences + 1); offset 0 = forward pass.
        let per_sample = occurrences.len() + 1;
        let tasks: Vec<usize> = (0..inputs.len() * per_sample).collect();
        let results = par::try_parallel_map(&tasks, self.workers, |_, &t| {
            let b = t / per_sample;
            let slot = t % per_sample;
            if slot == 0 {
                let state = run_schedule_unchecked(
                    compiled.n_qubits(),
                    compiled.fused_schedule(),
                    &inputs[b],
                    params,
                );
                readout
                    .evaluate(&state)
                    .map(TaskResult::Forward)
                    .map_err(RuntimeError::from)
            } else {
                let occ = occurrences[slot - 1];
                occurrence_shift(compiled, readout, &inputs[b], params, occ).map(|g| {
                    TaskResult::Shift {
                        param: occ.param,
                        grads: g,
                    }
                })
            }
        })?;

        let mut outputs = vec![Vec::new(); inputs.len()];
        let mut jacobians =
            vec![Jacobian::zeros(readout.output_len(), compiled.n_params()); inputs.len()];
        for (t, result) in results.into_iter().enumerate() {
            let b = t / per_sample;
            match result {
                TaskResult::Forward(out) => outputs[b] = out,
                TaskResult::Shift { param, grads } => {
                    for (j, g) in grads.into_iter().enumerate() {
                        *jacobians[b].get_mut(j, param) += g;
                    }
                }
            }
        }
        Ok((outputs, jacobians))
    }
}

enum TaskResult {
    Forward(Vec<f64>),
    Shift { param: usize, grads: Vec<f64> },
}

/// Per-batch backend preparation, built **once** before a queue drains:
/// the noisy backend's superoperator prebind and the trajectory backend's
/// schedule prebind both hoist their per-gate work here so every task in
/// the queue (forward passes and shift evaluations alike) reuses it.
// One value exists per batch and it is only ever borrowed, so the size
// spread between `Plain` and the prebind variants costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum BackendPrep {
    /// Ideal/Sampled: the fused statevector schedule needs no extra prep.
    Plain,
    /// Noisy: per-gate superoperators prebound over `(params, noise)`.
    Density(DensityPrebound),
    /// Trajectory: raw schedule prebound over `(params, noise)`.
    Traj(TrajPrebound),
}

impl BackendPrep {
    fn new(
        compiled: &CompiledCircuit,
        params: &[f64],
        backend: &ExecutionBackend,
    ) -> Result<BackendPrep, RuntimeError> {
        match backend {
            ExecutionBackend::Ideal | ExecutionBackend::Sampled { .. } => Ok(BackendPrep::Plain),
            ExecutionBackend::Noisy { model, .. } => Ok(BackendPrep::Density(prebind_density(
                compiled, params, model,
            )?)),
            ExecutionBackend::Trajectory { model, .. } => Ok(BackendPrep::Traj(
                prebind_trajectory(compiled, params, model)?,
            )),
        }
    }
}

/// The sample-stream salt of an evaluation: 0 for the plain forward pass,
/// a mix of the overridden gate index and angle bits for shift
/// evaluations, so each distinct circuit instance draws its own stream.
fn override_salt(override_angle: Option<(usize, f64)>) -> u64 {
    match override_angle {
        None => 0,
        Some((idx, theta)) => (idx as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(theta.to_bits()),
    }
}

/// One circuit evaluation under a backend: the shared primitive of the
/// batched backend queues. `override_angle` forces one raw-schedule
/// gate's angle (the parameter-shift primitive); without it the ideal and
/// sampled backends run the fused schedule. The noisy and trajectory
/// backends run their [`BackendPrep`] schedules, built once per batch —
/// per-gate noise must scale with the **raw** (source) gate count, and
/// the per-gate superoperator products / trig hoists must not be redone
/// per evaluation.
fn backend_eval(
    compiled: &CompiledCircuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
    backend: &ExecutionBackend,
    prep: &BackendPrep,
    override_angle: Option<(usize, f64)>,
) -> Result<Vec<f64>, RuntimeError> {
    let pure_state = || match override_angle {
        None => run_schedule_unchecked(
            compiled.n_qubits(),
            compiled.fused_schedule(),
            inputs,
            params,
        ),
        Some((idx, theta)) => run_raw_with_override(compiled, inputs, params, idx, theta),
    };
    match backend {
        ExecutionBackend::Ideal => readout.evaluate(&pure_state()).map_err(RuntimeError::from),
        ExecutionBackend::Sampled { shots, seed } => {
            let state = pure_state();
            let mut rng = StdRng::seed_from_u64(ExecutionBackend::eval_seed(
                *seed,
                inputs,
                params,
                override_salt(override_angle),
            ));
            readout
                .evaluate_shots(&state, *shots, &mut rng)
                .map_err(RuntimeError::from)
        }
        ExecutionBackend::Noisy { shots, seed, .. } => {
            let BackendPrep::Density(pb) = prep else {
                unreachable!("noisy backend_eval called without a density prebind")
            };
            let rho = run_density(pb, inputs, override_angle)?;
            match shots {
                None => readout.evaluate_density(&rho).map_err(RuntimeError::from),
                Some(s) => {
                    let mut rng = StdRng::seed_from_u64(ExecutionBackend::eval_seed(
                        *seed,
                        inputs,
                        params,
                        override_salt(override_angle),
                    ));
                    readout
                        .evaluate_shots_density(&rho, *s, &mut rng)
                        .map_err(RuntimeError::from)
                }
            }
        }
        ExecutionBackend::Trajectory { samples, seed, .. } => {
            let BackendPrep::Traj(pb) = prep else {
                unreachable!("trajectory backend_eval called without a trajectory prebind")
            };
            let eval_seed =
                ExecutionBackend::eval_seed(*seed, inputs, params, override_salt(override_angle));
            Ok(trajectory_outputs(
                pb,
                readout,
                inputs,
                *samples,
                eval_seed,
                override_angle,
            ))
        }
    }
}

/// The base (unshifted) angle of an occurrence under the given bindings.
fn occurrence_angle(
    compiled: &CompiledCircuit,
    occ: Occurrence,
    inputs: &[f64],
    params: &[f64],
) -> f64 {
    match &compiled.raw_schedule()[occ.raw_idx] {
        CGate::Rot { angle, .. } | CGate::CRot { angle, .. } => angle.value(inputs, params),
        other => unreachable!("occurrence points at non-rotation gate {other:?}"),
    }
}

/// The shift-rule contribution of one occurrence, per readout output.
/// The two-/four-term combination itself lives in
/// [`qmarl_vqc::grad::shift_rule`] — shared with the serial engine so the
/// two gradient paths cannot drift apart — and only the circuit evaluator
/// (compiled raw schedule with one overridden angle) is supplied here.
fn occurrence_shift(
    compiled: &CompiledCircuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
    occ: Occurrence,
) -> Result<Vec<f64>, RuntimeError> {
    let theta = occurrence_angle(compiled, occ, inputs, params);
    qmarl_vqc::grad::shift_rule(theta, occ.controlled, |t| {
        let s = run_raw_with_override(compiled, inputs, params, occ.raw_idx, t);
        readout.evaluate(&s).map_err(RuntimeError::from)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use qmarl_vqc::ansatz::{init_params, layered_ansatz};
    use qmarl_vqc::encoder::layered_angle_encoder;
    use qmarl_vqc::grad::jacobian_parameter_shift;

    fn paper_circuit() -> qmarl_vqc::ir::Circuit {
        let mut c = layered_angle_encoder(4, 4).unwrap();
        c.append_shifted(&layered_ansatz(4, 20).unwrap()).unwrap();
        c
    }

    fn batch_inputs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|b| (0..4).map(|i| 0.1 * (b * 4 + i) as f64 - 0.7).collect())
            .collect()
    }

    #[test]
    fn batch_matches_serial_interpreter() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 3);
        let inputs = batch_inputs(7);
        let ex = BatchExecutor::new(4);
        let states = ex.run_batch(&compiled, &inputs, &params).unwrap();
        for (item, state) in inputs.iter().zip(&states) {
            let reference = qmarl_vqc::exec::run(&circuit, item, &params).unwrap();
            assert!((state.fidelity(&reference).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn per_item_params_batch() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let bindings: Vec<(Vec<f64>, Vec<f64>)> = (0..4)
            .map(|b| (batch_inputs(4)[b].clone(), init_params(20, b as u64)))
            .collect();
        let ex = BatchExecutor::default();
        let states = ex.run_batch_with_params(&compiled, &bindings).unwrap();
        for ((inputs, params), state) in bindings.iter().zip(&states) {
            let reference = qmarl_vqc::exec::run(&circuit, inputs, params).unwrap();
            assert!((state.fidelity(&reference).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expectation_batch_matches_readout() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 5);
        let inputs = batch_inputs(5);
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::new(3);
        let outs = ex
            .expectation_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        for (item, out) in inputs.iter().zip(&outs) {
            let reference = readout
                .evaluate(&qmarl_vqc::exec::run(&circuit, item, &params).unwrap())
                .unwrap();
            for (a, b) in out.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expectation_with_params_matches_per_item_runs() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let inputs = batch_inputs(4);
        let param_sets: Vec<Vec<f64>> = (0..4).map(|b| init_params(20, 40 + b as u64)).collect();
        let bindings: Vec<(&[f64], &[f64])> = inputs
            .iter()
            .zip(&param_sets)
            .map(|(i, p)| (i.as_slice(), p.as_slice()))
            .collect();
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::new(3);
        let outs = ex
            .expectation_batch_with_params(&compiled, &readout, &bindings)
            .unwrap();
        for ((inputs, params), out) in bindings.iter().zip(&outs) {
            let reference = readout
                .evaluate(&qmarl_vqc::exec::run(&circuit, inputs, params).unwrap())
                .unwrap();
            assert_eq!(out, &reference, "must be bit-identical to serial");
        }
        // Bad bindings are rejected up front.
        let short = [0.0; 3];
        let bad: Vec<(&[f64], &[f64])> = vec![(&short, param_sets[0].as_slice())];
        assert!(ex
            .expectation_batch_with_params(&compiled, &readout, &bad)
            .is_err());
    }

    #[test]
    fn prebound_batch_matches_expectation_batch_bit_exactly() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let readout = Readout::z_all(4);
        let param_sets: Vec<Vec<f64>> = (0..3).map(|g| init_params(20, 60 + g as u64)).collect();
        let inputs = batch_inputs(5);
        let prebound: Vec<_> = param_sets
            .iter()
            .map(|p| crate::prebound::prebind(&compiled, p).unwrap())
            .collect();
        let groups: Vec<PreboundGroup<'_>> = prebound
            .iter()
            .map(|pb| PreboundGroup {
                circuit: pb,
                inputs: inputs.iter().map(|v| v.as_slice()).collect(),
            })
            .collect();
        for workers in [1usize, 4] {
            let ex = BatchExecutor::new(workers);
            let out = ex.expectation_batch_prebound(&readout, &groups).unwrap();
            for (g, params) in param_sets.iter().enumerate() {
                let reference = ex
                    .expectation_batch(&compiled, &readout, &inputs, params)
                    .unwrap();
                assert_eq!(out[g], reference, "group {g} workers {workers}");
            }
        }
        // Arity errors are typed, not panics.
        let short = [0.0; 2];
        let bad = vec![PreboundGroup {
            circuit: &prebound[0],
            inputs: vec![&short],
        }];
        assert!(matches!(
            BatchExecutor::serial().expectation_batch_prebound(&readout, &bad),
            Err(RuntimeError::InputLenMismatch { .. })
        ));
    }

    #[test]
    fn adjoint_batch_prebound_matches_serial_adjoint_bit_exactly() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let readout = Readout::z_all(4);
        let param_sets: Vec<Vec<f64>> = (0..3).map(|g| init_params(20, 80 + g as u64)).collect();
        let inputs = batch_inputs(5);
        let prebound: Vec<_> = param_sets
            .iter()
            .map(|p| crate::prebound::prebind_adjoint(&compiled, p).unwrap())
            .collect();
        let groups: Vec<AdjointGroup<'_>> = prebound
            .iter()
            .map(|pa| AdjointGroup {
                circuit: pa,
                inputs: inputs.iter().map(|v| v.as_slice()).collect(),
            })
            .collect();
        for workers in [1usize, 4] {
            let ex = BatchExecutor::new(workers);
            let out = ex
                .forward_and_jacobian_batch_prebound(&readout, &groups)
                .unwrap();
            for (g, params) in param_sets.iter().enumerate() {
                assert_eq!(out[g].len(), inputs.len());
                for (item, (fwd, jac)) in inputs.iter().zip(&out[g]) {
                    let state = qmarl_vqc::exec::run(&circuit, item, params).unwrap();
                    let fwd_ref = readout.evaluate(&state).unwrap();
                    let jac_ref =
                        qmarl_vqc::grad::jacobian_adjoint(&circuit, &readout, item, params)
                            .unwrap();
                    assert_eq!(*fwd, fwd_ref, "group {g} workers {workers}");
                    assert_eq!(*jac, jac_ref, "group {g} workers {workers}");
                }
            }
        }
        // Arity errors are typed, not panics.
        let short = [0.0; 2];
        let bad = vec![AdjointGroup {
            circuit: &prebound[0],
            inputs: vec![&short],
        }];
        assert!(matches!(
            BatchExecutor::serial().forward_and_jacobian_batch_prebound(&readout, &bad),
            Err(RuntimeError::InputLenMismatch { .. })
        ));
        let bad_readout = Readout::ZPerQubit { qubits: vec![9] };
        assert!(BatchExecutor::serial()
            .forward_and_jacobian_batch_prebound(&bad_readout, &groups)
            .is_err());
    }

    #[test]
    fn jacobian_batch_matches_vqc_parameter_shift() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 7);
        let inputs = batch_inputs(3);
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::new(4);
        let jacs = ex
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        for (item, jac) in inputs.iter().zip(&jacs) {
            let reference = jacobian_parameter_shift(&circuit, &readout, item, &params).unwrap();
            assert!(jac.max_abs_diff(&reference) < 1e-12);
        }
    }

    #[test]
    fn forward_and_jacobian_fused_queue() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 9);
        let inputs = batch_inputs(4);
        let readout = Readout::mean_z(4);
        let ex = BatchExecutor::new(4);
        let (outs, jacs) = ex
            .forward_and_jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        let outs_ref = ex
            .expectation_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        let jacs_ref = ex
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        assert_eq!(outs, outs_ref);
        for (a, b) in jacs.iter().zip(&jacs_ref) {
            assert!(
                a.max_abs_diff(b) == 0.0,
                "same fold order must be bit-identical"
            );
        }
    }

    #[test]
    fn serial_and_parallel_executors_agree_exactly() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 11);
        let inputs = batch_inputs(6);
        let readout = Readout::z_all(4);
        let serial = BatchExecutor::serial();
        let parallel = BatchExecutor::new(8);
        assert_eq!(
            serial
                .expectation_batch(&compiled, &readout, &inputs, &params)
                .unwrap(),
            parallel
                .expectation_batch(&compiled, &readout, &inputs, &params)
                .unwrap(),
        );
        let js = serial
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        let jp = parallel
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        for (a, b) in js.iter().zip(&jp) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn ideal_backend_is_bit_identical_to_plain_batch() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 13);
        let inputs = batch_inputs(5);
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::new(4);
        assert_eq!(
            ex.expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Ideal
            )
            .unwrap(),
            ex.expectation_batch(&compiled, &readout, &inputs, &params)
                .unwrap()
        );
        let (outs_b, jacs_b) = ex
            .forward_and_jacobian_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Ideal,
            )
            .unwrap();
        let (outs, jacs) = ex
            .forward_and_jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        assert_eq!(outs_b, outs);
        for (a, b) in jacs_b.iter().zip(&jacs) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn sampled_backend_is_worker_count_invariant() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 17);
        let inputs = batch_inputs(6);
        let readout = Readout::z_all(4);
        let backend = ExecutionBackend::Sampled {
            shots: 256,
            seed: 5,
        };
        let reference = BatchExecutor::serial()
            .expectation_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        let (fwd_ref, jac_ref) = BatchExecutor::serial()
            .forward_and_jacobian_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        for workers in [4usize, 8] {
            let ex = BatchExecutor::new(workers);
            assert_eq!(
                ex.expectation_batch_backend(&compiled, &readout, &inputs, &params, &backend)
                    .unwrap(),
                reference,
                "workers={workers}"
            );
            let (fwd, jac) = ex
                .forward_and_jacobian_batch_backend(&compiled, &readout, &inputs, &params, &backend)
                .unwrap();
            assert_eq!(fwd, fwd_ref, "workers={workers}");
            for (a, b) in jac.iter().zip(&jac_ref) {
                assert_eq!(a.max_abs_diff(b), 0.0, "workers={workers}");
            }
        }
        // The sampled expectations really are noisy, not exact.
        let exact = BatchExecutor::serial()
            .expectation_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        assert_ne!(reference, exact);
        // A different root seed draws a different stream.
        let reseeded = BatchExecutor::serial()
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Sampled {
                    shots: 256,
                    seed: 6,
                },
            )
            .unwrap();
        assert_ne!(reference, reseeded);
    }

    #[test]
    fn sampled_backend_converges_to_ideal() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 19);
        let inputs = batch_inputs(3);
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::default();
        let exact = ex
            .expectation_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        let shots = 100_000;
        let sampled = ex
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Sampled { shots, seed: 3 },
            )
            .unwrap();
        for (b, (est, reference)) in sampled.iter().zip(&exact).enumerate() {
            for (q, (a, e)) in est.iter().zip(reference).enumerate() {
                let se = qmarl_qsim::shots::z_standard_error(*e, shots).max(1e-4);
                assert!(
                    (a - e).abs() < 6.0 * se,
                    "sample {b} wire {q}: {a} vs {e} (6σ = {})",
                    6.0 * se
                );
            }
        }
    }

    #[test]
    fn noisy_backend_matches_vqc_run_noisy() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 23);
        let inputs = batch_inputs(3);
        let readout = Readout::z_all(4);
        let noise = qmarl_qsim::noise::NoiseModel::depolarizing(0.002, 0.005).unwrap();
        let backend = ExecutionBackend::Noisy {
            model: noise,
            shots: None,
            seed: 0,
        };
        let ex = BatchExecutor::new(4);
        let outs = ex
            .expectation_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        for (item, out) in inputs.iter().zip(&outs) {
            let rho = qmarl_vqc::exec::run_noisy(&circuit, item, &params, &noise).unwrap();
            let reference = readout.evaluate_density(&rho).unwrap();
            for (a, b) in out.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        // Noisy parameter-shift gradients exist and deviate from ideal.
        let (_, jacs) = ex
            .forward_and_jacobian_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        let ideal_jacs = ex
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        assert!(jacs
            .iter()
            .zip(&ideal_jacs)
            .any(|(a, b)| a.max_abs_diff(b) > 1e-6));
        // Noisy + shots is deterministic under the derived-seed contract.
        let with_shots = ExecutionBackend::Noisy {
            model: noise,
            shots: Some(128),
            seed: 11,
        };
        let a = ex
            .expectation_batch_backend(&compiled, &readout, &inputs, &params, &with_shots)
            .unwrap();
        let b = BatchExecutor::serial()
            .expectation_batch_backend(&compiled, &readout, &inputs, &params, &with_shots)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trajectory_backend_is_worker_count_invariant_and_deterministic() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 29);
        let inputs = batch_inputs(4);
        let readout = Readout::z_all(4);
        let noise = qmarl_qsim::noise::NoiseModel::depolarizing(0.01, 0.02).unwrap();
        let backend = ExecutionBackend::Trajectory {
            model: noise,
            samples: 24,
            seed: 3,
        };
        let reference = BatchExecutor::serial()
            .expectation_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        let (fwd_ref, jac_ref) = BatchExecutor::serial()
            .forward_and_jacobian_batch_backend(&compiled, &readout, &inputs, &params, &backend)
            .unwrap();
        for workers in [4usize, 8] {
            let ex = BatchExecutor::new(workers);
            assert_eq!(
                ex.expectation_batch_backend(&compiled, &readout, &inputs, &params, &backend)
                    .unwrap(),
                reference,
                "workers={workers}"
            );
            let (fwd, jac) = ex
                .forward_and_jacobian_batch_backend(&compiled, &readout, &inputs, &params, &backend)
                .unwrap();
            assert_eq!(fwd, fwd_ref, "workers={workers}");
            for (a, b) in jac.iter().zip(&jac_ref) {
                assert_eq!(a.max_abs_diff(b), 0.0, "workers={workers}");
            }
        }
        // A different root seed draws different error streams.
        let reseeded = BatchExecutor::serial()
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Trajectory {
                    model: noise,
                    samples: 24,
                    seed: 4,
                },
            )
            .unwrap();
        assert_ne!(reference, reseeded);
    }

    #[test]
    fn noiseless_trajectory_backend_matches_ideal() {
        // With no channels every trajectory is the pure state, so even a
        // tiny sample count reproduces the ideal expectations exactly.
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 31);
        let inputs = batch_inputs(3);
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::new(4);
        let traj = ex
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Trajectory {
                    model: qmarl_qsim::noise::NoiseModel::noiseless(),
                    samples: 3,
                    seed: 0,
                },
            )
            .unwrap();
        let ideal = ex
            .expectation_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        for (a, b) in traj.iter().flatten().zip(ideal.iter().flatten()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_backend_converges_to_the_noisy_density() {
        let circuit = paper_circuit();
        let compiled = compile(&circuit);
        let params = init_params(20, 37);
        let inputs = batch_inputs(2);
        let readout = Readout::z_all(4);
        let noise = qmarl_qsim::noise::NoiseModel::depolarizing(0.01, 0.02).unwrap();
        let ex = BatchExecutor::default();
        let exact = ex
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Noisy {
                    model: noise,
                    shots: None,
                    seed: 0,
                },
            )
            .unwrap();
        let samples = 4096;
        let traj = ex
            .expectation_batch_backend(
                &compiled,
                &readout,
                &inputs,
                &params,
                &ExecutionBackend::Trajectory {
                    model: noise,
                    samples,
                    seed: 13,
                },
            )
            .unwrap();
        for (b, (est, reference)) in traj.iter().zip(&exact).enumerate() {
            for (q, (a, e)) in est.iter().zip(reference).enumerate() {
                let se = qmarl_qsim::shots::z_standard_error(*e, samples).max(1e-4);
                assert!(
                    (a - e).abs() < 6.0 * se,
                    "sample {b} wire {q}: {a} vs {e} (6σ = {})",
                    6.0 * se
                );
            }
        }
    }

    #[test]
    fn backend_queue_validates_bindings() {
        let compiled = compile(&paper_circuit());
        let readout = Readout::z_all(4);
        let ex = BatchExecutor::default();
        let backend = ExecutionBackend::Sampled { shots: 8, seed: 0 };
        let bad = vec![vec![0.0; 3]];
        assert!(ex
            .expectation_batch_backend(&compiled, &readout, &bad, &init_params(20, 0), &backend)
            .is_err());
        let good = vec![vec![0.0; 4]];
        assert!(ex
            .forward_and_jacobian_batch_backend(&compiled, &readout, &good, &[0.0; 3], &backend)
            .is_err());
    }

    #[test]
    fn bad_bindings_rejected() {
        let compiled = compile(&paper_circuit());
        let ex = BatchExecutor::default();
        let bad = vec![vec![0.0; 3]];
        assert!(ex.run_batch(&compiled, &bad, &init_params(20, 0)).is_err());
        let good = vec![vec![0.0; 4]];
        assert!(ex.run_batch(&compiled, &good, &[0.0; 19]).is_err());
        let bad_readout = Readout::ZPerQubit { qubits: vec![7] };
        assert!(ex
            .expectation_batch(&compiled, &bad_readout, &good, &init_params(20, 0))
            .is_err());
    }

    #[test]
    fn executor_worker_configuration() {
        assert_eq!(BatchExecutor::serial().workers(), 1);
        assert!(BatchExecutor::new(0).workers() >= 1);
        assert_eq!(BatchExecutor::new(5).workers(), 5);
    }
}
