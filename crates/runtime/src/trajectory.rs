//! Quantum-trajectory execution: statevector sampling of a noise model.
//!
//! The [`crate::superop`] path evolves the exact `4^n` density register;
//! this module trades exactness for statevector-sized work. One
//! **trajectory** runs the raw schedule on a pure state and, after every
//! gate, samples the channel on every touched wire
//! ([`qmarl_qsim::noise::NoiseChannel::sample_pauli_error`]): with
//! probability `p` a Pauli error is applied, otherwise nothing. Averaging
//! readouts over `samples` trajectories converges to the density result
//! at `O(1/√samples)` for Pauli channels — `samples · 2^n` amplitudes of
//! work instead of `4^n` per evaluation.
//!
//! Execution reuses the batched slab infrastructure: all trajectories of
//! one evaluation share the same bindings, so the `samples` statevectors
//! form the lanes of one [`qmarl_qsim::rows`] slab walk, with rare
//! per-lane Pauli patches where a sample's error fired.
//!
//! # Determinism
//!
//! Trajectory `i` of an evaluation draws from its own
//! [`StdRng`](rand::rngs::StdRng) seeded with
//! `derive_seed(eval_seed, TRAJ_STREAM, i)`, where `eval_seed` is the
//! content-addressed per-evaluation seed of [`crate::backend`]. Streams
//! depend only on `(root seed, inputs, params, shift salt, sample
//! index)` — never on worker count, batch position, or lane layout — so
//! serial and batched execution are bit-identical and every rerun
//! reproduces. Within a lane, draws happen in schedule order, wires
//! control before target: exactly the consumption order of the reference
//! interpreter [`qmarl_vqc::exec::run_trajectory`], which lane-for-lane
//! parity tests pin down.
//!
//! # Gradients
//!
//! Because the jump sampling is parameter-independent, a fixed seed makes
//! every trajectory a deterministic circuit — so the sampled estimator has
//! an **exact** gradient, computed by [`run_trajectory_adjoint`] with one
//! forward walk plus one reverse sweep over the shared slab (the
//! per-trajectory adjoint) instead of `O(params)` shifted re-evaluations.
//! This is what makes the trajectory backend's update sweeps orders of
//! magnitude faster than density-matrix parameter-shift at equal noise
//! fidelity in expectation.

use qmarl_qsim::complex::Complex64;
use qmarl_qsim::gate::{Gate1, RotationAxis};
use qmarl_qsim::noise::{NoiseChannel, NoiseModel};
use qmarl_qsim::rows;
use qmarl_vqc::grad::Jacobian;
use qmarl_vqc::observable::Readout;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::TRAJ_STREAM;
use crate::compile::{CGate, CompiledCircuit, FusedAngle};
use crate::error::RuntimeError;
use crate::prebound::{readouts_from_slab, rows_mut, SlabObservable};
use crate::rollout::derive_seed;

/// One gate of a trajectory-prebound schedule (raw, unfused order — noise
/// insertion points must match the source circuit's gate count).
#[derive(Debug, Clone)]
enum TOp {
    /// A rotation resolved at prebind time.
    RotSC {
        raw_idx: usize,
        qubit: usize,
        axis: RotationAxis,
        s: f64,
        c: f64,
    },
    /// An input-dependent rotation, still symbolic.
    RotSym {
        raw_idx: usize,
        qubit: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// A controlled rotation resolved at prebind time.
    CRotSC {
        raw_idx: usize,
        control: usize,
        target: usize,
        axis: RotationAxis,
        s: f64,
        c: f64,
    },
    /// An input-dependent controlled rotation.
    CRotSym {
        raw_idx: usize,
        control: usize,
        target: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// CNOT (amplitude-swap fast path).
    Cnot { control: usize, target: usize },
    /// CZ (diagonal sign-flip fast path).
    Cz { control: usize, target: usize },
    /// A fixed single-qubit unitary.
    Fixed { qubit: usize, gate: Gate1 },
}

impl TOp {
    /// The wires the gate touched (control before target) and whether it
    /// draws from the two-qubit channel.
    fn noise_site(&self) -> (usize, Option<usize>, bool) {
        match *self {
            TOp::RotSC { qubit, .. } | TOp::RotSym { qubit, .. } | TOp::Fixed { qubit, .. } => {
                (qubit, None, false)
            }
            TOp::CRotSC {
                control, target, ..
            }
            | TOp::CRotSym {
                control, target, ..
            }
            | TOp::Cnot { control, target }
            | TOp::Cz { control, target } => (control, Some(target), true),
        }
    }
}

/// Reverse-sweep companion of one [`TOp`], aligned index-for-index with
/// `TrajPrebound::ops`: whatever the adjoint's un-apply step can hoist at
/// prebind time.
#[derive(Debug, Clone)]
enum TInv {
    /// Trig of the inverse rotation (from `−θ`), hoisted at prebind.
    RotSC { s: f64, c: f64 },
    /// The dagger of a fixed single-qubit unitary.
    Dag(Gate1),
    /// Nothing to hoist: self-inverse (CNOT/CZ) or input-dependent
    /// (inverse trig resolved at run time).
    Runtime,
}

/// A compiled circuit bound to `(params, noise)` for trajectory sampling.
#[derive(Debug, Clone)]
pub struct TrajPrebound {
    n_qubits: usize,
    n_inputs: usize,
    n_params: usize,
    params: Vec<f64>,
    after_gate1: Option<NoiseChannel>,
    after_gate2: Option<NoiseChannel>,
    ops: Vec<TOp>,
    inv: Vec<TInv>,
    /// `param_of[k]` is the trainable parameter raw-schedule gate `k`
    /// consumes (pure `Angle::Param` occurrences only), if any.
    param_of: Vec<Option<usize>>,
}

impl TrajPrebound {
    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Expected input-vector length.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Trainable-parameter count of the bound circuit.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The frozen parameter vector this schedule was bound with.
    pub fn params(&self) -> &[f64] {
        &self.params
    }
}

/// Binds the **raw** schedule of a compiled circuit to `(params, noise)`
/// for trajectory sampling, hoisting every parameter-only rotation's trig.
///
/// # Errors
///
/// Returns a parameter-arity or noise-validation error.
pub fn prebind_trajectory(
    compiled: &CompiledCircuit,
    params: &[f64],
    noise: &NoiseModel,
) -> Result<TrajPrebound, RuntimeError> {
    noise.validate()?;
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    let raw = compiled.raw_schedule();
    let mut param_of = vec![None; raw.len()];
    for occ in compiled.occurrences() {
        param_of[occ.raw_idx] = Some(occ.param);
    }
    let mut ops = Vec::with_capacity(raw.len());
    let mut inv = Vec::with_capacity(raw.len());
    for (k, gate) in raw.iter().enumerate() {
        let (op, un) = match gate {
            CGate::Rot { qubit, axis, angle } => {
                if angle.depends_on_inputs() {
                    (
                        TOp::RotSym {
                            raw_idx: k,
                            qubit: *qubit,
                            axis: *axis,
                            angle: angle.clone(),
                        },
                        TInv::Runtime,
                    )
                } else {
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    let (is, ic) = (-theta / 2.0).sin_cos();
                    (
                        TOp::RotSC {
                            raw_idx: k,
                            qubit: *qubit,
                            axis: *axis,
                            s,
                            c,
                        },
                        TInv::RotSC { s: is, c: ic },
                    )
                }
            }
            CGate::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                if angle.depends_on_inputs() {
                    (
                        TOp::CRotSym {
                            raw_idx: k,
                            control: *control,
                            target: *target,
                            axis: *axis,
                            angle: angle.clone(),
                        },
                        TInv::Runtime,
                    )
                } else {
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    let (is, ic) = (-theta / 2.0).sin_cos();
                    (
                        TOp::CRotSC {
                            raw_idx: k,
                            control: *control,
                            target: *target,
                            axis: *axis,
                            s,
                            c,
                        },
                        TInv::RotSC { s: is, c: ic },
                    )
                }
            }
            CGate::Cnot { control, target } => (
                TOp::Cnot {
                    control: *control,
                    target: *target,
                },
                TInv::Runtime,
            ),
            CGate::Cz { control, target } => (
                TOp::Cz {
                    control: *control,
                    target: *target,
                },
                TInv::Runtime,
            ),
            CGate::Fixed { qubit, gate } => (
                TOp::Fixed {
                    qubit: *qubit,
                    gate: *gate,
                },
                TInv::Dag(gate.dagger()),
            ),
            CGate::Fixed2 { .. } => {
                unreachable!("entangler fusion never emits Fixed2 into the raw schedule")
            }
        };
        ops.push(op);
        inv.push(un);
    }
    Ok(TrajPrebound {
        n_qubits: compiled.n_qubits(),
        n_inputs: compiled.n_inputs(),
        n_params: compiled.n_params(),
        params: params.to_vec(),
        after_gate1: noise.after_gate1,
        after_gate2: noise.after_gate2,
        ops,
        inv,
        param_of,
    })
}

/// A uniform rotation over every lane of the slab.
#[allow(clippy::too_many_arguments)]
fn rot_uniform(
    axis: RotationAxis,
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    mt: usize,
    mc: usize,
    s: f64,
    c: f64,
) {
    match axis {
        RotationAxis::X => rows::rot_x_slab(slab, lanes, dim, mt, mc, s, c),
        RotationAxis::Y => rows::rot_y_slab(slab, lanes, dim, mt, mc, s, c),
        RotationAxis::Z => rows::phase_slab(slab, lanes, dim, mt, mc, (c, -s), (c, s)),
    }
}

/// CNOT over every lane (amplitude-swap fast path, self-inverse).
fn cnot_slab(slab: &mut [Complex64], lanes: usize, dim: usize, control: usize, target: usize) {
    let mc = 1usize << control;
    let mt = 1usize << target;
    for i in 0..dim {
        if i & mc == 0 || i & mt != 0 {
            continue;
        }
        let (r0, r1) = rows_mut(slab, lanes, i, i | mt);
        r0.swap_with_slice(r1);
    }
}

/// CZ over every lane (diagonal sign-flip fast path, self-inverse).
fn cz_slab(slab: &mut [Complex64], lanes: usize, dim: usize, control: usize, target: usize) {
    let mask = (1usize << control) | (1usize << target);
    for i in 0..dim {
        if i & mask != mask {
            continue;
        }
        for a in slab[i * lanes..(i + 1) * lanes].iter_mut() {
            *a = -*a;
        }
    }
}

/// Applies a single-qubit gate to **one lane** of the slab — the Pauli
/// patch of a fired error. Same arithmetic as the interpreter's
/// `apply_gate1` (generic 2×2 product), strided over the lane.
fn apply_gate1_lane(
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
    q: usize,
    g: &Gate1,
    lane: usize,
) {
    let m = g.matrix();
    let mask = 1usize << q;
    for i in 0..dim {
        if i & mask != 0 {
            continue;
        }
        let a = slab[i * lanes + lane];
        let b = slab[(i | mask) * lanes + lane];
        slab[i * lanes + lane] = m[0][0] * a + m[0][1] * b;
        slab[(i | mask) * lanes + lane] = m[1][0] * a + m[1][1] * b;
    }
}

/// The fired Pauli errors of one forward walk: `record[k]` lists the
/// `(wire, lane, gate)` patches applied after schedule op `k`, in
/// application order. Un-applying them newest-first (Paulis are
/// self-inverse) restores the pre-patch slab bit-exactly.
type JumpRecord = Vec<Vec<(usize, usize, Gate1)>>;

/// Runs `samples` trajectories of one evaluation as the lanes of a single
/// slab walk, returning `slab[amp · samples + sample]`. `override_angle`
/// forces one raw-schedule gate's angle (the parameter-shift primitive);
/// `eval_seed` is the content-addressed per-evaluation seed the
/// per-sample streams derive from. With `record`, every fired error is
/// also logged for the adjoint's reverse sweep — the rng draw sequence is
/// identical either way.
fn walk_forward(
    pb: &TrajPrebound,
    inputs: &[f64],
    samples: usize,
    eval_seed: u64,
    override_angle: Option<(usize, f64)>,
    mut record: Option<&mut JumpRecord>,
) -> Vec<Complex64> {
    let lanes = samples;
    if lanes == 0 {
        return Vec::new();
    }
    let dim = 1usize << pb.n_qubits;
    let mut slab = vec![Complex64::ZERO; dim * lanes];
    for cell in slab[..lanes].iter_mut() {
        *cell = Complex64::ONE; // every trajectory starts in |0…0⟩
    }
    let mut rngs: Vec<StdRng> = (0..samples)
        .map(|i| StdRng::seed_from_u64(derive_seed(eval_seed, TRAJ_STREAM, i as u64)))
        .collect();

    for (k, op) in pb.ops.iter().enumerate() {
        // 1. The gate, uniform across lanes (all trajectories share the
        //    same bindings).
        match op {
            TOp::RotSC {
                raw_idx,
                qubit,
                axis,
                s,
                c,
            } => {
                let (s, c) = match override_angle {
                    Some((idx, theta)) if idx == *raw_idx => (theta / 2.0).sin_cos(),
                    _ => (*s, *c),
                };
                rot_uniform(*axis, &mut slab, lanes, dim, 1 << qubit, 0, s, c);
            }
            TOp::RotSym {
                raw_idx,
                qubit,
                axis,
                angle,
            } => {
                let theta = match override_angle {
                    Some((idx, t)) if idx == *raw_idx => t,
                    _ => angle.value(inputs, &pb.params),
                };
                let (s, c) = (theta / 2.0).sin_cos();
                rot_uniform(*axis, &mut slab, lanes, dim, 1 << qubit, 0, s, c);
            }
            TOp::CRotSC {
                raw_idx,
                control,
                target,
                axis,
                s,
                c,
            } => {
                let (s, c) = match override_angle {
                    Some((idx, theta)) if idx == *raw_idx => (theta / 2.0).sin_cos(),
                    _ => (*s, *c),
                };
                rot_uniform(
                    *axis,
                    &mut slab,
                    lanes,
                    dim,
                    1 << target,
                    1 << control,
                    s,
                    c,
                );
            }
            TOp::CRotSym {
                raw_idx,
                control,
                target,
                axis,
                angle,
            } => {
                let theta = match override_angle {
                    Some((idx, t)) if idx == *raw_idx => t,
                    _ => angle.value(inputs, &pb.params),
                };
                let (s, c) = (theta / 2.0).sin_cos();
                rot_uniform(
                    *axis,
                    &mut slab,
                    lanes,
                    dim,
                    1 << target,
                    1 << control,
                    s,
                    c,
                );
            }
            TOp::Cnot { control, target } => {
                cnot_slab(&mut slab, lanes, dim, *control, *target);
            }
            TOp::Cz { control, target } => {
                cz_slab(&mut slab, lanes, dim, *control, *target);
            }
            TOp::Fixed { qubit, gate } => {
                rows::gate1_slab(&mut slab, lanes, dim, 1usize << qubit, gate);
            }
        }
        // 2. The channel: each lane draws from its own stream, wires
        //    control before target — the interpreter's order.
        let (w0, w1, two_qubit) = op.noise_site();
        let channel = if two_qubit {
            pb.after_gate2
        } else {
            pb.after_gate1
        };
        if let Some(ch) = channel {
            for w in [Some(w0), w1].into_iter().flatten() {
                for (lane, rng) in rngs.iter_mut().enumerate() {
                    if let Some(err) = ch.sample_pauli_error(rng) {
                        apply_gate1_lane(&mut slab, lanes, dim, w, &err, lane);
                        if let Some(rec) = record.as_deref_mut() {
                            rec[k].push((w, lane, err));
                        }
                    }
                }
            }
        }
    }
    slab
}

/// [`walk_forward`] without jump recording — the forward-only entry point
/// (readout evaluation and the parameter-shift primitive).
pub(crate) fn run_trajectory_slab(
    pb: &TrajPrebound,
    inputs: &[f64],
    samples: usize,
    eval_seed: u64,
    override_angle: Option<(usize, f64)>,
) -> Vec<Complex64> {
    walk_forward(pb, inputs, samples, eval_seed, override_angle, None)
}

/// One backend evaluation by trajectory sampling: runs `samples`
/// trajectories and returns the readout averaged over them in ascending
/// sample order.
pub(crate) fn trajectory_outputs(
    pb: &TrajPrebound,
    readout: &Readout,
    inputs: &[f64],
    samples: usize,
    eval_seed: u64,
    override_angle: Option<(usize, f64)>,
) -> Vec<f64> {
    let slab = run_trajectory_slab(pb, inputs, samples, eval_seed, override_angle);
    mean_over_samples(readout, &slab, samples)
}

/// The readout averaged over the slab's lanes in ascending sample order —
/// the estimator both the forward pass and the adjoint report, so their
/// outputs are bit-identical by construction.
fn mean_over_samples(readout: &Readout, slab: &[Complex64], samples: usize) -> Vec<f64> {
    let per_sample = readouts_from_slab(readout, slab, samples);
    let mut acc = vec![0.0f64; readout.output_len()];
    for out in &per_sample {
        for (a, v) in acc.iter_mut().zip(out) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= samples as f64;
    }
    acc
}

/// Un-applies schedule op `k` from a slab — one step of the adjoint's
/// reverse sweep. Resolved rotations use the trig hoisted into
/// [`TInv::RotSC`]; symbolic ones re-derive it from the bound angle.
fn un_apply_op(
    pb: &TrajPrebound,
    k: usize,
    inputs: &[f64],
    slab: &mut [Complex64],
    lanes: usize,
    dim: usize,
) {
    match (&pb.ops[k], &pb.inv[k]) {
        (TOp::RotSC { qubit, axis, .. }, TInv::RotSC { s, c }) => {
            rot_uniform(*axis, slab, lanes, dim, 1 << qubit, 0, *s, *c);
        }
        (
            TOp::RotSym {
                qubit, axis, angle, ..
            },
            _,
        ) => {
            let theta = angle.value(inputs, &pb.params);
            let (s, c) = (-theta / 2.0).sin_cos();
            rot_uniform(*axis, slab, lanes, dim, 1 << qubit, 0, s, c);
        }
        (
            TOp::CRotSC {
                control,
                target,
                axis,
                ..
            },
            TInv::RotSC { s, c },
        ) => {
            rot_uniform(*axis, slab, lanes, dim, 1 << target, 1 << control, *s, *c);
        }
        (
            TOp::CRotSym {
                control,
                target,
                axis,
                angle,
                ..
            },
            _,
        ) => {
            let theta = angle.value(inputs, &pb.params);
            let (s, c) = (-theta / 2.0).sin_cos();
            rot_uniform(*axis, slab, lanes, dim, 1 << target, 1 << control, s, c);
        }
        (TOp::Cnot { control, target }, _) => cnot_slab(slab, lanes, dim, *control, *target),
        (TOp::Cz { control, target }, _) => cz_slab(slab, lanes, dim, *control, *target),
        (TOp::Fixed { qubit, .. }, TInv::Dag(g)) => {
            rows::gate1_slab(slab, lanes, dim, 1usize << qubit, g);
        }
        _ => unreachable!("ops/inv tables misaligned"),
    }
}

/// One backend evaluation **with gradient** by the per-trajectory adjoint.
///
/// The jump probabilities of [`NoiseChannel::sample_pauli_error`] never
/// depend on the circuit parameters, so with the derived per-sample
/// streams fixed, every trajectory is a deterministic circuit: the
/// schedule's gates interleaved with that lane's fired Pauli patches. The
/// sampled estimator `Ê(θ) = mean_i ⟨ψ_i(θ)|O|ψ_i(θ)⟩` is therefore
/// differentiable exactly, and its gradient is the lane-mean of each
/// trajectory's adjoint gradient — one forward walk (recording the fired
/// jumps) plus one reverse sweep over the shared slab, instead of two
/// (four for controlled rotations) full re-evaluations per parameter that
/// the shift rule costs.
///
/// The reverse sweep mirrors [`crate::prebound`]'s ideal engine: λ_j =
/// O_j|ψ⟩ per output, then walking the schedule backwards un-applying
/// each op (and its recorded patches — Paulis are self-inverse, so the
/// un-apply is bit-exact) from φ and every λ, accumulating
/// `Im⟨λ_j|G|φ⟩` at each trainable occurrence via the shared
/// `rows::adj_acc_slab_multi` kernels, and stopping right after the
/// earliest trainable op. Forward outputs are bit-identical to
/// [`trajectory_outputs`]: same walk, same mean.
pub(crate) fn run_trajectory_adjoint(
    pb: &TrajPrebound,
    readout: &Readout,
    inputs: &[f64],
    samples: usize,
    eval_seed: u64,
) -> (Vec<f64>, Jacobian) {
    let lanes = samples;
    let n_out = readout.output_len();
    if lanes == 0 {
        return (vec![0.0; n_out], Jacobian::zeros(n_out, pb.n_params));
    }
    let dim = 1usize << pb.n_qubits;
    let mut record: JumpRecord = vec![Vec::new(); pb.ops.len()];
    let mut phi = walk_forward(pb, inputs, samples, eval_seed, None, Some(&mut record));
    let outs = mean_over_samples(readout, &phi, samples);

    let mut jac = Jacobian::zeros(n_out, pb.n_params);
    let Some(first_param) = (0..pb.ops.len()).find(|&k| pb.param_of[k].is_some()) else {
        return (outs, jac);
    };

    let observables = SlabObservable::of_readout(readout);
    let mut lambdas: Vec<Vec<Complex64>> = observables
        .iter()
        .map(|o| o.apply_slab(&phi, lanes))
        .collect();

    let mut accs = vec![0.0f64; n_out * lanes];
    let mut gbuf = vec![Complex64::new(0.0, 0.0); lanes];
    for k in (first_param..pb.ops.len()).rev() {
        // 1. Un-apply op k's channel patches (newest first) so φ and
        //    every λ sit right after gate k.
        for &(w, lane, g) in record[k].iter().rev() {
            apply_gate1_lane(&mut phi, lanes, dim, w, &g, lane);
            for lam in &mut lambdas {
                apply_gate1_lane(lam, lanes, dim, w, &g, lane);
            }
        }
        // 2. The contribution: ∂Ê/∂θ_p += mean over lanes of
        //    Im⟨λ_j|G|φ⟩ (the /samples scale is applied once at the end).
        if let Some(p) = pb.param_of[k] {
            accs.fill(0.0);
            let lrefs: Vec<&[Complex64]> = lambdas.iter().map(|l| l.as_slice()).collect();
            let (mt, mc, axis) = match &pb.ops[k] {
                TOp::RotSC { qubit, axis, .. } | TOp::RotSym { qubit, axis, .. } => {
                    (1usize << qubit, 0, *axis)
                }
                TOp::CRotSC {
                    control,
                    target,
                    axis,
                    ..
                }
                | TOp::CRotSym {
                    control,
                    target,
                    axis,
                    ..
                } => (1usize << target, 1usize << control, *axis),
                _ => unreachable!("param_of marks only rotations"),
            };
            match axis {
                RotationAxis::X => rows::adj_acc_slab_multi::<{ rows::AXIS_X }>(
                    &mut accs, &lrefs, &phi, &mut gbuf, lanes, dim, mt, mc,
                ),
                RotationAxis::Y => rows::adj_acc_slab_multi::<{ rows::AXIS_Y }>(
                    &mut accs, &lrefs, &phi, &mut gbuf, lanes, dim, mt, mc,
                ),
                RotationAxis::Z => rows::adj_acc_slab_multi::<{ rows::AXIS_Z }>(
                    &mut accs, &lrefs, &phi, &mut gbuf, lanes, dim, mt, mc,
                ),
            }
            for j in 0..n_out {
                let mut sum = 0.0;
                for lane in 0..lanes {
                    sum += accs[j * lanes + lane];
                }
                *jac.get_mut(j, p) += sum;
            }
        }
        if k == first_param {
            break;
        }
        // 3. Un-apply gate k itself from φ and every λ.
        un_apply_op(pb, k, inputs, &mut phi, lanes, dim);
        for lam in &mut lambdas {
            un_apply_op(pb, k, inputs, lam, lanes, dim);
        }
    }
    let scale = 1.0 / samples as f64;
    for j in 0..n_out {
        for p in 0..pb.n_params {
            *jac.get_mut(j, p) *= scale;
        }
    }
    (outs, jac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::run_compiled;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

    fn busy_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(1))).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(1)))
            .unwrap();
        c.controlled_rot(1, 2, Ax::Z, Angle::Input(InputId(0)))
            .unwrap();
        c.cnot(1, 2).unwrap();
        c.cz(0, 2).unwrap();
        c.rot(2, Ax::Z, Angle::Const(0.7)).unwrap();
        c
    }

    #[test]
    fn slab_lanes_match_the_vqc_reference_interpreter() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let inputs = [0.4, -0.6];
        let noise = NoiseModel::depolarizing(0.15, 0.25).unwrap();
        let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
        let samples = 8;
        let eval_seed = 0xDEAD_BEEF;
        let slab = run_trajectory_slab(&pb, &inputs, samples, eval_seed, None);
        for lane in 0..samples {
            let mut rng = StdRng::seed_from_u64(derive_seed(eval_seed, TRAJ_STREAM, lane as u64));
            let reference =
                qmarl_vqc::exec::run_trajectory(&c, &inputs, &params, &noise, &mut rng).unwrap();
            for (i, want) in reference.amplitudes().iter().enumerate() {
                let got = slab[i * samples + lane];
                assert!(
                    (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                    "lane {lane} amp {i}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn noiseless_trajectories_all_equal_the_pure_state() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let inputs = [0.4, -0.6];
        let pb = prebind_trajectory(&compiled, &params, &NoiseModel::noiseless()).unwrap();
        let samples = 4;
        let slab = run_trajectory_slab(&pb, &inputs, samples, 123, None);
        let pure = run_compiled(&compiled, &inputs, &params).unwrap();
        for lane in 0..samples {
            for (i, want) in pure.amplitudes().iter().enumerate() {
                let got = slab[i * samples + lane];
                assert!(
                    (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                    "lane {lane} amp {i}"
                );
            }
        }
    }

    #[test]
    fn sample_streams_are_independent_of_sample_count() {
        // Trajectory i draws from derive_seed(eval_seed, TRAJ_STREAM, i)
        // regardless of how many trajectories run alongside it, so a
        // prefix of a bigger run is bit-identical to a smaller run.
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let inputs = [0.4, -0.6];
        let noise = NoiseModel::depolarizing(0.3, 0.4).unwrap();
        let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
        let small = run_trajectory_slab(&pb, &inputs, 3, 55, None);
        let big = run_trajectory_slab(&pb, &inputs, 9, 55, None);
        let dim = 1usize << pb.n_qubits();
        for lane in 0..3 {
            for i in 0..dim {
                assert_eq!(
                    small[i * 3 + lane],
                    big[i * 9 + lane],
                    "lane {lane} amp {i}"
                );
            }
        }
    }

    #[test]
    fn override_shifts_only_the_targeted_gate() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let inputs = [0.4, -0.6];
        let noise = NoiseModel::depolarizing(0.05, 0.05).unwrap();
        let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
        // Raw idx 3 is the Ry(param 0) rotation; overriding with the bound
        // value reproduces the plain run bit-for-bit (same rng streams).
        let plain = run_trajectory_slab(&pb, &inputs, 4, 9, None);
        let same = run_trajectory_slab(&pb, &inputs, 4, 9, Some((3, params[0])));
        assert_eq!(plain, same);
        let shifted = run_trajectory_slab(&pb, &inputs, 4, 9, Some((3, params[0] + 1.0)));
        assert_ne!(plain, shifted);
    }

    #[test]
    fn outputs_average_over_samples_and_arity_is_validated() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let noise = NoiseModel::depolarizing(0.1, 0.1).unwrap();
        let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
        assert_eq!(pb.n_qubits(), 3);
        assert_eq!(pb.n_inputs(), 2);
        assert_eq!(pb.params(), &params[..]);
        assert!(matches!(
            prebind_trajectory(&compiled, &params[..1], &noise),
            Err(RuntimeError::ParamLenMismatch { .. })
        ));
        let readout = Readout::z_all(3);
        let out = trajectory_outputs(&pb, &readout, &[0.4, -0.6], 16, 77, None);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|z| (-1.0..=1.0).contains(z)));
        // The mean equals the hand-folded per-sample mean.
        let slab = run_trajectory_slab(&pb, &[0.4, -0.6], 16, 77, None);
        let per_sample = readouts_from_slab(&readout, &slab, 16);
        for (q, z) in out.iter().enumerate() {
            let want = per_sample.iter().map(|o| o[q]).sum::<f64>() / 16.0;
            assert_eq!(*z, want);
        }
    }

    /// One parameter feeding two rotations (plain and controlled): the
    /// adjoint must sum both occurrences' contributions.
    fn shared_param_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.cnot(0, 1).unwrap();
        c.rot(1, Ax::X, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::Y, Angle::Param(ParamId(1)))
            .unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(0))).unwrap();
        c
    }

    #[test]
    fn noiseless_adjoint_matches_the_ideal_adjoint() {
        for (c, params, inputs) in [
            (busy_circuit(), vec![0.9, -1.3], vec![0.4, -0.6]),
            (shared_param_circuit(), vec![0.5, 1.1], vec![-0.3]),
        ] {
            let compiled = compile(&c);
            let readout = Readout::z_all(c.n_qubits());
            let pb = prebind_trajectory(&compiled, &params, &NoiseModel::noiseless()).unwrap();
            let (outs, jac) = run_trajectory_adjoint(&pb, &readout, &inputs, 4, 321);
            let state = qmarl_vqc::exec::run(&c, &inputs, &params).unwrap();
            let want_outs = readout.evaluate(&state).unwrap();
            let want_jac =
                qmarl_vqc::grad::jacobian_adjoint(&c, &readout, &inputs, &params).unwrap();
            for (got, want) in outs.iter().zip(&want_outs) {
                assert!((got - want).abs() < 1e-12, "output {got} vs {want}");
            }
            assert_eq!(jac.n_outputs(), want_jac.n_outputs());
            assert_eq!(jac.n_params(), want_jac.n_params());
            for j in 0..jac.n_outputs() {
                for p in 0..jac.n_params() {
                    let (got, want) = (jac.get(j, p), want_jac.get(j, p));
                    assert!((got - want).abs() < 1e-12, "jac[{j},{p}]: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn adjoint_forward_outputs_are_bit_identical_to_the_sampler() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.9, -1.3];
        let inputs = [0.4, -0.6];
        let noise = NoiseModel::depolarizing(0.2, 0.3).unwrap();
        let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
        let readout = Readout::z_all(3);
        let (outs, _) = run_trajectory_adjoint(&pb, &readout, &inputs, 16, 77);
        let plain = trajectory_outputs(&pb, &readout, &inputs, 16, 77, None);
        assert_eq!(outs, plain, "recording jumps must not perturb the walk");
    }

    #[test]
    fn adjoint_gradient_is_the_exact_derivative_of_the_sampled_estimator() {
        // The jump draws are parameter-independent, so central differences
        // through re-prebound (θ ± ε) forward runs with the same eval
        // seed differentiate the exact same deterministic estimator the
        // adjoint does.
        let eps = 1e-5;
        for (c, params, inputs) in [
            (busy_circuit(), vec![0.9, -1.3], vec![0.4, -0.6]),
            (shared_param_circuit(), vec![0.5, 1.1], vec![-0.3]),
        ] {
            let compiled = compile(&c);
            let readout = Readout::z_all(c.n_qubits());
            let noise = NoiseModel::depolarizing(0.2, 0.3).unwrap();
            let (samples, eval_seed) = (12, 0xFEED);
            let pb = prebind_trajectory(&compiled, &params, &noise).unwrap();
            let (_, jac) = run_trajectory_adjoint(&pb, &readout, &inputs, samples, eval_seed);
            for p in 0..params.len() {
                let mut hi = params.clone();
                hi[p] += eps;
                let mut lo = params.clone();
                lo[p] -= eps;
                let pb_hi = prebind_trajectory(&compiled, &hi, &noise).unwrap();
                let pb_lo = prebind_trajectory(&compiled, &lo, &noise).unwrap();
                let out_hi =
                    trajectory_outputs(&pb_hi, &readout, &inputs, samples, eval_seed, None);
                let out_lo =
                    trajectory_outputs(&pb_lo, &readout, &inputs, samples, eval_seed, None);
                for j in 0..readout.output_len() {
                    let fd = (out_hi[j] - out_lo[j]) / (2.0 * eps);
                    let got = jac.get(j, p);
                    assert!(
                        (got - fd).abs() < 1e-6,
                        "jac[{j},{p}]: adjoint {got} vs finite-diff {fd}"
                    );
                }
            }
        }
    }
}
