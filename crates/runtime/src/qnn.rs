//! [`CompiledVqc`]: a [`Vqc`] model bound to its compiled schedule.
//!
//! This is the runtime's model-facing API and what `qmarl-core`'s quantum
//! actors and critics execute through. Construction looks the circuit up
//! in the global [`CircuitCache`] (so every clone and every same-shaped
//! model shares one compilation), single evaluations run the fused
//! schedule, and the batch entry points fan out over the
//! [`BatchExecutor`].
//!
//! Gradient routing: `ParameterShift` and `FiniteDiff` requests go
//! through the runtime's compiled/batched paths; `Adjoint` delegates to
//! `vqc::grad` (a reverse sweep is inherently sequential per sample, so
//! there is nothing for the batch engine to win within one evaluation —
//! batches of adjoint evaluations still parallelise across samples).

use std::sync::Arc;

use qmarl_vqc::grad::{GradMethod, Jacobian};
use qmarl_vqc::qnn::Vqc;

use crate::backend::ExecutionBackend;
use crate::batch::BatchExecutor;
use crate::cache::CircuitCache;
use crate::compile::CompiledCircuit;
use crate::error::RuntimeError;
use crate::exec;

/// A VQC model plus its cached compiled schedule, batch executor and
/// execution backend.
#[derive(Debug, Clone)]
pub struct CompiledVqc {
    model: Vqc,
    compiled: Arc<CompiledCircuit>,
    executor: BatchExecutor,
    backend: ExecutionBackend,
}

impl CompiledVqc {
    /// Compiles (or cache-hits) the model's circuit and attaches the
    /// default executor on the [`ExecutionBackend::Ideal`] backend.
    pub fn new(model: Vqc) -> Self {
        let compiled = CircuitCache::global().get_or_compile(model.circuit());
        CompiledVqc {
            model,
            compiled,
            executor: BatchExecutor::default(),
            backend: ExecutionBackend::Ideal,
        }
    }

    /// Overrides the executor (worker count).
    pub fn with_executor(mut self, executor: BatchExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the execution backend (default:
    /// [`ExecutionBackend::Ideal`], which is bit-identical to not setting
    /// a backend at all). Under `Sampled`/`Noisy`, every forward pass
    /// runs on that backend and **all** gradient requests route through
    /// the batched parameter-shift queue — the adjoint and prebound paths
    /// need exact statevectors and stay `Ideal`-only.
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend in use.
    pub fn backend(&self) -> &ExecutionBackend {
        &self.backend
    }

    /// The wrapped model.
    pub fn model(&self) -> &Vqc {
        &self.model
    }

    /// The compiled schedule backing this model.
    pub fn compiled(&self) -> &Arc<CompiledCircuit> {
        &self.compiled
    }

    /// The batch executor in use.
    pub fn executor(&self) -> &BatchExecutor {
        &self.executor
    }

    /// Single forward pass over the fused schedule.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward(&self, inputs: &[f64], params: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let (circ, scales, biases) = self.model.split_params(params)?;
        let scaled = self.model.input_scaling().apply_all(inputs);
        let raw = if self.backend.is_ideal() {
            let state = exec::run_compiled(&self.compiled, &scaled, circ)?;
            self.model.readout().evaluate(&state)?
        } else {
            self.executor
                .expectation_batch_backend(
                    &self.compiled,
                    self.model.readout(),
                    std::slice::from_ref(&scaled),
                    circ,
                    &self.backend,
                )?
                .pop()
                .expect("one sample in, one out")
        };
        Ok(self.model.apply_head(&raw, scales, biases))
    }

    /// Batched forward pass: one output vector per observation.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_batch(
        &self,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let (circ, scales, biases) = self.model.split_params(params)?;
        let scaled: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| self.model.input_scaling().apply_all(x))
            .collect();
        let raws = self.executor.expectation_batch_backend(
            &self.compiled,
            self.model.readout(),
            &scaled,
            circ,
            &self.backend,
        )?;
        Ok(raws
            .iter()
            .map(|raw| self.model.apply_head(raw, scales, biases))
            .collect())
    }

    /// Forward pass plus full-parameter Jacobian, routing through the
    /// compiled schedules (see module docs for per-method routing). The
    /// requested method applies on the `Ideal` backend; `Sampled`/`Noisy`
    /// always differentiate by the parameter-shift rule on their own
    /// backend (adjoint and finite differences need exact statevectors),
    /// and `Trajectory` by the per-trajectory adjoint inside the same
    /// batched path (exact gradient of its sampled estimator).
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_with_jacobian(
        &self,
        inputs: &[f64],
        params: &[f64],
        method: GradMethod,
    ) -> Result<(Vec<f64>, Jacobian), RuntimeError> {
        match self.backend.effective_grad_method(method) {
            GradMethod::ParameterShift => {
                let (circ, scales, biases) = self.model.split_params(params)?;
                let scaled = vec![self.model.input_scaling().apply_all(inputs)];
                let (mut outs, mut jacs) = self.executor.forward_and_jacobian_batch_backend(
                    &self.compiled,
                    self.model.readout(),
                    &scaled,
                    circ,
                    &self.backend,
                )?;
                let raw = outs.pop().expect("one sample in, one out");
                let circ_jac = jacs.pop().expect("one sample in, one out");
                Ok(self
                    .model
                    .assemble_jacobian(&raw, &circ_jac, scales, biases))
            }
            GradMethod::Adjoint | GradMethod::FiniteDiff => {
                Ok(self.model.forward_with_jacobian(inputs, params, method)?)
            }
        }
    }

    /// Batched forward + Jacobian over a minibatch of observations under
    /// shared parameters — the training hot path. All shift evaluations
    /// across the whole minibatch form one flat work queue.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_with_jacobian_batch(
        &self,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<(Vec<f64>, Jacobian)>, RuntimeError> {
        let (circ, scales, biases) = self.model.split_params(params)?;
        let scaled: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| self.model.input_scaling().apply_all(x))
            .collect();
        let (outs, jacs) = self.executor.forward_and_jacobian_batch_backend(
            &self.compiled,
            self.model.readout(),
            &scaled,
            circ,
            &self.backend,
        )?;
        Ok(outs
            .iter()
            .zip(&jacs)
            .map(|(raw, cj)| self.model.assemble_jacobian(raw, cj, scales, biases))
            .collect())
    }

    /// Batched **adjoint** forward + Jacobian over a minibatch of
    /// observations under shared (frozen) parameters — the training
    /// update's hot path. The circuit is adjoint-prebound once
    /// ([`crate::prebound::prebind_adjoint`]: forward *and* inverse trig
    /// of every parameter-only rotation hoisted out of the per-sample
    /// loop), then the whole minibatch runs as lane slabs through the
    /// executor's flat work queue, one forward-walk-plus-reverse-sweep
    /// pair per chunk.
    ///
    /// Per sample the result is **bit-identical** to
    /// [`CompiledVqc::forward_with_jacobian`] with [`GradMethod::Adjoint`]
    /// (asserted by this module's tests and the trainer equivalence
    /// suite).
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_with_jacobian_batch_prebound(
        &self,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<(Vec<f64>, Jacobian)>, RuntimeError> {
        if !self.backend.supports_adjoint() {
            // Ideal-state adjoint/prebound needs exact statevectors:
            // stochastic backends route to the batched backend queue on
            // their own backend (parameter-shift for `Sampled`/`Noisy`,
            // the per-trajectory adjoint for `Trajectory`).
            return self.forward_with_jacobian_batch(inputs, params);
        }
        let (circ, scales, biases) = self.model.split_params(params)?;
        let scaled: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| self.model.input_scaling().apply_all(x))
            .collect();
        let prebound = crate::prebound::prebind_adjoint(&self.compiled, circ)?;
        let group = crate::batch::AdjointGroup {
            circuit: &prebound,
            inputs: scaled.iter().map(|v| v.as_slice()).collect(),
        };
        let mut per_group = self
            .executor
            .forward_and_jacobian_batch_prebound(self.model.readout(), &[group])?;
        Ok(per_group
            .pop()
            .expect("one group in, one out")
            .into_iter()
            .map(|(raw, circ_jac)| {
                self.model
                    .assemble_jacobian(&raw, &circ_jac, scales, biases)
            })
            .collect())
    }

    /// Batched **adjoint** forward + Jacobian — alias for
    /// [`CompiledVqc::forward_with_jacobian_batch_prebound`], kept for the
    /// PR-1 API surface.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_with_jacobian_batch_adjoint(
        &self,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<(Vec<f64>, Jacobian)>, RuntimeError> {
        self.forward_with_jacobian_batch_prebound(inputs, params)
    }

    /// Batched scalar evaluation (critic values): the first output of
    /// every sample's forward pass.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn values_batch(
        &self,
        inputs: &[Vec<f64>],
        params: &[f64],
    ) -> Result<Vec<f64>, RuntimeError> {
        Ok(self
            .forward_batch(inputs, params)?
            .into_iter()
            .map(|out| out[0])
            .collect())
    }

    /// Single-sample adjoint Jacobian through the uncompiled model —
    /// exposed for completeness/testing parity with [`grad::jacobian`].
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn jacobian_adjoint(
        &self,
        inputs: &[f64],
        params: &[f64],
    ) -> Result<(Vec<f64>, Jacobian), RuntimeError> {
        Ok(self
            .model
            .forward_with_jacobian(inputs, params, GradMethod::Adjoint)?)
    }

    /// Freezes `params` into a [`PreboundVqc`] inference handle: the
    /// circuit parameters are split and prebound once
    /// ([`crate::prebound::prebind`] hoists all parameter-only rotation
    /// trig), the head scales/biases are copied out, and every subsequent
    /// forward pass walks a trig-free schedule. This is the handle for
    /// repeated inference **outside the trainer** — a policy server or
    /// any caller evaluating a frozen model many times — where re-paying
    /// the parameter resolution per call (as [`CompiledVqc::forward`]
    /// must, since its parameters may change between calls) is pure
    /// waste.
    ///
    /// Results are **bit-identical** to [`CompiledVqc::forward`] /
    /// [`CompiledVqc::forward_batch`] under the same parameters (asserted
    /// by this module's tests; the prebind exactness contract).
    ///
    /// # Errors
    ///
    /// Returns binding-length errors, and rejects non-`Ideal` backends:
    /// the prebound path evaluates exact statevectors, so freezing a
    /// `Sampled`/`Noisy` model here would silently serve noise-free
    /// outputs that look stochastic-backed.
    pub fn prebind(&self, params: &[f64]) -> Result<PreboundVqc, RuntimeError> {
        if !self.backend.is_ideal() {
            return Err(RuntimeError::InvalidConfig(format!(
                "prebind requires the Ideal backend (got {}); stochastic backends resolve \
                 per evaluation and have nothing to hoist",
                self.backend
            )));
        }
        let (circ, scales, biases) = self.model.split_params(params)?;
        let prebound = crate::prebound::prebind(&self.compiled, circ)?;
        Ok(PreboundVqc {
            vqc: self.clone(),
            prebound,
            scales: scales.to_vec(),
            biases: biases.to_vec(),
        })
    }
}

/// A [`CompiledVqc`] with **frozen, prebound** parameters — the
/// inference-serving handle.
///
/// Where [`CompiledVqc::forward`] re-splits and re-resolves its
/// parameters on every call (they may differ call to call during
/// training), this handle did that work once at construction
/// ([`CompiledVqc::prebind`]) and serves every evaluation off the
/// trig-free schedule. Single evaluations run the prebound schedule
/// directly; batches go through the executor's prebound lane-slab queue
/// as one flat group.
#[derive(Debug, Clone)]
pub struct PreboundVqc {
    vqc: CompiledVqc,
    prebound: crate::prebound::PreboundCircuit,
    scales: Vec<f64>,
    biases: Vec<f64>,
}

impl PreboundVqc {
    /// The underlying model + schedule bundle.
    pub fn vqc(&self) -> &CompiledVqc {
        &self.vqc
    }

    /// Rotations whose angles were fully resolved at prebind time.
    pub fn resolved_rotations(&self) -> usize {
        self.prebound.resolved_rotations()
    }

    /// Single forward pass over the frozen schedule. Bit-identical to
    /// [`CompiledVqc::forward`] with the frozen parameters.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward(&self, inputs: &[f64]) -> Result<Vec<f64>, RuntimeError> {
        let scaled = self.vqc.model().input_scaling().apply_all(inputs);
        let state = crate::prebound::run_prebound(&self.prebound, &scaled)?;
        let raw = self.vqc.model().readout().evaluate(&state)?;
        Ok(self
            .vqc
            .model()
            .apply_head(&raw, &self.scales, &self.biases))
    }

    /// Batched forward pass: the whole batch reaches the executor as one
    /// prebound group (one flat work queue). Bit-identical to
    /// [`CompiledVqc::forward_batch`] with the frozen parameters.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, RuntimeError> {
        let scaled: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| self.vqc.model().input_scaling().apply_all(x))
            .collect();
        let group = crate::batch::PreboundGroup {
            circuit: &self.prebound,
            inputs: scaled.iter().map(|v| v.as_slice()).collect(),
        };
        let raws = self
            .vqc
            .executor()
            .expectation_batch_prebound(self.vqc.model().readout(), &[group])?;
        Ok(raws
            .into_iter()
            .next()
            .expect("one group in, one out")
            .iter()
            .map(|raw| self.vqc.model().apply_head(raw, &self.scales, &self.biases))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_vqc::observable::Readout;
    use qmarl_vqc::qnn::{OutputHead, VqcBuilder};

    fn actor_like() -> Vqc {
        VqcBuilder::new(4)
            .encoder_inputs(4)
            .ansatz_params(20)
            .readout(Readout::z_all(4))
            .output_head(OutputHead::Affine)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_matches_uncompiled_model() {
        let model = actor_like();
        let params = model.init_params(3);
        let compiled = CompiledVqc::new(model.clone());
        let obs = [0.2, 0.8, 0.5, 0.1];
        let fast = compiled.forward(&obs, &params).unwrap();
        let reference = model.forward(&obs, &params).unwrap();
        for (a, b) in fast.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_batch_matches_singles() {
        let compiled = CompiledVqc::new(actor_like());
        let params = compiled.model().init_params(5);
        let batch: Vec<Vec<f64>> = (0..6)
            .map(|b| (0..4).map(|i| 0.05 * (b + i) as f64).collect())
            .collect();
        let outs = compiled.forward_batch(&batch, &params).unwrap();
        for (obs, out) in batch.iter().zip(&outs) {
            let single = compiled.forward(obs, &params).unwrap();
            assert_eq!(*out, single);
        }
    }

    #[test]
    fn parameter_shift_through_runtime_matches_vqc() {
        let model = actor_like();
        let params = model.init_params(7);
        let compiled = CompiledVqc::new(model.clone());
        let obs = [0.3, 0.1, 0.9, 0.6];
        let (out_rt, jac_rt) = compiled
            .forward_with_jacobian(&obs, &params, GradMethod::ParameterShift)
            .unwrap();
        let (out_ref, jac_ref) = model
            .forward_with_jacobian(&obs, &params, GradMethod::ParameterShift)
            .unwrap();
        for (a, b) in out_rt.iter().zip(&out_ref) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(jac_rt.max_abs_diff(&jac_ref) < 1e-12);
    }

    #[test]
    fn batch_jacobians_match_singles() {
        let compiled = CompiledVqc::new(actor_like());
        let params = compiled.model().init_params(9);
        let batch: Vec<Vec<f64>> = (0..3)
            .map(|b| (0..4).map(|i| 0.07 * (b * 3 + i) as f64).collect())
            .collect();
        let results = compiled
            .forward_with_jacobian_batch(&batch, &params)
            .unwrap();
        for (obs, (out, jac)) in batch.iter().zip(&results) {
            let (o, j) = compiled
                .forward_with_jacobian(obs, &params, GradMethod::ParameterShift)
                .unwrap();
            assert_eq!(*out, o);
            assert_eq!(jac.max_abs_diff(&j), 0.0);
        }
        // Adjoint batch agrees with parameter-shift to gradient precision.
        let adjoint = compiled
            .forward_with_jacobian_batch_adjoint(&batch, &params)
            .unwrap();
        for ((_, a), (_, b)) in adjoint.iter().zip(&results) {
            assert!(a.max_abs_diff(b) < 1e-9);
        }
    }

    #[test]
    fn prebound_adjoint_batch_is_bit_identical_to_single_adjoint() {
        // Both the actor shape (vector readout, affine head) and the
        // critic shape (scalar weighted readout): the batched engine must
        // reproduce the serial model-path adjoint bit for bit, including
        // the head Jacobian.
        let critic_like = VqcBuilder::new(3)
            .encoder_inputs(6)
            .ansatz_params(14)
            .readout(Readout::mean_z(3))
            .output_head(OutputHead::Affine)
            .build()
            .unwrap();
        for model in [actor_like(), critic_like] {
            let mut params = model.init_params(13);
            // Non-trivial head so scale gradients are exercised.
            let nc = model.circuit_param_count();
            params[nc] = 1.7;
            let compiled = CompiledVqc::new(model);
            let in_len = compiled.model().input_len();
            let batch: Vec<Vec<f64>> = (0..5)
                .map(|b| {
                    (0..in_len)
                        .map(|i| 0.06 * (b * in_len + i) as f64 - 0.4)
                        .collect()
                })
                .collect();
            let batched = compiled
                .forward_with_jacobian_batch_prebound(&batch, &params)
                .unwrap();
            for (obs, (out, jac)) in batch.iter().zip(&batched) {
                let (out_ref, jac_ref) = compiled
                    .forward_with_jacobian(obs, &params, GradMethod::Adjoint)
                    .unwrap();
                assert_eq!(*out, out_ref);
                assert_eq!(jac.max_abs_diff(&jac_ref), 0.0);
            }
        }
    }

    #[test]
    fn default_backend_is_ideal_and_bit_identical() {
        let model = actor_like();
        let params = model.init_params(21);
        let plain = CompiledVqc::new(model.clone());
        let explicit = CompiledVqc::new(model).with_backend(ExecutionBackend::Ideal);
        assert!(plain.backend().is_ideal());
        let batch: Vec<Vec<f64>> = (0..4)
            .map(|b| (0..4).map(|i| 0.09 * (b + i) as f64 - 0.2).collect())
            .collect();
        assert_eq!(
            plain.forward(&batch[0], &params).unwrap(),
            explicit.forward(&batch[0], &params).unwrap()
        );
        assert_eq!(
            plain.forward_batch(&batch, &params).unwrap(),
            explicit.forward_batch(&batch, &params).unwrap()
        );
        let a = plain
            .forward_with_jacobian(&batch[0], &params, GradMethod::ParameterShift)
            .unwrap();
        let b = explicit
            .forward_with_jacobian(&batch[0], &params, GradMethod::ParameterShift)
            .unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.max_abs_diff(&b.1), 0.0);
    }

    #[test]
    fn sampled_backend_routes_all_gradient_requests_to_parameter_shift() {
        let model = actor_like();
        let params = model.init_params(25);
        let backend = ExecutionBackend::Sampled {
            shots: 512,
            seed: 3,
        };
        let compiled = CompiledVqc::new(model).with_backend(backend);
        let batch: Vec<Vec<f64>> = (0..3)
            .map(|b| (0..4).map(|i| 0.08 * (b * 4 + i) as f64).collect())
            .collect();
        // Adjoint request under a sampled backend is served by the
        // backend parameter-shift queue — the three entry points agree
        // bit for bit because the seed derivation is content-addressed.
        let via_adjoint_request = compiled
            .forward_with_jacobian(&batch[0], &params, GradMethod::Adjoint)
            .unwrap();
        let via_shift_request = compiled
            .forward_with_jacobian(&batch[0], &params, GradMethod::ParameterShift)
            .unwrap();
        assert_eq!(via_adjoint_request.0, via_shift_request.0);
        assert_eq!(
            via_adjoint_request.1.max_abs_diff(&via_shift_request.1),
            0.0
        );
        let batched = compiled
            .forward_with_jacobian_batch_prebound(&batch, &params)
            .unwrap();
        let shift_batched = compiled
            .forward_with_jacobian_batch(&batch, &params)
            .unwrap();
        for ((a_out, a_jac), (b_out, b_jac)) in batched.iter().zip(&shift_batched) {
            assert_eq!(a_out, b_out);
            assert_eq!(a_jac.max_abs_diff(b_jac), 0.0);
        }
        // The sampled forward is reproducible but differs from exact.
        let sampled = compiled.forward(&batch[0], &params).unwrap();
        assert_eq!(sampled, compiled.forward(&batch[0], &params).unwrap());
        let exact = CompiledVqc::new(actor_like())
            .forward(&batch[0], &params)
            .unwrap();
        assert_ne!(sampled, exact);
    }

    #[test]
    fn noisy_backend_matches_model_forward_noisy() {
        let model = actor_like();
        let params = model.init_params(29);
        let noise = qmarl_qsim::noise::NoiseModel::depolarizing(0.003, 0.006).unwrap();
        let compiled = CompiledVqc::new(model.clone()).with_backend(ExecutionBackend::Noisy {
            model: noise,
            shots: None,
            seed: 0,
        });
        let obs = [0.25, 0.5, 0.75, 0.1];
        let fast = compiled.forward(&obs, &params).unwrap();
        let reference = model.forward_noisy(&obs, &params, &noise).unwrap();
        for (a, b) in fast.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn prebound_handle_is_bit_identical_to_live_forward() {
        let model = actor_like();
        let mut params = model.init_params(11);
        let nc = model.circuit_param_count();
        params[nc] = 1.3; // non-trivial head scale
        let compiled = CompiledVqc::new(model);
        let handle = compiled.prebind(&params).unwrap();
        assert!(handle.resolved_rotations() > 0);
        let batch: Vec<Vec<f64>> = (0..7)
            .map(|b| (0..4).map(|i| 0.04 * (b * 4 + i) as f64 - 0.3).collect())
            .collect();
        for obs in &batch {
            assert_eq!(
                handle.forward(obs).unwrap(),
                compiled.forward(obs, &params).unwrap()
            );
        }
        assert_eq!(
            handle.forward_batch(&batch).unwrap(),
            compiled.forward_batch(&batch, &params).unwrap()
        );
    }

    #[test]
    fn prebind_rejects_wrong_lengths_and_stochastic_backends() {
        let compiled = CompiledVqc::new(actor_like());
        let n = compiled.model().param_count();
        assert!(compiled.prebind(&vec![0.0; n + 1]).is_err());
        let sampled = CompiledVqc::new(actor_like())
            .with_backend(ExecutionBackend::Sampled { shots: 64, seed: 1 });
        assert!(matches!(
            sampled.prebind(&vec![0.0; n]),
            Err(RuntimeError::InvalidConfig(_))
        ));
        // Input-length errors surface per evaluation.
        let handle = compiled.prebind(&vec![0.1; n]).unwrap();
        assert!(handle.forward(&[0.0; 3]).is_err());
    }

    #[test]
    fn clones_share_one_compilation() {
        let a = CompiledVqc::new(actor_like());
        let b = a.clone();
        let c = CompiledVqc::new(actor_like());
        assert!(Arc::ptr_eq(a.compiled(), b.compiled()));
        assert!(Arc::ptr_eq(a.compiled(), c.compiled()));
    }

    #[test]
    fn values_batch_takes_first_output() {
        let model = VqcBuilder::new(3)
            .encoder_inputs(6)
            .ansatz_params(10)
            .readout(Readout::mean_z(3))
            .output_head(OutputHead::Affine)
            .build()
            .unwrap();
        let params = model.init_params(1);
        let compiled = CompiledVqc::new(model);
        let batch: Vec<Vec<f64>> = (0..4).map(|b| vec![0.1 * b as f64; 6]).collect();
        let values = compiled.values_batch(&batch, &params).unwrap();
        for (obs, v) in batch.iter().zip(&values) {
            assert!((compiled.forward(obs, &params).unwrap()[0] - v).abs() < 1e-15);
        }
    }
}
