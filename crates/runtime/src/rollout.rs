//! Parallel rollout workers with a deterministic seeding contract.
//!
//! Training and evaluation both need many episodes under frozen policy
//! parameters — and episodes are independent given their randomness. The
//! engine here gives **each episode** (not each worker) its own derived
//! RNG streams, so:
//!
//! > **Determinism contract.** The trace of episode `i` depends only on
//! > `(base_seed, i)`, the environment template and the policy — *never*
//! > on the worker count or thread scheduling. Collecting N episodes with
//! > 1 worker and with 16 workers yields identical results, in identical
//! > (episode-index) order.
//!
//! Mechanically: a worker picks the next episode index off the shared
//! work queue, clones the environment template, calls
//! [`WorkerEnv::reseed`] with `derive_seed(base_seed, ENV_STREAM, i)`,
//! seeds the action-sampling RNG with `derive_seed(base_seed,
//! POLICY_STREAM, i)`, and runs the episode to completion. Results are
//! folded back in episode order (the "shared replay sink" is fed in
//! deterministic order precisely so replay contents don't depend on which
//! worker finished first).

use rand::rngs::StdRng;
use rand::SeedableRng;

use qmarl_env::error::EnvError;
use qmarl_env::metrics::{EpisodeMetrics, MetricsAccumulator};
use qmarl_env::multi_agent::{MultiAgentEnv, StepInfo};
use qmarl_env::vector::SeedableEnv;
use qmarl_qsim::par;

/// An environment usable by rollout workers: cloneable (each episode gets
/// a private copy) and re-seedable (each episode gets private
/// randomness).
///
/// Blanket-implemented for every [`SeedableEnv`] that is `Clone + Send +
/// Sync` — `SingleHopEnv`, `MultiHopEnv`, boxed registry scenarios, and
/// any future environment that implements the env crate's seeding trait.
pub trait WorkerEnv: MultiAgentEnv + Clone + Send + Sync {
    /// Makes this instance's future stream fully determined by `seed`
    /// (also resets the episode).
    fn reseed(&mut self, seed: u64);
}

impl<E: SeedableEnv + Clone + Send + Sync> WorkerEnv for E {
    fn reseed(&mut self, seed: u64) {
        SeedableEnv::reseed(self, seed);
    }
}

/// A decision rule driving rollouts: joint actions from joint
/// observations. `aux` is a policy-defined per-step scalar carried into
/// the trace (the trainers store mean policy entropy there).
pub trait RolloutPolicy {
    /// The policy's error type.
    type Error: Send;

    /// Chooses one action per agent; `rng` is the episode's private
    /// action-sampling stream.
    ///
    /// # Errors
    ///
    /// Policy evaluation errors abort the whole collection.
    fn act(
        &mut self,
        observations: &[Vec<f64>],
        rng: &mut StdRng,
    ) -> Result<(Vec<usize>, f64), Self::Error>;
}

/// Blanket impl so plain closures work as policies.
impl<F, E> RolloutPolicy for F
where
    F: FnMut(&[Vec<f64>], &mut StdRng) -> Result<(Vec<usize>, f64), E>,
    E: Send,
{
    type Error = E;
    fn act(&mut self, observations: &[Vec<f64>], rng: &mut StdRng) -> Result<(Vec<usize>, f64), E> {
        self(observations, rng)
    }
}

/// One recorded timestep (the runtime-level mirror of the trainer's
/// transition tuple).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Global state `s_t`.
    pub state: Vec<f64>,
    /// Per-agent observations `o_t`.
    pub observations: Vec<Vec<f64>>,
    /// Joint action `u_t`.
    pub actions: Vec<usize>,
    /// Shared reward `r_t`.
    pub reward: f64,
    /// Next global state `s_{t+1}`.
    pub next_state: Vec<f64>,
    /// Next observations `o_{t+1}`.
    pub next_observations: Vec<Vec<f64>>,
    /// Whether this step ended the episode.
    pub done: bool,
    /// Step diagnostics (queue levels, cloud events).
    pub info: StepInfo,
    /// Policy-defined per-step scalar (e.g. mean policy entropy).
    pub aux: f64,
}

/// One collected episode, tagged with its episode index.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeTrace {
    /// The episode's index in the collection request (its seed stream).
    pub index: usize,
    /// The steps in time order.
    pub steps: Vec<TraceStep>,
}

impl EpisodeTrace {
    /// Sum of rewards.
    pub fn total_reward(&self) -> f64 {
        self.steps.iter().map(|s| s.reward).sum()
    }

    /// Episode metrics in the paper's Fig. 3 accounting.
    pub fn metrics(&self) -> EpisodeMetrics {
        let mut acc = MetricsAccumulator::new();
        for s in &self.steps {
            acc.record_step(
                s.reward,
                &s.info.queue_levels,
                &s.info.cloud_empty,
                &s.info.cloud_full,
            );
        }
        acc.finish()
    }

    /// Mean of the policy-defined per-step scalar.
    pub fn mean_aux(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.steps.iter().map(|s| s.aux).sum::<f64>() / self.steps.len() as f64
        }
    }
}

/// A failed rollout collection.
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutError<E> {
    /// The environment rejected a step.
    Env(EnvError),
    /// The policy failed to evaluate.
    Policy(E),
}

impl<E: std::fmt::Display> std::fmt::Display for RolloutError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RolloutError::Env(e) => write!(f, "rollout environment error: {e}"),
            RolloutError::Policy(e) => write!(f, "rollout policy error: {e}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for RolloutError<E> {}

/// How a collection run distributes and seeds its episodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutConfig {
    /// Worker threads (`0` = auto-detect). Never affects results.
    pub workers: usize,
    /// Base seed every episode's streams derive from.
    pub base_seed: u64,
}

impl RolloutConfig {
    /// A config with auto-detected workers.
    pub fn new(base_seed: u64) -> Self {
        RolloutConfig {
            workers: 0,
            base_seed,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            par::default_workers()
        } else {
            self.workers
        }
    }
}

/// Stream tag for environment randomness.
pub(crate) const ENV_STREAM: u64 = 0x45;
/// Stream tag for policy action sampling.
pub(crate) const POLICY_STREAM: u64 = 0x50;

/// Derives an independent seed from `(base, stream, index)` via SplitMix64
/// finalisation — the same derivation for every worker count, which is
/// what makes the determinism contract hold.
pub fn derive_seed(base: u64, stream: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one episode to completion on a freshly seeded env/policy pair.
fn run_episode<E: WorkerEnv, P: RolloutPolicy>(
    env: &mut E,
    policy: &mut P,
    rng: &mut StdRng,
    index: usize,
) -> Result<EpisodeTrace, RolloutError<P::Error>> {
    let (mut obs, mut state) = env.reset();
    let mut steps = Vec::with_capacity(env.episode_limit());
    loop {
        let (actions, aux) = policy.act(&obs, rng).map_err(RolloutError::Policy)?;
        let out = env.step(&actions).map_err(RolloutError::Env)?;
        steps.push(TraceStep {
            state: std::mem::take(&mut state),
            observations: std::mem::take(&mut obs),
            actions,
            reward: out.reward,
            next_state: out.state.clone(),
            next_observations: out.observations.clone(),
            done: out.done,
            info: out.info,
            aux,
        });
        obs = out.observations;
        state = out.state;
        if out.done {
            return Ok(EpisodeTrace { index, steps });
        }
    }
}

/// Collects `n_episodes` episodes in parallel, returning them **in
/// episode-index order** (see the module-level determinism contract).
///
/// `policy_factory(i)` builds episode `i`'s policy; for frozen-parameter
/// rollouts it typically clones shared actor handles.
///
/// # Errors
///
/// Returns the lowest-indexed episode's error.
pub fn collect_episodes<E, P, F>(
    template: &E,
    policy_factory: F,
    n_episodes: usize,
    config: &RolloutConfig,
) -> Result<Vec<EpisodeTrace>, RolloutError<P::Error>>
where
    E: WorkerEnv,
    P: RolloutPolicy,
    F: Fn(usize) -> P + Sync,
{
    let indices: Vec<usize> = (0..n_episodes).collect();
    par::try_parallel_map(&indices, config.effective_workers(), |_, &i| {
        let mut env = template.clone();
        env.reseed(derive_seed(config.base_seed, ENV_STREAM, i as u64));
        let mut rng = StdRng::seed_from_u64(derive_seed(config.base_seed, POLICY_STREAM, i as u64));
        let mut policy = policy_factory(i);
        run_episode(&mut env, &mut policy, &mut rng, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};
    use rand::Rng;

    fn tiny_env() -> SingleHopEnv {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = 12;
        SingleHopEnv::new(cfg, 0).unwrap()
    }

    /// A stochastic test policy: uniform random joint actions.
    #[allow(clippy::type_complexity)] // the RolloutPolicy closure shape, spelled out
    fn random_policy(
        _episode: usize,
    ) -> impl FnMut(&[Vec<f64>], &mut StdRng) -> Result<(Vec<usize>, f64), EnvError> {
        |obs: &[Vec<f64>], rng: &mut StdRng| {
            let actions = obs.iter().map(|_| rng.gen_range(0..4)).collect();
            Ok((actions, 1.5))
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let env = tiny_env();
        let reference = collect_episodes(
            &env,
            random_policy,
            8,
            &RolloutConfig::new(42).with_workers(1),
        )
        .unwrap();
        for workers in [2, 4, 16] {
            let got = collect_episodes(
                &env,
                random_policy,
                8,
                &RolloutConfig::new(42).with_workers(workers),
            )
            .unwrap();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn episodes_have_distinct_randomness() {
        let env = tiny_env();
        let traces = collect_episodes(
            &env,
            random_policy,
            4,
            &RolloutConfig::new(7).with_workers(2),
        )
        .unwrap();
        assert_eq!(traces.len(), 4);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.steps.len(), 12);
            assert!(t.steps.last().unwrap().done);
        }
        // Different episodes see different action streams.
        assert_ne!(traces[0].steps[0].actions, traces[1].steps[0].actions);
    }

    #[test]
    fn base_seed_changes_everything() {
        let env = tiny_env();
        let a = collect_episodes(&env, random_policy, 2, &RolloutConfig::new(1)).unwrap();
        let b = collect_episodes(&env, random_policy, 2, &RolloutConfig::new(2)).unwrap();
        assert_ne!(a, b);
        let a2 = collect_episodes(&env, random_policy, 2, &RolloutConfig::new(1)).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn trace_bookkeeping_is_consistent() {
        let env = tiny_env();
        let traces = collect_episodes(&env, random_policy, 1, &RolloutConfig::new(3)).unwrap();
        let t = &traces[0];
        let m = t.metrics();
        assert_eq!(m.len, t.steps.len());
        assert!((m.total_reward - t.total_reward()).abs() < 1e-12);
        assert!((t.mean_aux() - 1.5).abs() < 1e-15);
        // Chaining: next_state of step k equals state of step k+1.
        for w in t.steps.windows(2) {
            assert_eq!(w[0].next_state, w[1].state);
            assert_eq!(w[0].next_observations, w[1].observations);
        }
    }

    #[test]
    fn policy_errors_propagate() {
        let env = tiny_env();
        let failing = |_i: usize| {
            |_obs: &[Vec<f64>], _rng: &mut StdRng| -> Result<(Vec<usize>, f64), String> {
                Err("no policy".to_string())
            }
        };
        let err = collect_episodes(&env, failing, 3, &RolloutConfig::new(0)).unwrap_err();
        assert!(matches!(err, RolloutError::Policy(ref m) if m == "no policy"));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, ENV_STREAM, 0);
        let b = derive_seed(1, POLICY_STREAM, 0);
        let c = derive_seed(1, ENV_STREAM, 1);
        let d = derive_seed(2, ENV_STREAM, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
