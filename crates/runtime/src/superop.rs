//! Compiled superoperator execution of the Noisy backend.
//!
//! The interpreter path ([`crate::exec::run_raw_density`]) walks the raw
//! schedule gate by gate through [`qmarl_qsim::density::DensityMatrix`],
//! whose kernels clone per-column scratch (and, for Kraus channels, the
//! whole matrix per operator) on every application. That is robust but
//! roughly four orders of magnitude slower than the statevector hot path
//! — the `BENCH_backend.json` gap this module closes.
//!
//! [`prebind_density`] compiles a `(CompiledCircuit, params, NoiseModel)`
//! triple once per evaluation batch:
//!
//! * the density matrix is treated as one flat `4^n` vector (row-major:
//!   column bits `0‥n`, row bits `n‥2n`), so every gate becomes in-place
//!   slab passes over the vectorized register — no clones, SIMD kernels
//!   from [`qmarl_qsim::rows`];
//! * every **concrete** single-qubit gate (fixed, or a rotation whose
//!   angle does not reference an input) is premultiplied with the
//!   one-qubit noise channel into a single dense 4×4 superoperator
//!   (`Σᵢ (KᵢU) ⊗ conj(KᵢU)`, see [`qmarl_qsim::superop`]) applied with
//!   one [`qmarl_qsim::rows::gate2_slab`] pass on the bit pair
//!   `(q, q + n)`;
//! * input-dependent rotations stay symbolic: per-lane trig drives the
//!   rotation on the row bit and its conjugate on the column bit, then
//!   the channel superoperator lands as a dense pass;
//! * CNOT is a pure index permutation, CZ a diagonal sign flip, each
//!   followed by the two-qubit channel superoperator on both wires
//!   (control before target — the interpreter's Kraus order).
//!
//! [`run_density_slab`] then evaluates many circuits (lanes) through one
//! schedule walk. Results agree with the interpreter and
//! `qmarl_vqc::exec::run_noisy` to 1e-12 (asserted here and in
//! `tests/noisy_parity.rs`); they are not bit-identical because the
//! row/column factorization orders floating-point products differently.

use qmarl_qsim::complex::Complex64;
use qmarl_qsim::density::DensityMatrix;
use qmarl_qsim::gate::{Gate1, Gate2, RotationAxis};
use qmarl_qsim::noise::NoiseModel;
use qmarl_qsim::rows;
use qmarl_qsim::superop::{gate_kraus_superop, kraus_superop, unitary_superop};

use crate::compile::{CGate, CompiledCircuit, FusedAngle};
use crate::error::RuntimeError;
use crate::prebound::rows_mut;

/// One op of a density-prebound schedule.
// The dense 4×4 superoperator dominates the enum's size, but DOps are
// hot-loop schedule data read on every lane walk — boxing it would trade
// one-time prebind memory for a pointer chase per gate application.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum DOp {
    /// A concrete single-qubit gate fused with the one-qubit channel into
    /// one dense 4×4 superoperator. `rot` carries `(raw_idx, axis)` when
    /// the source was a rotation, so a parameter-shift override can
    /// rebuild the superoperator from the shifted angle.
    Dense1 {
        q: usize,
        sup: Gate2,
        rot: Option<(usize, RotationAxis)>,
    },
    /// An input-dependent single-qubit rotation: per-lane trig on the row
    /// bit, conjugate trig on the column bit, then the channel.
    Sym1 {
        raw_idx: usize,
        q: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// A controlled rotation resolved at prebind time.
    CRotSC {
        raw_idx: usize,
        control: usize,
        target: usize,
        axis: RotationAxis,
        s: f64,
        c: f64,
    },
    /// An input-dependent controlled rotation.
    CRotSym {
        raw_idx: usize,
        control: usize,
        target: usize,
        axis: RotationAxis,
        angle: FusedAngle,
    },
    /// CNOT: a pure index permutation of the vectorized register.
    Cnot { control: usize, target: usize },
    /// CZ: a diagonal sign flip of the vectorized register.
    Cz { control: usize, target: usize },
}

/// A compiled circuit bound to `(params, noise)` for superoperator
/// execution over the vectorized density register.
#[derive(Debug, Clone)]
pub struct DensityPrebound {
    n_qubits: usize,
    n_inputs: usize,
    dim2: usize,
    params: Vec<f64>,
    kraus1: Option<Vec<Gate1>>,
    /// Superoperator of the one-qubit channel alone (for symbolic
    /// rotations, applied after the per-lane rotation passes).
    chan1: Option<Gate2>,
    /// Superoperator of the two-qubit-gate channel, applied per wire.
    chan2: Option<Gate2>,
    ops: Vec<DOp>,
}

impl DensityPrebound {
    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Expected input-vector length.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The frozen parameter vector this schedule was bound with.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Gate (optionally) fused with the one-qubit channel.
    fn fuse1(&self, u: &Gate1) -> Gate2 {
        match &self.kraus1 {
            Some(k) => gate_kraus_superop(u, k),
            None => unitary_superop(u),
        }
    }
}

/// Compiles a `(CompiledCircuit, params, NoiseModel)` triple into prebound
/// per-gate superoperators over the **raw** schedule (per-gate noise must
/// scale with the source circuit's gate count, which fusion would shrink).
///
/// # Errors
///
/// Returns a parameter-arity or noise-validation error.
pub fn prebind_density(
    compiled: &CompiledCircuit,
    params: &[f64],
    noise: &NoiseModel,
) -> Result<DensityPrebound, RuntimeError> {
    noise.validate()?;
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    let kraus1 = noise.after_gate1.map(|c| c.kraus_operators());
    let kraus2 = noise.after_gate2.map(|c| c.kraus_operators());
    let mut pb = DensityPrebound {
        n_qubits: compiled.n_qubits(),
        n_inputs: compiled.n_inputs(),
        dim2: 1usize << (2 * compiled.n_qubits()),
        params: params.to_vec(),
        chan1: kraus1.as_deref().map(kraus_superop),
        chan2: kraus2.as_deref().map(kraus_superop),
        kraus1,
        ops: Vec::with_capacity(compiled.raw_schedule().len()),
    };
    for (k, gate) in compiled.raw_schedule().iter().enumerate() {
        let op = match gate {
            CGate::Rot { qubit, axis, angle } => {
                if angle.depends_on_inputs() {
                    DOp::Sym1 {
                        raw_idx: k,
                        q: *qubit,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    let theta = angle.value(&[], params);
                    DOp::Dense1 {
                        q: *qubit,
                        sup: pb.fuse1(&axis.gate(theta)),
                        rot: Some((k, *axis)),
                    }
                }
            }
            CGate::Fixed { qubit, gate } => DOp::Dense1 {
                q: *qubit,
                sup: pb.fuse1(gate),
                rot: None,
            },
            CGate::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                if angle.depends_on_inputs() {
                    DOp::CRotSym {
                        raw_idx: k,
                        control: *control,
                        target: *target,
                        axis: *axis,
                        angle: angle.clone(),
                    }
                } else {
                    let theta = angle.value(&[], params);
                    let (s, c) = (theta / 2.0).sin_cos();
                    DOp::CRotSC {
                        raw_idx: k,
                        control: *control,
                        target: *target,
                        axis: *axis,
                        s,
                        c,
                    }
                }
            }
            CGate::Cnot { control, target } => DOp::Cnot {
                control: *control,
                target: *target,
            },
            CGate::Cz { control, target } => DOp::Cz {
                control: *control,
                target: *target,
            },
            CGate::Fixed2 { .. } => {
                unreachable!("entangler fusion never emits Fixed2 into the raw schedule")
            }
        };
        pb.ops.push(op);
    }
    Ok(pb)
}

/// Applies a uniform rotation to the register: the gate on the row bit
/// pair `(row_mt, row_mc)` and its conjugate on the column bit pair
/// `(col_mt, col_mc)`. Conjugation per axis: `conj(Rx(θ)) = Rx(−θ)`
/// (trig `(−s, c)`), `Ry` is real, `Rz`'s diagonal phases swap.
#[allow(clippy::too_many_arguments)]
fn rot_both_sides(
    axis: RotationAxis,
    slab: &mut [Complex64],
    lanes: usize,
    dim2: usize,
    row_mt: usize,
    row_mc: usize,
    col_mt: usize,
    col_mc: usize,
    s: f64,
    c: f64,
) {
    match axis {
        RotationAxis::X => {
            rows::rot_x_slab(slab, lanes, dim2, row_mt, row_mc, s, c);
            rows::rot_x_slab(slab, lanes, dim2, col_mt, col_mc, -s, c);
        }
        RotationAxis::Y => {
            rows::rot_y_slab(slab, lanes, dim2, row_mt, row_mc, s, c);
            rows::rot_y_slab(slab, lanes, dim2, col_mt, col_mc, s, c);
        }
        RotationAxis::Z => {
            rows::phase_slab(slab, lanes, dim2, row_mt, row_mc, (c, -s), (c, s));
            rows::phase_slab(slab, lanes, dim2, col_mt, col_mc, (c, s), (c, -s));
        }
    }
}

/// Per-lane variant of [`rot_both_sides`] for input-dependent angles.
/// `ta`/`tb` are scratch buffers reused across gates.
#[allow(clippy::too_many_arguments)]
fn rot_both_sides_lanes(
    axis: RotationAxis,
    slab: &mut [Complex64],
    lanes: usize,
    dim2: usize,
    row_mt: usize,
    row_mc: usize,
    col_mt: usize,
    col_mc: usize,
    thetas: &[f64],
    ta: &mut Vec<(f64, f64)>,
    tb: &mut Vec<(f64, f64)>,
) {
    ta.clear();
    tb.clear();
    match axis {
        RotationAxis::X => {
            ta.extend(thetas.iter().map(|t| (t / 2.0).sin_cos()));
            tb.extend(ta.iter().map(|&(s, c)| (-s, c)));
            rows::rot_x_slab_lanes(slab, lanes, dim2, row_mt, row_mc, ta);
            rows::rot_x_slab_lanes(slab, lanes, dim2, col_mt, col_mc, tb);
        }
        RotationAxis::Y => {
            ta.extend(thetas.iter().map(|t| (t / 2.0).sin_cos()));
            rows::rot_y_slab_lanes(slab, lanes, dim2, row_mt, row_mc, ta);
            rows::rot_y_slab_lanes(slab, lanes, dim2, col_mt, col_mc, ta);
        }
        RotationAxis::Z => {
            // ta = (c, −s) is the row-pass bit-clear phase AND the
            // column-pass bit-set phase; tb = (c, s) the other two.
            for t in thetas {
                let (s, c) = (t / 2.0).sin_cos();
                ta.push((c, -s));
                tb.push((c, s));
            }
            rows::phase_slab_lanes(slab, lanes, dim2, row_mt, row_mc, ta, tb);
            rows::phase_slab_lanes(slab, lanes, dim2, col_mt, col_mc, tb, ta);
        }
    }
}

/// Resolves an input-dependent angle for every lane (all lanes get the
/// override angle when the parameter-shift rule targets this op).
fn resolve_thetas(
    raw_idx: usize,
    angle: &FusedAngle,
    inputs: &[&[f64]],
    params: &[f64],
    override_angle: Option<(usize, f64)>,
    out: &mut Vec<f64>,
) {
    out.clear();
    match override_angle {
        Some((idx, theta)) if idx == raw_idx => out.extend(inputs.iter().map(|_| theta)),
        _ => out.extend(inputs.iter().map(|li| angle.value(li, params))),
    }
}

/// The two-qubit-gate channel on both wires, control before target (the
/// interpreter's Kraus order).
fn apply_chan2(
    pb: &DensityPrebound,
    slab: &mut [Complex64],
    lanes: usize,
    control: usize,
    target: usize,
) {
    if let Some(c2) = &pb.chan2 {
        let n = pb.n_qubits;
        rows::gate2_slab(
            slab,
            lanes,
            pb.dim2,
            1 << control,
            1 << (control + n),
            c2.matrix(),
        );
        rows::gate2_slab(
            slab,
            lanes,
            pb.dim2,
            1 << target,
            1 << (target + n),
            c2.matrix(),
        );
    }
}

/// Runs the prebound superoperator schedule over all `inputs` lanes in one
/// walk, returning the vectorized density slab `slab[flat · lanes + lane]`
/// (flat index `r · 2^n + c`). `override_angle` forces one raw-schedule
/// gate's angle — the parameter-shift primitive. Lanes are independent, so
/// chunking across lanes cannot change any value.
pub(crate) fn run_density_slab(
    pb: &DensityPrebound,
    inputs: &[&[f64]],
    override_angle: Option<(usize, f64)>,
) -> Vec<Complex64> {
    let lanes = inputs.len();
    if lanes == 0 {
        return Vec::new();
    }
    let n = pb.n_qubits;
    let dim2 = pb.dim2;
    let mut slab = vec![Complex64::ZERO; dim2 * lanes];
    for cell in slab[..lanes].iter_mut() {
        *cell = Complex64::ONE; // ρ = |0…0⟩⟨0…0| is flat index 0
    }
    let mut thetas: Vec<f64> = Vec::with_capacity(lanes);
    let mut ta: Vec<(f64, f64)> = Vec::with_capacity(lanes);
    let mut tb: Vec<(f64, f64)> = Vec::with_capacity(lanes);

    for op in &pb.ops {
        match op {
            DOp::Dense1 { q, sup, rot } => {
                let rebuilt;
                let m = match (override_angle, rot) {
                    (Some((idx, theta)), Some((raw_idx, axis))) if idx == *raw_idx => {
                        rebuilt = pb.fuse1(&axis.gate(theta));
                        rebuilt.matrix()
                    }
                    _ => sup.matrix(),
                };
                rows::gate2_slab(&mut slab, lanes, dim2, 1 << q, 1 << (q + n), m);
            }
            DOp::Sym1 {
                raw_idx,
                q,
                axis,
                angle,
            } => {
                resolve_thetas(
                    *raw_idx,
                    angle,
                    inputs,
                    &pb.params,
                    override_angle,
                    &mut thetas,
                );
                rot_both_sides_lanes(
                    *axis,
                    &mut slab,
                    lanes,
                    dim2,
                    1 << (q + n),
                    0,
                    1 << q,
                    0,
                    &thetas,
                    &mut ta,
                    &mut tb,
                );
                if let Some(c1) = &pb.chan1 {
                    rows::gate2_slab(&mut slab, lanes, dim2, 1 << q, 1 << (q + n), c1.matrix());
                }
            }
            DOp::CRotSC {
                raw_idx,
                control,
                target,
                axis,
                s,
                c,
            } => {
                let (s, c) = match override_angle {
                    Some((idx, theta)) if idx == *raw_idx => (theta / 2.0).sin_cos(),
                    _ => (*s, *c),
                };
                rot_both_sides(
                    *axis,
                    &mut slab,
                    lanes,
                    dim2,
                    1 << (target + n),
                    1 << (control + n),
                    1 << target,
                    1 << control,
                    s,
                    c,
                );
                apply_chan2(pb, &mut slab, lanes, *control, *target);
            }
            DOp::CRotSym {
                raw_idx,
                control,
                target,
                axis,
                angle,
            } => {
                resolve_thetas(
                    *raw_idx,
                    angle,
                    inputs,
                    &pb.params,
                    override_angle,
                    &mut thetas,
                );
                rot_both_sides_lanes(
                    *axis,
                    &mut slab,
                    lanes,
                    dim2,
                    1 << (target + n),
                    1 << (control + n),
                    1 << target,
                    1 << control,
                    &thetas,
                    &mut ta,
                    &mut tb,
                );
                apply_chan2(pb, &mut slab, lanes, *control, *target);
            }
            DOp::Cnot { control, target } => {
                // ρ → (CX) ρ (CX)†: CX permutes the row bits, conj(CX) =
                // CX the column bits — one flat index involution, swapped
                // once per {i, perm(i)} pair.
                let mrc = 1usize << (control + n);
                let mrt = 1usize << (target + n);
                let mcc = 1usize << control;
                let mct = 1usize << target;
                for i in 0..dim2 {
                    let mut j = i;
                    if j & mrc != 0 {
                        j ^= mrt;
                    }
                    if j & mcc != 0 {
                        j ^= mct;
                    }
                    if i < j {
                        let (r0, r1) = rows_mut(&mut slab, lanes, i, j);
                        r0.swap_with_slice(r1);
                    }
                }
                apply_chan2(pb, &mut slab, lanes, *control, *target);
            }
            DOp::Cz { control, target } => {
                // Row side flips sign where both row bits are set, column
                // side where both column bits are set; the flips cancel
                // when both apply.
                let mr = (1usize << (control + n)) | (1usize << (target + n));
                let mc = (1usize << control) | (1usize << target);
                for i in 0..dim2 {
                    if (i & mr == mr) != (i & mc == mc) {
                        for a in slab[i * lanes..(i + 1) * lanes].iter_mut() {
                            *a = -*a;
                        }
                    }
                }
                apply_chan2(pb, &mut slab, lanes, *control, *target);
            }
        }
    }
    slab
}

/// Extracts one lane of a vectorized-density (or statevector) slab.
pub(crate) fn extract_lane(slab: &[Complex64], lanes: usize, lane: usize) -> Vec<Complex64> {
    (0..slab.len() / lanes)
        .map(|i| slab[i * lanes + lane])
        .collect()
}

/// Runs one evaluation through the prebound superoperator schedule,
/// returning the final density matrix — the compiled replacement for
/// [`crate::exec::run_raw_density`], equal to it to 1e-12.
///
/// # Errors
///
/// Returns an input-arity error.
pub fn run_density(
    pb: &DensityPrebound,
    inputs: &[f64],
    override_angle: Option<(usize, f64)>,
) -> Result<DensityMatrix, RuntimeError> {
    if inputs.len() != pb.n_inputs {
        return Err(RuntimeError::InputLenMismatch {
            expected: pb.n_inputs,
            actual: inputs.len(),
        });
    }
    let slab = run_density_slab(pb, &[inputs], override_angle);
    Ok(DensityMatrix::from_flat(pb.n_qubits, slab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::run_raw_density;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_qsim::noise::NoiseChannel;
    use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

    /// Every gate kind, every axis, input-dependent and parameter-only
    /// rotations, plain and controlled.
    fn busy_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        c.rot(1, Ax::Z, Angle::Input(InputId(1))).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.rot(2, Ax::Z, Angle::Param(ParamId(1))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(2)))
            .unwrap();
        c.controlled_rot(1, 2, Ax::Y, Angle::Param(ParamId(3)))
            .unwrap();
        c.controlled_rot(2, 0, Ax::Z, Angle::Param(ParamId(4)))
            .unwrap();
        c.controlled_rot(0, 2, Ax::Y, Angle::Input(InputId(0)))
            .unwrap();
        c.controlled_rot(1, 0, Ax::Z, Angle::Input(InputId(1)))
            .unwrap();
        c.cnot(0, 2).unwrap();
        c.cz(1, 2).unwrap();
        c.rot(0, Ax::Y, Angle::Const(-0.9)).unwrap();
        c
    }

    fn assert_rho_close(got: &DensityMatrix, want: &DensityMatrix, label: &str) {
        assert_eq!(got.dim(), want.dim());
        for r in 0..got.dim() {
            for c in 0..got.dim() {
                let a = got.element(r, c);
                let b = want.element(r, c);
                assert!(
                    (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                    "{label}: ρ[{r},{c}] = {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn superop_matches_interpreter_across_noise_models() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7, 0.3, -1.1];
        let inputs = [0.7, -0.2];
        for (label, noise) in [
            ("noiseless", NoiseModel::noiseless()),
            (
                "depolarizing",
                NoiseModel::depolarizing(0.01, 0.02).unwrap(),
            ),
            (
                "mixed-custom",
                NoiseModel {
                    after_gate1: Some(NoiseChannel::AmplitudeDamping { gamma: 0.03 }),
                    after_gate2: Some(NoiseChannel::BitFlip { p: 0.05 }),
                },
            ),
        ] {
            let pb = prebind_density(&compiled, &params, &noise).unwrap();
            let got = run_density(&pb, &inputs, None).unwrap();
            let want = run_raw_density(&compiled, &inputs, &params, &noise, None).unwrap();
            assert_rho_close(&got, &want, label);
        }
    }

    #[test]
    fn override_matches_interpreter_override() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7, 0.3, -1.1];
        let inputs = [0.7, -0.2];
        let noise = NoiseModel::depolarizing(0.01, 0.02).unwrap();
        let pb = prebind_density(&compiled, &params, &noise).unwrap();
        // Override every rotation occurrence in turn (plain, controlled,
        // input-dependent and parameter-only alike).
        for (k, gate) in compiled.raw_schedule().iter().enumerate() {
            if !matches!(gate, CGate::Rot { .. } | CGate::CRot { .. }) {
                continue;
            }
            let got = run_density(&pb, &inputs, Some((k, 0.37))).unwrap();
            let want =
                run_raw_density(&compiled, &inputs, &params, &noise, Some((k, 0.37))).unwrap();
            assert_rho_close(&got, &want, &format!("override raw idx {k}"));
        }
    }

    #[test]
    fn multi_lane_slab_is_bit_identical_to_single_lane() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7, 0.3, -1.1];
        let noise = NoiseModel::depolarizing(0.01, 0.02).unwrap();
        let pb = prebind_density(&compiled, &params, &noise).unwrap();
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|b| vec![0.3 * b as f64 - 0.7, 0.2 * b as f64 + 0.1])
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let slab = run_density_slab(&pb, &refs, None);
        for (lane, item) in refs.iter().enumerate() {
            let single = run_density_slab(&pb, &[item], None);
            assert_eq!(
                extract_lane(&slab, refs.len(), lane),
                single,
                "lane {lane} must be bit-identical to its own run"
            );
        }
    }

    #[test]
    fn trace_is_preserved_and_arity_validated() {
        let c = busy_circuit();
        let compiled = compile(&c);
        let params = [0.4, -0.8, 1.7, 0.3, -1.1];
        let noise = NoiseModel::depolarizing(0.05, 0.1).unwrap();
        let pb = prebind_density(&compiled, &params, &noise).unwrap();
        assert_eq!(pb.n_qubits(), 3);
        assert_eq!(pb.n_inputs(), 2);
        assert_eq!(pb.params(), &params[..]);
        let rho = run_density(&pb, &[0.3, -0.4], None).unwrap();
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(matches!(
            run_density(&pb, &[0.3], None),
            Err(RuntimeError::InputLenMismatch { .. })
        ));
        assert!(matches!(
            prebind_density(&compiled, &params[..2], &noise),
            Err(RuntimeError::ParamLenMismatch { .. })
        ));
    }
}
