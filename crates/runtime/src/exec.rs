//! Executing compiled schedules on statevectors.
//!
//! The inner loops here are the batched runtime's hot path: no op-enum
//! re-validation, no symbolic-angle lookups beyond a direct slot index,
//! and a diagonal fast path for CZ. All kernels delegate to
//! [`qmarl_qsim::apply`], the same amplitude-slice entry points the
//! simulator's own backends use, so compiled execution is numerically
//! identical to `vqc::exec::run` (property-tested to 1e-12 in
//! `tests/properties.rs`).

use qmarl_qsim::apply;
use qmarl_qsim::density::DensityMatrix;
use qmarl_qsim::gate::Gate2;
use qmarl_qsim::noise::NoiseModel;
use qmarl_qsim::state::StateVector;

use crate::compile::{CGate, CompiledCircuit};
use crate::error::RuntimeError;

/// Validates binding lengths against the compiled arity.
pub(crate) fn check_bindings(
    compiled: &CompiledCircuit,
    inputs: &[f64],
    params: &[f64],
) -> Result<(), RuntimeError> {
    if inputs.len() != compiled.n_inputs() {
        return Err(RuntimeError::InputLenMismatch {
            expected: compiled.n_inputs(),
            actual: inputs.len(),
        });
    }
    if params.len() != compiled.n_params() {
        return Err(RuntimeError::ParamLenMismatch {
            expected: compiled.n_params(),
            actual: params.len(),
        });
    }
    Ok(())
}

#[inline]
fn apply_cgate(state: &mut StateVector, gate: &CGate, inputs: &[f64], params: &[f64]) {
    use qmarl_qsim::gate::RotationAxis;
    let amps = state.amplitudes_mut();
    match gate {
        // Rotations dispatch to the axis-specialised kernels (Ry is real,
        // Rz diagonal) instead of a generic complex 2×2 product — the
        // compiled path's main single-core win over the IR interpreter.
        CGate::Rot { qubit, axis, angle } => {
            let theta = angle.value(inputs, params);
            match axis {
                RotationAxis::X => apply::apply_rx(amps, *qubit, theta),
                RotationAxis::Y => apply::apply_ry(amps, *qubit, theta),
                RotationAxis::Z => apply::apply_rz(amps, *qubit, theta),
            }
        }
        CGate::CRot {
            control,
            target,
            axis,
            angle,
        } => {
            let theta = angle.value(inputs, params);
            match axis {
                RotationAxis::X => apply::apply_crx(amps, *control, *target, theta),
                RotationAxis::Y => apply::apply_cry(amps, *control, *target, theta),
                RotationAxis::Z => apply::apply_crz(amps, *control, *target, theta),
            }
        }
        CGate::Cnot { control, target } => apply::apply_cnot(amps, *control, *target),
        CGate::Cz { control, target } => apply::apply_cz(amps, *control, *target),
        CGate::Fixed { qubit, gate } => apply::apply_gate1(amps, *qubit, gate),
        CGate::Fixed2 { qa, qb, gate } => apply::apply_gate2(amps, *qa, *qb, gate),
    }
}

/// Runs a schedule from `|0…0⟩` with **no** binding validation (callers
/// validate once per batch via [`check_bindings`]).
pub(crate) fn run_schedule_unchecked(
    n_qubits: usize,
    schedule: &[CGate],
    inputs: &[f64],
    params: &[f64],
) -> StateVector {
    let mut state = StateVector::zero(n_qubits);
    for gate in schedule {
        apply_cgate(&mut state, gate, inputs, params);
    }
    state
}

/// Runs the fused schedule from `|0…0⟩`, returning the final state.
///
/// # Errors
///
/// Returns a binding-length error when `inputs`/`params` do not match the
/// compiled arity.
pub fn run_compiled(
    compiled: &CompiledCircuit,
    inputs: &[f64],
    params: &[f64],
) -> Result<StateVector, RuntimeError> {
    check_bindings(compiled, inputs, params)?;
    Ok(run_schedule_unchecked(
        compiled.n_qubits(),
        compiled.fused_schedule(),
        inputs,
        params,
    ))
}

/// Runs the **raw** schedule with gate `override_idx`'s angle forced to
/// `theta` — the parameter-shift rule's primitive. No binding validation.
pub(crate) fn run_raw_with_override(
    compiled: &CompiledCircuit,
    inputs: &[f64],
    params: &[f64],
    override_idx: usize,
    theta: f64,
) -> StateVector {
    let mut state = StateVector::zero(compiled.n_qubits());
    let override_theta = crate::compile::FusedAngle::Const(theta);
    for (k, gate) in compiled.raw_schedule().iter().enumerate() {
        if k == override_idx {
            let replaced = match gate {
                CGate::Rot { qubit, axis, .. } => CGate::Rot {
                    qubit: *qubit,
                    axis: *axis,
                    angle: override_theta.clone(),
                },
                CGate::CRot {
                    control,
                    target,
                    axis,
                    ..
                } => CGate::CRot {
                    control: *control,
                    target: *target,
                    axis: *axis,
                    angle: override_theta.clone(),
                },
                other => other.clone(),
            };
            apply_cgate(&mut state, &replaced, inputs, params);
        } else {
            apply_cgate(&mut state, gate, inputs, params);
        }
    }
    state
}

/// Runs the **raw** schedule on the density-matrix backend, injecting the
/// noise model's channel after every gate (on every wire the gate
/// touched) — the compiled twin of [`qmarl_vqc::exec::run_noisy`]. The
/// raw schedule is used deliberately: per-gate noise must scale with the
/// *source* circuit's gate count, which fusion would shrink.
///
/// This is the **reference interpreter** for noisy execution: the hot
/// path is the prebound superoperator executor
/// ([`crate::superop::run_density`]), which is property-tested against
/// this walk at 1e-12 and replaces it in every batched queue. Keep this
/// one naive and obviously correct.
///
/// `override_angle` optionally forces gate `raw_idx`'s angle to `theta`,
/// which is the parameter-shift rule's primitive on this backend.
///
/// # Errors
///
/// Returns a simulator error for an invalid noise strength.
pub fn run_raw_density(
    compiled: &CompiledCircuit,
    inputs: &[f64],
    params: &[f64],
    noise: &NoiseModel,
    override_angle: Option<(usize, f64)>,
) -> Result<DensityMatrix, RuntimeError> {
    noise.validate()?;
    let kraus1 = noise.after_gate1.map(|c| c.kraus_operators());
    let kraus2 = noise.after_gate2.map(|c| c.kraus_operators());
    let mut rho = DensityMatrix::zero(compiled.n_qubits());
    for (k, gate) in compiled.raw_schedule().iter().enumerate() {
        let theta_of = |angle: &crate::compile::FusedAngle| match override_angle {
            Some((idx, theta)) if idx == k => theta,
            _ => angle.value(inputs, params),
        };
        // Apply the gate, then the matching channel on each touched wire
        // (in the same wire order as the interpreter).
        match gate {
            CGate::Rot { qubit, axis, angle } => {
                rho.apply_gate1(*qubit, &axis.gate(theta_of(angle)))?;
                if let Some(kraus) = &kraus1 {
                    rho.apply_kraus1(*qubit, kraus)?;
                }
            }
            CGate::Fixed { qubit, gate } => {
                rho.apply_gate1(*qubit, gate)?;
                if let Some(kraus) = &kraus1 {
                    rho.apply_kraus1(*qubit, kraus)?;
                }
            }
            CGate::CRot {
                control,
                target,
                axis,
                angle,
            } => {
                rho.apply_gate2(
                    *control,
                    *target,
                    &Gate2::controlled(&axis.gate(theta_of(angle))),
                )?;
                if let Some(kraus) = &kraus2 {
                    rho.apply_kraus1(*control, kraus)?;
                    rho.apply_kraus1(*target, kraus)?;
                }
            }
            CGate::Cnot { control, target } => {
                rho.apply_gate2(*control, *target, &Gate2::cnot())?;
                if let Some(kraus) = &kraus2 {
                    rho.apply_kraus1(*control, kraus)?;
                    rho.apply_kraus1(*target, kraus)?;
                }
            }
            CGate::Cz { control, target } => {
                rho.apply_gate2(*control, *target, &Gate2::cz())?;
                if let Some(kraus) = &kraus2 {
                    rho.apply_kraus1(*control, kraus)?;
                    rho.apply_kraus1(*target, kraus)?;
                }
            }
            // Fixed2 never appears in the raw schedule (fusion products
            // live in the fused schedule only); the arm keeps the match
            // total should that invariant ever change.
            CGate::Fixed2 { qa, qb, gate } => {
                rho.apply_gate2(*qa, *qb, gate)?;
                if let Some(kraus) = &kraus2 {
                    rho.apply_kraus1(*qa, kraus)?;
                    rho.apply_kraus1(*qb, kraus)?;
                }
            }
        }
    }
    Ok(rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

    fn mixed_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.rot(0, Ax::Y, Angle::Input(InputId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Param(ParamId(1)))
            .unwrap();
        c.cnot(1, 2).unwrap();
        c.cz(0, 2).unwrap();
        c.rot(2, Ax::Z, Angle::Const(0.7)).unwrap();
        c
    }

    #[test]
    fn compiled_matches_interpreter() {
        let c = mixed_circuit();
        let compiled = compile(&c);
        let inputs = [0.4];
        let params = [0.9, -1.3];
        let fast = run_compiled(&compiled, &inputs, &params).unwrap();
        let reference = qmarl_vqc::exec::run(&c, &inputs, &params).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn raw_schedule_matches_interpreter_too() {
        let c = mixed_circuit();
        let compiled = compile(&c);
        let inputs = [1.1];
        let params = [0.2, 0.3];
        let raw = run_schedule_unchecked(3, compiled.raw_schedule(), &inputs, &params);
        let reference = qmarl_vqc::exec::run(&c, &inputs, &params).unwrap();
        for (a, b) in raw.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn binding_validation() {
        let compiled = compile(&mixed_circuit());
        assert!(matches!(
            run_compiled(&compiled, &[], &[0.0; 2]),
            Err(RuntimeError::InputLenMismatch {
                expected: 1,
                actual: 0
            })
        ));
        assert!(matches!(
            run_compiled(&compiled, &[0.0], &[0.0; 3]),
            Err(RuntimeError::ParamLenMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn override_changes_only_the_targeted_gate() {
        let c = mixed_circuit();
        let compiled = compile(&c);
        let inputs = [0.4];
        let params = [0.9, -1.3];
        // Overriding occurrence of param 0 (raw idx 2) with its bound value
        // reproduces the plain run.
        let same = run_raw_with_override(&compiled, &inputs, &params, 2, params[0]);
        let plain = run_compiled(&compiled, &inputs, &params).unwrap();
        assert!((same.fidelity(&plain).unwrap() - 1.0).abs() < 1e-12);
        let different = run_raw_with_override(&compiled, &inputs, &params, 2, params[0] + 1.0);
        assert!(different.fidelity(&plain).unwrap() < 1.0 - 1e-6);
    }

    #[test]
    fn raw_density_matches_vqc_run_noisy() {
        let c = mixed_circuit();
        let compiled = compile(&c);
        let inputs = [0.4];
        let params = [0.9, -1.3];
        for noise in [
            NoiseModel::noiseless(),
            NoiseModel::depolarizing(0.01, 0.02).unwrap(),
        ] {
            let rho = run_raw_density(&compiled, &inputs, &params, &noise, None).unwrap();
            let reference = qmarl_vqc::exec::run_noisy(&c, &inputs, &params, &noise).unwrap();
            for q in 0..3 {
                assert!(
                    (rho.expectation_z(q).unwrap() - reference.expectation_z(q).unwrap()).abs()
                        < 1e-12,
                    "wire {q}"
                );
            }
            assert!((rho.trace().re - 1.0).abs() < 1e-9);
        }
        // An override with the bound value reproduces the plain run; a
        // shifted value changes the state.
        let noise = NoiseModel::depolarizing(0.01, 0.02).unwrap();
        let plain = run_raw_density(&compiled, &inputs, &params, &noise, None).unwrap();
        let same =
            run_raw_density(&compiled, &inputs, &params, &noise, Some((2, params[0]))).unwrap();
        let shifted = run_raw_density(
            &compiled,
            &inputs,
            &params,
            &noise,
            Some((2, params[0] + 1.0)),
        )
        .unwrap();
        for q in 0..3 {
            let a = plain.expectation_z(q).unwrap();
            assert!((a - same.expectation_z(q).unwrap()).abs() < 1e-12);
        }
        assert!((0..3).any(|q| {
            (plain.expectation_z(q).unwrap() - shifted.expectation_z(q).unwrap()).abs() > 1e-6
        }));
    }

    #[test]
    fn cz_fast_path_is_its_own_inverse() {
        let mut c = Circuit::new(2);
        c.fixed(0, FixedGate::H).unwrap();
        c.fixed(1, FixedGate::H).unwrap();
        c.cz(0, 1).unwrap();
        c.cz(0, 1).unwrap();
        let compiled = compile(&c);
        let s = run_compiled(&compiled, &[], &[]).unwrap();
        // H⊗H with CZ² = I leaves the uniform superposition.
        for a in s.amplitudes() {
            assert!((a.re - 0.5).abs() < 1e-12 && a.im.abs() < 1e-15);
        }
    }
}
