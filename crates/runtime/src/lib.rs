//! # qmarl-runtime — batched circuit execution + parallel rollout engine
//!
//! The execution engine of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443). The paper's
//! training loop is dominated by two embarrassingly parallel workloads —
//! per-agent/per-sample VQC evaluation and the parameter-shift gradient's
//! ±π/2 circuit fan-out — plus episode collection, which is independent
//! across episodes. This crate turns all three into flat work queues over
//! one shared scheduler ([`qmarl_qsim::par`]). Pipeline:
//!
//! ```text
//!            compile (once)              bind + batch                 fold
//! Circuit ───────────────▶ CompiledCircuit ─────────▶ B statevectors ─────▶ outputs
//!   IR       fusion, slot    (cached by       shared     (one work        Jacobians
//!            resolution,      structural      schedule    item each)      episodes
//!            validation)      hash)
//! ```
//!
//! * [`compile`] — lowers [`qmarl_vqc::ir::Circuit`] into a flat,
//!   fusion-optimised [`compile::CompiledCircuit`]: adjacent same-axis
//!   rotations on one wire fuse (their symbolic angles add), adjacent
//!   fixed gates pre-multiply, angle slots resolve to direct
//!   input/parameter indices, and wires are validated once so execution
//!   validates nothing. The unfused schedule and the trainable-occurrence
//!   table are kept for the gradient path, which must shift individual
//!   occurrences.
//! * [`cache`] — a process-wide compiled-circuit cache keyed by
//!   structural hash: every clone of a model (and every same-shaped
//!   model) shares one `Arc<CompiledCircuit>`.
//! * [`batch`] — [`batch::BatchExecutor`]: B statevectors over one
//!   shared schedule, batched readouts, and a batched parameter-shift
//!   path that schedules **every** shift evaluation of a whole minibatch
//!   as one flat queue. Batched results are bit-identical to serial ones
//!   (fold order is fixed; property-tested at 1e-12 against
//!   `vqc::exec::run`).
//! * [`backend`] — [`backend::ExecutionBackend`]: the execution-model
//!   axis. `Ideal` (exact statevector, the default), `Sampled { shots }`
//!   (finite-shot readout with content-addressed per-evaluation seeds),
//!   `Noisy { model, shots }` (exact density-matrix execution with
//!   per-gate channels) and `Trajectory { model, samples }`
//!   (quantum-trajectory sampling of the same noise model at
//!   statevector cost). String-constructible
//!   (`"sampled:shots=1024"`), threaded through every executor queue and
//!   [`qnn::CompiledVqc`]; stochastic backends differentiate by the
//!   batched parameter-shift queue (adjoint stays `Ideal`-only).
//! * [`superop`] — the compiled Noisy hot path: the raw schedule plus
//!   its channels prebind **once** per evaluation batch into dense
//!   per-gate superoperators ([`qmarl_qsim::superop`]) applied over
//!   density lane slabs, replacing the per-gate interpreter walk
//!   (verified against it at 1e-12).
//! * [`trajectory`] — the Trajectory executor: `samples` statevectors
//!   as lanes of one slab walk, per-sample Pauli errors drawn from
//!   derived per-sample streams (worker-count invariant, serial ≡
//!   batched), converging to the density result at `O(1/√samples)`.
//! * [`rollout`] — parallel rollout workers with a per-*episode* seed
//!   derivation, so collected traces are identical for any worker count
//!   (see the module docs for the determinism contract).
//! * [`vec_rollout`] — the vectorized collector: a
//!   [`qmarl_env::vector::VectorEnv`] advances all in-flight episodes in
//!   lockstep and the policy sees every live lane at once, so all
//!   `lanes × agents` circuit evaluations of a tick reach the
//!   [`batch::BatchExecutor`] as one flat batch. Bit-identical to the
//!   per-episode engine under the same seed derivation.
//! * [`qnn`] — [`qnn::CompiledVqc`], the model-facing wrapper
//!   `qmarl-core`'s quantum actors and critics execute through.
//!
//! ## Quick example
//!
//! ```
//! use qmarl_runtime::prelude::*;
//! use qmarl_vqc::prelude::*;
//!
//! // The paper's 4-qubit actor shape, compiled once…
//! let model = VqcBuilder::new(4)
//!     .encoder_inputs(4)
//!     .ansatz_params(20)
//!     .readout(Readout::z_all(4))
//!     .build()?;
//! let compiled = CompiledVqc::new(model);
//! let params = compiled.model().init_params(7);
//!
//! // …then evaluated over a whole minibatch in one call.
//! let minibatch: Vec<Vec<f64>> = (0..32).map(|b| vec![0.01 * b as f64; 4]).collect();
//! let outputs = compiled.forward_batch(&minibatch, &params)?;
//! assert_eq!(outputs.len(), 32);
//! assert_eq!(outputs[0].len(), 4);
//! # Ok::<(), qmarl_runtime::error::RuntimeError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod batch;
pub mod cache;
pub mod compile;
pub mod error;
pub mod exec;
pub mod prebound;
pub mod qnn;
pub mod rollout;
pub mod superop;
pub mod trajectory;
pub mod vec_rollout;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::backend::ExecutionBackend;
    pub use crate::batch::BatchExecutor;
    pub use crate::batch::{AdjointGroup, PreboundGroup};
    pub use crate::cache::CircuitCache;
    pub use crate::compile::{circuit_hash, compile, CGate, CompiledCircuit, FusedAngle};
    pub use crate::error::RuntimeError;
    pub use crate::exec::run_compiled;
    pub use crate::prebound::{
        prebind, prebind_adjoint, run_prebound, PreboundAdjoint, PreboundCircuit,
    };
    pub use crate::qnn::{CompiledVqc, PreboundVqc};
    pub use crate::rollout::{
        collect_episodes, derive_seed, EpisodeTrace, RolloutConfig, RolloutError, RolloutPolicy,
        TraceStep, WorkerEnv,
    };
    pub use crate::superop::{prebind_density, run_density, DensityPrebound};
    pub use crate::trajectory::{prebind_trajectory, TrajPrebound};
    pub use crate::vec_rollout::{collect_episodes_vec, VecDecision, VecRolloutPolicy};
}
