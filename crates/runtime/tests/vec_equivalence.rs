//! The vectorized collector's hard guarantee, property-tested:
//!
//! > For **every registered scenario** and lane counts {1, 3, 16}, the
//! > lockstep vectorized engine reproduces the serial per-episode
//! > engine's traces — rewards, states, observations, metrics — **bit
//! > exactly** per episode under the shared `derive_seed` contract.
//!
//! The policies used here are RNG-consuming (uniform random joint
//! actions), so the test also pins the action-stream discipline: a
//! vectorized policy must draw from each lane's RNG exactly as the serial
//! policy draws from the episode RNG.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

use qmarl_env::error::EnvError;
use qmarl_env::scenario::{scenarios, ScenarioParams};
use qmarl_env::vector::ReplicatedVecEnv;
use qmarl_runtime::rollout::{collect_episodes, RolloutConfig};
use qmarl_runtime::vec_rollout::{collect_episodes_vec, VecDecision};

/// The serial engine's per-episode policy shape.
type BoxedSerialPolicy =
    Box<dyn FnMut(&[Vec<f64>], &mut StdRng) -> Result<(Vec<usize>, f64), EnvError>>;

/// Serial reference: uniform random joint actions, one draw per agent.
fn serial_policy(n_agents: usize, n_actions: usize) -> impl Fn(usize) -> BoxedSerialPolicy {
    move |_episode| {
        Box::new(move |_obs: &[Vec<f64>], rng: &mut StdRng| {
            let actions = (0..n_agents).map(|_| rng.gen_range(0..n_actions)).collect();
            Ok((actions, 0.25))
        })
    }
}

proptest! {
    /// Serial ≡ vectorized, per scenario, per lane count, bit for bit.
    #[test]
    fn vectorized_reproduces_serial_for_every_scenario(
        base_seed in 0u64..200,
        n_episodes in 1usize..6,
    ) {
        for spec in scenarios() {
            let params = ScenarioParams::seeded(0).with_episode_limit(6);
            let template = spec
                .build_with(&params)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            let n_agents = template.n_agents();
            let n_actions = template.n_actions();
            let config = RolloutConfig::new(base_seed).with_workers(1);

            let reference = collect_episodes(
                &template,
                serial_policy(n_agents, n_actions),
                n_episodes,
                &config,
            )
            .unwrap();

            for lanes in [1usize, 3, 16] {
                let mut venv = ReplicatedVecEnv::new(&template, lanes).unwrap();
                let mut vec_policy = |_obs: &[f64],
                                      rows: &[usize],
                                      rngs: &mut [StdRng]|
                 -> Result<VecDecision, EnvError> {
                    let mut actions = Vec::with_capacity(rows.len() * n_agents);
                    for &lane in rows {
                        for _ in 0..n_agents {
                            actions.push(rngs[lane].gen_range(0..n_actions));
                        }
                    }
                    Ok(VecDecision {
                        actions,
                        aux: vec![0.25; rows.len()],
                    })
                };
                let got =
                    collect_episodes_vec(&mut venv, &mut vec_policy, n_episodes, &config).unwrap();
                prop_assert_eq!(
                    &got,
                    &reference,
                    "scenario {} lanes {}",
                    spec.name(),
                    lanes
                );
                // Per-episode metrics fold identically too.
                for (a, b) in got.iter().zip(&reference) {
                    prop_assert_eq!(a.metrics(), b.metrics());
                    prop_assert_eq!(a.total_reward(), b.total_reward());
                }
            }
        }
    }

    /// Lane counts never leak into each other: collecting more episodes
    /// leaves the earlier episodes' traces untouched.
    #[test]
    fn episode_prefix_is_stable_under_collection_size(
        base_seed in 0u64..100,
    ) {
        let spec = qmarl_env::scenario::find_scenario("single-hop").unwrap();
        let template = spec
            .build_with(&ScenarioParams::seeded(0).with_episode_limit(5))
            .unwrap();
        let config = RolloutConfig::new(base_seed);
        let policy = |_obs: &[f64], rows: &[usize], rngs: &mut [StdRng]| {
            let mut actions = Vec::with_capacity(rows.len() * 4);
            for &lane in rows {
                for _ in 0..4 {
                    actions.push(rngs[lane].gen_range(0..4));
                }
            }
            Ok::<_, EnvError>(VecDecision { actions, aux: vec![0.0; rows.len()] })
        };
        let mut venv = ReplicatedVecEnv::new(&template, 3).unwrap();
        let small = collect_episodes_vec(&mut venv, &mut { policy }, 2, &config).unwrap();
        let mut venv = ReplicatedVecEnv::new(&template, 3).unwrap();
        let large = collect_episodes_vec(&mut venv, &mut { policy }, 7, &config).unwrap();
        prop_assert_eq!(&large[..2], &small[..]);
    }
}
