//! Property-based tests for the batched runtime: the equivalence
//! guarantees the acceptance criteria pin at 1e-12.

use proptest::prelude::*;

use qmarl_qsim::gate::RotationAxis;
use qmarl_runtime::prelude::*;
use qmarl_vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};
use qmarl_vqc::observable::Readout;

/// Strategy: one random circuit op as plain data.
#[derive(Debug, Clone)]
enum ArbOp {
    Rot(usize, RotationAxis, ArbAngle),
    CRot(usize, usize, RotationAxis, ArbAngle),
    Cnot(usize, usize),
    Cz(usize, usize),
    Fixed(usize, FixedGate),
}

#[derive(Debug, Clone, Copy)]
enum ArbAngle {
    Input(usize),
    Param(usize),
    Const(f64),
}

fn arb_axis() -> impl Strategy<Value = RotationAxis> {
    prop_oneof![
        Just(RotationAxis::X),
        Just(RotationAxis::Y),
        Just(RotationAxis::Z)
    ]
}

fn arb_angle(n_inputs: usize, n_params: usize) -> impl Strategy<Value = ArbAngle> {
    prop_oneof![
        (0..n_inputs).prop_map(ArbAngle::Input),
        (0..n_params).prop_map(ArbAngle::Param),
        (-3.0f64..3.0).prop_map(ArbAngle::Const),
    ]
}

fn arb_fixed() -> impl Strategy<Value = FixedGate> {
    prop_oneof![
        Just(FixedGate::H),
        Just(FixedGate::X),
        Just(FixedGate::Y),
        Just(FixedGate::Z),
        Just(FixedGate::S),
        Just(FixedGate::T)
    ]
}

fn arb_ops(
    n_qubits: usize,
    n_inputs: usize,
    n_params: usize,
    max_len: usize,
) -> impl Strategy<Value = Vec<ArbOp>> {
    let rot = (0..n_qubits, arb_axis(), arb_angle(n_inputs, n_params))
        .prop_map(|(q, ax, a)| ArbOp::Rot(q, ax, a));
    let crot = (
        0..n_qubits,
        0..n_qubits.saturating_sub(1),
        arb_axis(),
        arb_angle(n_inputs, n_params),
    )
        .prop_map(move |(c, t0, ax, a)| {
            let t = if t0 >= c { t0 + 1 } else { t0 };
            ArbOp::CRot(c, t, ax, a)
        });
    let cnot = (0..n_qubits, 0..n_qubits.saturating_sub(1)).prop_map(move |(c, t0)| {
        let t = if t0 >= c { t0 + 1 } else { t0 };
        ArbOp::Cnot(c, t)
    });
    let cz = (0..n_qubits, 0..n_qubits.saturating_sub(1)).prop_map(move |(c, t0)| {
        let t = if t0 >= c { t0 + 1 } else { t0 };
        ArbOp::Cz(c, t)
    });
    let fixed = (0..n_qubits, arb_fixed()).prop_map(|(q, g)| ArbOp::Fixed(q, g));
    // Rotation-heavy mix so the fusion pass has real work to do.
    prop::collection::vec(
        prop_oneof![5 => rot, 2 => crot, 1 => cnot, 1 => cz, 2 => fixed],
        1..max_len,
    )
}

fn build(n_qubits: usize, n_inputs: usize, n_params: usize, ops: &[ArbOp]) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    // Anchor arity so random circuits always accept full binding vectors.
    c.rot(0, RotationAxis::X, Angle::Input(InputId(n_inputs - 1)))
        .unwrap();
    c.rot(0, RotationAxis::X, Angle::Param(ParamId(n_params - 1)))
        .unwrap();
    for op in ops {
        match *op {
            ArbOp::Rot(q, ax, a) => {
                c.rot(q, ax, lower_angle(a)).unwrap();
            }
            ArbOp::CRot(ctl, t, ax, a) => {
                c.controlled_rot(ctl, t, ax, lower_angle(a)).unwrap();
            }
            ArbOp::Cnot(ctl, t) => {
                c.cnot(ctl, t).unwrap();
            }
            ArbOp::Cz(ctl, t) => {
                c.cz(ctl, t).unwrap();
            }
            ArbOp::Fixed(q, g) => {
                c.fixed(q, g).unwrap();
            }
        }
    }
    c
}

fn lower_angle(a: ArbAngle) -> Angle {
    match a {
        ArbAngle::Input(i) => Angle::Input(InputId(i)),
        ArbAngle::Param(p) => Angle::Param(ParamId(p)),
        ArbAngle::Const(c) => Angle::Const(c),
    }
}

const TOL: f64 = 1e-12;

proptest! {
    /// Batched execution ≡ serial `vqc::exec::run`, amplitude by
    /// amplitude, across randomized circuits and batch sizes.
    #[test]
    fn batched_equals_serial_amplitudes(
        ops in arb_ops(4, 3, 5, 30),
        inputs in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 3), 1..9),
        params in prop::collection::vec(-2.0f64..2.0, 5),
        workers in 1usize..9,
    ) {
        let circuit = build(4, 3, 5, &ops);
        let compiled = compile(&circuit);
        let ex = BatchExecutor::new(workers);
        let states = ex.run_batch(&compiled, &inputs, &params).unwrap();
        for (item, state) in inputs.iter().zip(&states) {
            let reference = qmarl_vqc::exec::run(&circuit, item, &params).unwrap();
            for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
                prop_assert!((*a - *b).abs() < TOL, "amplitude drift {:e}", (*a - *b).abs());
            }
        }
    }

    /// Fused and unfused schedules are the same unitary.
    #[test]
    fn fused_equals_unfused(
        ops in arb_ops(3, 2, 4, 40),
        inputs in prop::collection::vec(-2.0f64..2.0, 2),
        params in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let circuit = build(3, 2, 4, &ops);
        let compiled = compile(&circuit);
        let fused = run_compiled(&compiled, &inputs, &params).unwrap();
        // The raw schedule re-runs through the serial interpreter.
        let reference = qmarl_vqc::exec::run(&circuit, &inputs, &params).unwrap();
        for (a, b) in fused.amplitudes().iter().zip(reference.amplitudes()) {
            prop_assert!((*a - *b).abs() < TOL);
        }
        // And fusion actually fires on rotation-heavy circuits sometimes;
        // at minimum it never grows the schedule.
        prop_assert!(compiled.fused_schedule().len() <= compiled.raw_schedule().len());
    }

    /// Batched expectations ≡ serial readout evaluation.
    #[test]
    fn batched_expectations_equal_serial(
        ops in arb_ops(3, 2, 4, 25),
        inputs in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 2), 1..6),
        params in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let circuit = build(3, 2, 4, &ops);
        let compiled = compile(&circuit);
        for readout in [Readout::z_all(3), Readout::mean_z(3)] {
            let outs = BatchExecutor::new(4)
                .expectation_batch(&compiled, &readout, &inputs, &params)
                .unwrap();
            for (item, out) in inputs.iter().zip(&outs) {
                let state = qmarl_vqc::exec::run(&circuit, item, &params).unwrap();
                let reference = readout.evaluate(&state).unwrap();
                for (a, b) in out.iter().zip(&reference) {
                    prop_assert!((a - b).abs() < TOL);
                }
            }
        }
    }

    /// Batched parameter-shift ≡ `vqc::grad::jacobian_parameter_shift`
    /// per sample, including controlled (four-term) occurrences.
    #[test]
    fn batched_jacobian_equals_serial(
        ops in arb_ops(3, 2, 4, 18),
        inputs in prop::collection::vec(prop::collection::vec(-1.5f64..1.5, 2), 1..4),
        params in prop::collection::vec(-1.5f64..1.5, 4),
    ) {
        let circuit = build(3, 2, 4, &ops);
        let compiled = compile(&circuit);
        let readout = Readout::z_all(3);
        let jacs = BatchExecutor::new(4)
            .jacobian_batch(&compiled, &readout, &inputs, &params)
            .unwrap();
        for (item, jac) in inputs.iter().zip(&jacs) {
            let reference =
                qmarl_vqc::grad::jacobian_parameter_shift(&circuit, &readout, item, &params)
                    .unwrap();
            prop_assert!(jac.max_abs_diff(&reference) < TOL,
                "jacobian drift {:e}", jac.max_abs_diff(&reference));
        }
    }

    /// The compiled-circuit cache returns one shared compilation per
    /// structure and never changes results.
    #[test]
    fn cache_roundtrip_preserves_semantics(
        ops in arb_ops(3, 2, 4, 20),
        inputs in prop::collection::vec(-2.0f64..2.0, 2),
        params in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let circuit = build(3, 2, 4, &ops);
        let cache = CircuitCache::new();
        let c1 = cache.get_or_compile(&circuit);
        let c2 = cache.get_or_compile(&circuit);
        prop_assert!(std::sync::Arc::ptr_eq(&c1, &c2));
        let a = run_compiled(&c1, &inputs, &params).unwrap();
        let b = qmarl_vqc::exec::run(&circuit, &inputs, &params).unwrap();
        prop_assert!((a.fidelity(&b).unwrap() - 1.0).abs() < TOL);
    }
}

mod rollout_equivalence {
    use super::*;
    use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};
    use rand::rngs::StdRng;
    use rand::Rng;

    fn env(limit: usize) -> SingleHopEnv {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = limit;
        SingleHopEnv::new(cfg, 0).unwrap()
    }

    #[allow(clippy::type_complexity)] // the RolloutPolicy closure shape, spelled out
    fn policy(
        _episode: usize,
    ) -> impl FnMut(&[Vec<f64>], &mut StdRng) -> Result<(Vec<usize>, f64), RuntimeError> {
        |obs: &[Vec<f64>], rng: &mut StdRng| {
            Ok((obs.iter().map(|_| rng.gen_range(0..4)).collect(), 0.0))
        }
    }

    /// A hand-written serial reference: run the same derivation loop with
    /// no parallel scheduler at all.
    fn serial_reference(
        template: &SingleHopEnv,
        n_episodes: usize,
        base_seed: u64,
    ) -> Vec<EpisodeTrace> {
        use qmarl_env::multi_agent::MultiAgentEnv;
        use rand::SeedableRng;
        (0..n_episodes)
            .map(|i| {
                let mut env = template.clone();
                env.reseed(derive_seed(base_seed, 0x45, i as u64));
                let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, 0x50, i as u64));
                let mut p = policy(i);
                let (mut obs, mut state) = env.reset();
                let mut steps = Vec::new();
                loop {
                    let (actions, aux) = p(&obs, &mut rng).unwrap();
                    let out = env.step(&actions).unwrap();
                    steps.push(TraceStep {
                        state: state.clone(),
                        observations: obs.clone(),
                        actions,
                        reward: out.reward,
                        next_state: out.state.clone(),
                        next_observations: out.observations.clone(),
                        done: out.done,
                        info: out.info,
                        aux,
                    });
                    obs = out.observations;
                    state = out.state;
                    if out.done {
                        break;
                    }
                }
                EpisodeTrace { index: i, steps }
            })
            .collect()
    }

    #[test]
    fn parallel_rollouts_equal_serial_reference_for_one_worker() {
        let template = env(10);
        let engine = collect_episodes(
            &template,
            policy,
            5,
            &RolloutConfig {
                workers: 1,
                base_seed: 99,
            },
        )
        .unwrap();
        let reference = serial_reference(&template, 5, 99);
        assert_eq!(engine, reference);
    }

    #[test]
    fn parallel_rollouts_independent_of_worker_count() {
        let template = env(15);
        let one = collect_episodes(
            &template,
            policy,
            6,
            &RolloutConfig {
                workers: 1,
                base_seed: 5,
            },
        )
        .unwrap();
        for workers in [2, 3, 8] {
            let many = collect_episodes(
                &template,
                policy,
                6,
                &RolloutConfig {
                    workers,
                    base_seed: 5,
                },
            )
            .unwrap();
            assert_eq!(one, many, "workers={workers}");
        }
    }
}
