//! Quantum gradients: parameter-shift, adjoint differentiation, finite
//! differences.
//!
//! The paper differentiates its VQCs with PyTorch autograd through
//! torchquantum. We substitute three interchangeable methods (DESIGN.md §1):
//!
//! * **Parameter-shift** ([`jacobian_parameter_shift`]) — the canonical,
//!   hardware-compatible rule. Exact (not an approximation) for rotation
//!   generators: `∂f/∂θ = [f(θ+π/2) − f(θ−π/2)] / 2`. Controlled rotations
//!   have generator spectrum `{0, ±1}` and need the four-term rule.
//! * **Adjoint differentiation** ([`jacobian_adjoint`]) — reverse-mode
//!   through the statevector (one forward pass + one backward sweep),
//!   mathematically identical to what simulator autograd computes and
//!   asymptotically cheapest. Only valid for noiseless (unitary) execution.
//! * **Finite differences** ([`jacobian_finite_diff`]) — the cross-check.
//!
//! `gradients_agree`-style tests assert all three match, which is the
//! correctness guard for the autodiff substitution.

use qmarl_qsim::complex::Complex64;
use qmarl_qsim::state::StateVector;

use crate::error::VqcError;
use crate::exec::{self, run};
use crate::ir::{Angle, Circuit, Op, ParamId};
use crate::observable::Readout;

/// A dense Jacobian: `rows = outputs`, `cols = trainable parameters`.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobian {
    n_outputs: usize,
    n_params: usize,
    data: Vec<f64>,
}

impl Jacobian {
    /// An all-zeros Jacobian.
    pub fn zeros(n_outputs: usize, n_params: usize) -> Self {
        Jacobian {
            n_outputs,
            n_params,
            data: vec![0.0; n_outputs * n_params],
        }
    }

    /// Number of output rows.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of parameter columns.
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The entry `∂ output_j / ∂ θ_p`.
    #[inline]
    pub fn get(&self, output: usize, param: usize) -> f64 {
        self.data[output * self.n_params + param]
    }

    /// Mutable entry access.
    #[inline]
    pub fn get_mut(&mut self, output: usize, param: usize) -> &mut f64 {
        &mut self.data[output * self.n_params + param]
    }

    /// One output's gradient row.
    pub fn row(&self, output: usize) -> &[f64] {
        &self.data[output * self.n_params..(output + 1) * self.n_params]
    }

    /// A single-row Jacobian taking ownership of an existing gradient
    /// vector — how scalar-output models hand the trainer a uniform
    /// `(value, Jacobian)` surface without copying.
    pub fn from_row(row: Vec<f64>) -> Self {
        Jacobian {
            n_outputs: 1,
            n_params: row.len(),
            data: row,
        }
    }

    /// Chain rule: given `∂L/∂outputs`, returns `∂L/∂θ` (vector-Jacobian
    /// product — what an optimizer consumes).
    ///
    /// # Panics
    ///
    /// Panics if `upstream.len() != n_outputs`.
    pub fn vjp(&self, upstream: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_params];
        self.vjp_into(upstream, &mut out);
        out
    }

    /// [`Jacobian::vjp`] into a caller-owned buffer (overwritten) — the
    /// update-sweep hot path reuses one scratch vector across a whole
    /// batch instead of allocating per transition. Arithmetic is
    /// identical to [`Jacobian::vjp`].
    ///
    /// # Panics
    ///
    /// Panics if `upstream.len() != n_outputs` or `out.len() != n_params`.
    pub fn vjp_into(&self, upstream: &[f64], out: &mut [f64]) {
        assert_eq!(
            upstream.len(),
            self.n_outputs,
            "upstream gradient length mismatch"
        );
        assert_eq!(
            out.len(),
            self.n_params,
            "vjp output buffer length mismatch"
        );
        out.fill(0.0);
        for (j, &u) in upstream.iter().enumerate() {
            for (p, o) in out.iter_mut().enumerate() {
                *o += u * self.get(j, p);
            }
        }
    }

    /// Maximum absolute difference against another Jacobian.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Jacobian) -> f64 {
        assert_eq!(self.n_outputs, other.n_outputs);
        assert_eq!(self.n_params, other.n_params);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Which differentiation method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GradMethod {
    /// Two-/four-term parameter-shift rule.
    ParameterShift,
    /// Reverse-mode adjoint differentiation (noiseless only).
    Adjoint,
    /// Central finite differences with `eps = 1e-6`.
    FiniteDiff,
}

/// Computes the Jacobian with the chosen method.
///
/// `ParameterShift` routes through
/// [`jacobian_parameter_shift_parallel`] with the scheduler's default
/// worker count — bit-identical to the serial rule (contributions fold in
/// occurrence order), but every shift evaluation of a deep circuit keeps
/// the cores busy. On a single-core host the parallel path falls straight
/// through to the serial sweep.
///
/// # Errors
///
/// Propagates binding and readout validation errors.
pub fn jacobian(
    method: GradMethod,
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
) -> Result<Jacobian, VqcError> {
    match method {
        GradMethod::ParameterShift => jacobian_parameter_shift_parallel(
            circuit,
            readout,
            inputs,
            params,
            qmarl_qsim::par::default_workers(),
        ),
        GradMethod::Adjoint => jacobian_adjoint(circuit, readout, inputs, params),
        GradMethod::FiniteDiff => jacobian_finite_diff(circuit, readout, inputs, params, 1e-6),
    }
}

/// Runs the circuit with op `override_idx`'s angle replaced by `theta`.
fn run_with_override(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    override_idx: usize,
    theta: f64,
) -> Result<StateVector, VqcError> {
    let mut state = StateVector::zero(circuit.n_qubits());
    for (k, op) in circuit.ops().iter().enumerate() {
        if k == override_idx {
            let replaced = match *op {
                Op::Rot { qubit, axis, .. } => Op::Rot {
                    qubit,
                    axis,
                    angle: Angle::Const(theta),
                },
                Op::ControlledRot {
                    control,
                    target,
                    axis,
                    ..
                } => Op::ControlledRot {
                    control,
                    target,
                    axis,
                    angle: Angle::Const(theta),
                },
                other => other,
            };
            exec::apply_op(&mut state, &replaced, inputs, params)?;
        } else {
            exec::apply_op(&mut state, op, inputs, params)?;
        }
    }
    Ok(state)
}

/// The parameter occurrences of a circuit: `(op index, param id, base angle)`.
fn param_occurrences(circuit: &Circuit, params: &[f64]) -> Vec<(usize, usize, f64, bool)> {
    circuit
        .ops()
        .iter()
        .enumerate()
        .filter_map(|(k, op)| match op.angle() {
            Some(Angle::Param(ParamId(p))) => {
                let controlled = matches!(op, Op::ControlledRot { .. });
                Some((k, p, params[p], controlled))
            }
            _ => None,
        })
        .collect()
}

/// Parameter-shift Jacobian. Cost: 2 circuit evaluations per plain-rotation
/// occurrence, 4 per controlled-rotation occurrence.
///
/// # Errors
///
/// Propagates binding and readout validation errors.
pub fn jacobian_parameter_shift(
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
) -> Result<Jacobian, VqcError> {
    // Validate once up front via a plain forward run.
    let base_state = run(circuit, inputs, params)?;
    readout.validate(circuit.n_qubits())?;
    drop(base_state);

    let mut jac = Jacobian::zeros(readout.output_len(), circuit.param_count());
    for (k, p, theta, controlled) in param_occurrences(circuit, params) {
        let contributions =
            occurrence_shift(circuit, readout, inputs, params, k, theta, controlled)?;
        for (j, g) in contributions.into_iter().enumerate() {
            *jac.get_mut(j, p) += g;
        }
    }
    Ok(jac)
}

/// Parallel parameter-shift: fans the parameter occurrences out over the
/// shared work-queue scheduler ([`qmarl_qsim::par`], the same engine the
/// batched runtime uses), with `n_threads` workers. Results are folded in
/// occurrence order, so the output is **bit-identical** to
/// [`jacobian_parameter_shift`]; use it when the circuit is deep enough
/// that gradient evaluation dominates a training step.
///
/// # Errors
///
/// Propagates binding and readout validation errors.
pub fn jacobian_parameter_shift_parallel(
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
    n_threads: usize,
) -> Result<Jacobian, VqcError> {
    let occurrences = param_occurrences(circuit, params);
    if n_threads <= 1 || occurrences.len() < 2 {
        return jacobian_parameter_shift(circuit, readout, inputs, params);
    }
    run(circuit, inputs, params)?;
    readout.validate(circuit.n_qubits())?;

    let contributions = qmarl_qsim::par::try_parallel_map(
        &occurrences,
        n_threads,
        |_, &(k, p, theta, controlled)| {
            occurrence_shift(circuit, readout, inputs, params, k, theta, controlled).map(|g| (p, g))
        },
    )?;

    let mut jac = Jacobian::zeros(readout.output_len(), circuit.param_count());
    for (p, grads) in contributions {
        for (j, g) in grads.into_iter().enumerate() {
            *jac.get_mut(j, p) += g;
        }
    }
    Ok(jac)
}

/// The shift-rule contribution of one parameterised occurrence, per output.
fn occurrence_shift(
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
    k: usize,
    theta: f64,
    controlled: bool,
) -> Result<Vec<f64>, VqcError> {
    shift_rule(theta, controlled, |t| {
        let s = run_with_override(circuit, inputs, params, k, t)?;
        readout.evaluate(&s)
    })
}

/// The parameter-shift combination rule, abstracted over the circuit
/// evaluator: `eval(θ')` must return the readout vector with the targeted
/// occurrence's angle forced to `θ'`. This is the **single** home of the
/// two-/four-term coefficients — the batched runtime's gradient path
/// calls it with its compiled-schedule evaluator, so both engines cannot
/// drift apart.
///
/// # Errors
///
/// Propagates the evaluator's error.
pub fn shift_rule<Err, F>(theta: f64, controlled: bool, mut eval: F) -> Result<Vec<f64>, Err>
where
    F: FnMut(f64) -> Result<Vec<f64>, Err>,
{
    use std::f64::consts::FRAC_PI_2;
    if !controlled {
        // Two-term rule, exact for generator spectrum {±1/2}.
        let plus = eval(theta + FRAC_PI_2)?;
        let minus = eval(theta - FRAC_PI_2)?;
        Ok(plus
            .iter()
            .zip(&minus)
            .map(|(a, b)| (a - b) / 2.0)
            .collect())
    } else {
        // Four-term rule for controlled rotations (generator spectrum
        // {0, ±1/2} in the θ/2 convention → frequencies {1/2, 1}):
        //   f'(θ) = c₁[f(θ+π/2) − f(θ−π/2)] − c₂[f(θ+3π/2) − f(θ−3π/2)],
        //   c₁ = (√2+1)/(4√2),  c₂ = (√2−1)/(4√2).
        let sqrt2 = std::f64::consts::SQRT_2;
        let c1 = (sqrt2 + 1.0) / (4.0 * sqrt2);
        let c2 = (sqrt2 - 1.0) / (4.0 * sqrt2);
        let p1 = eval(theta + FRAC_PI_2)?;
        let m1 = eval(theta - FRAC_PI_2)?;
        let p3 = eval(theta + 3.0 * FRAC_PI_2)?;
        let m3 = eval(theta - 3.0 * FRAC_PI_2)?;
        Ok((0..p1.len())
            .map(|j| c1 * (p1[j] - m1[j]) - c2 * (p3[j] - m3[j]))
            .collect())
    }
}

/// Central finite-difference Jacobian (the numerical cross-check).
///
/// # Errors
///
/// Propagates binding and readout validation errors.
pub fn jacobian_finite_diff(
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
    eps: f64,
) -> Result<Jacobian, VqcError> {
    readout.validate(circuit.n_qubits())?;
    let mut jac = Jacobian::zeros(readout.output_len(), circuit.param_count());
    let mut work = params.to_vec();
    for p in 0..circuit.param_count() {
        work[p] = params[p] + eps;
        let plus = readout.evaluate(&run(circuit, inputs, &work)?)?;
        work[p] = params[p] - eps;
        let minus = readout.evaluate(&run(circuit, inputs, &work)?)?;
        work[p] = params[p];
        for j in 0..plus.len() {
            *jac.get_mut(j, p) = (plus[j] - minus[j]) / (2.0 * eps);
        }
    }
    Ok(jac)
}

/// Adjoint-differentiation Jacobian: one forward pass plus one backward
/// sweep per output observable.
///
/// # Errors
///
/// Propagates binding and readout validation errors.
pub fn jacobian_adjoint(
    circuit: &Circuit,
    readout: &Readout,
    inputs: &[f64],
    params: &[f64],
) -> Result<Jacobian, VqcError> {
    let psi = run(circuit, inputs, params)?;
    readout.validate(circuit.n_qubits())?;

    // Build λ_j = O_j |ψ⟩ for every output observable.
    let observables: Vec<ObservableSpec> = match readout {
        Readout::ZPerQubit { qubits } => {
            qubits.iter().map(|&q| ObservableSpec::SingleZ(q)).collect()
        }
        Readout::WeightedZSum { weights } => vec![ObservableSpec::WeightedZ(weights.clone())],
    };
    let mut lambdas: Vec<StateVector> = observables.iter().map(|o| o.apply(&psi)).collect();
    let mut phi = psi;

    let mut jac = Jacobian::zeros(readout.output_len(), circuit.param_count());
    for op in circuit.ops().iter().rev() {
        // Gradient contribution uses φ = ψ_k (state *after* gate k) and
        // λ = λ_k: ∂E/∂θ = Im⟨λ_k| G |ψ_k⟩ for U = exp(−iθG/2)·(…).
        if let Some(Angle::Param(ParamId(p))) = op.angle() {
            let t = apply_generator(&phi, op);
            for (j, lam) in lambdas.iter().enumerate() {
                let ip = inner_raw(lam, &t);
                *jac.get_mut(j, p) += ip.im;
            }
        }
        // Un-apply the gate from both φ and every λ.
        unapply(&mut phi, op, inputs, params)?;
        for lam in &mut lambdas {
            unapply(lam, op, inputs, params)?;
        }
    }
    Ok(jac)
}

/// The observable kinds the adjoint sweep supports.
enum ObservableSpec {
    SingleZ(usize),
    WeightedZ(Vec<f64>),
}

impl ObservableSpec {
    /// Applies the (Hermitian) observable to a state: `O|ψ⟩`.
    fn apply(&self, psi: &StateVector) -> StateVector {
        let mut out = psi.clone();
        match self {
            ObservableSpec::SingleZ(q) => {
                let mask = 1usize << q;
                for (i, a) in out.amplitudes_mut().iter_mut().enumerate() {
                    if i & mask != 0 {
                        *a = -*a;
                    }
                }
            }
            ObservableSpec::WeightedZ(weights) => {
                let src = psi.amplitudes();
                for (i, a) in out.amplitudes_mut().iter_mut().enumerate() {
                    let mut coeff = 0.0;
                    for (q, w) in weights.iter().enumerate() {
                        let sign = if i & (1usize << q) == 0 { 1.0 } else { -1.0 };
                        coeff += w * sign;
                    }
                    *a = src[i].scale(coeff);
                }
            }
        }
        out
    }
}

/// `⟨a|b⟩` without width checks (internal; widths match by construction).
fn inner_raw(a: &StateVector, b: &StateVector) -> Complex64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| x.conj() * *y)
        .sum()
}

/// Applies `U†` of an op in place.
fn unapply(
    state: &mut StateVector,
    op: &Op,
    inputs: &[f64],
    params: &[f64],
) -> Result<(), VqcError> {
    let inverse = match *op {
        Op::Rot { qubit, axis, angle } => Op::Rot {
            qubit,
            axis,
            angle: Angle::Const(-resolve_angle(angle, inputs, params)),
        },
        Op::ControlledRot {
            control,
            target,
            axis,
            angle,
        } => Op::ControlledRot {
            control,
            target,
            axis,
            angle: Angle::Const(-resolve_angle(angle, inputs, params)),
        },
        // CNOT, CZ are involutions; fixed gates need explicit daggers.
        Op::Cnot { .. } | Op::Cz { .. } => *op,
        Op::Fixed { qubit, gate } => {
            let g = gate.gate().dagger();
            state.apply_gate1(qubit, &g)?;
            return Ok(());
        }
    };
    exec::apply_op(state, &inverse, inputs, params)
}

fn resolve_angle(angle: Angle, inputs: &[f64], params: &[f64]) -> f64 {
    match angle {
        Angle::Input(id) => inputs[id.0],
        Angle::Param(id) => params[id.0],
        Angle::Const(c) => c,
    }
}

/// Applies the generator `G` of a parameterised op (`U = exp(−iθG/2)` up
/// to control projection) to a copy of `state`, returning `G|state⟩`.
fn apply_generator(state: &StateVector, op: &Op) -> StateVector {
    let mut out = state.clone();
    match *op {
        Op::Rot { qubit, axis, .. } => {
            apply_pauli(&mut out, qubit, axis);
        }
        Op::ControlledRot {
            control,
            target,
            axis,
            ..
        } => {
            // G = |1⟩⟨1|_c ⊗ σ_t: project onto control=1 then apply σ.
            let mask = 1usize << control;
            for (i, a) in out.amplitudes_mut().iter_mut().enumerate() {
                if i & mask == 0 {
                    *a = Complex64::ZERO;
                }
            }
            apply_pauli(&mut out, target, axis);
        }
        _ => unreachable!("apply_generator called on non-parameterised op"),
    }
    out
}

fn apply_pauli(state: &mut StateVector, q: usize, axis: qmarl_qsim::gate::RotationAxis) {
    use qmarl_qsim::gate::RotationAxis as Ax;
    let mask = 1usize << q;
    let amps = state.amplitudes_mut();
    match axis {
        Ax::X => {
            for i in 0..amps.len() {
                if i & mask == 0 {
                    amps.swap(i, i | mask);
                }
            }
        }
        Ax::Y => {
            for i in 0..amps.len() {
                if i & mask == 0 {
                    let a0 = amps[i];
                    let a1 = amps[i | mask];
                    amps[i] = Complex64::new(a1.im, -a1.re);
                    amps[i | mask] = Complex64::new(-a0.im, a0.re);
                }
            }
        }
        Ax::Z => {
            for (i, a) in amps.iter_mut().enumerate() {
                if i & mask != 0 {
                    *a = -*a;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{init_params, layered_ansatz, random_layer_ansatz, RandomLayerConfig};
    use crate::encoder::layered_angle_encoder;
    use qmarl_qsim::gate::RotationAxis as Ax;

    fn paper_like_circuit() -> Circuit {
        let mut c = layered_angle_encoder(4, 16).unwrap();
        c.append_shifted(&layered_ansatz(4, 12).unwrap()).unwrap();
        c
    }

    fn test_inputs() -> Vec<f64> {
        (0..16).map(|i| 0.1 * i as f64 - 0.5).collect()
    }

    #[test]
    fn single_rotation_gradient_analytic() {
        // f(θ) = ⟨Z⟩ after Ry(θ)|0⟩ = cos θ, so f'(θ) = −sin θ.
        let mut c = Circuit::new(1);
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        let readout = Readout::z_all(1);
        for theta in [0.0, 0.4, 1.2, -2.2] {
            for method in [
                GradMethod::ParameterShift,
                GradMethod::Adjoint,
                GradMethod::FiniteDiff,
            ] {
                let jac = jacobian(method, &c, &readout, &[], &[theta]).unwrap();
                assert!(
                    (jac.get(0, 0) + theta.sin()).abs() < 1e-6,
                    "{method:?} at θ={theta}: {} vs {}",
                    jac.get(0, 0),
                    -theta.sin()
                );
            }
        }
    }

    #[test]
    fn all_methods_agree_on_layered_circuit() {
        let c = paper_like_circuit();
        let params = init_params(c.param_count(), 5);
        let inputs = test_inputs();
        let readout = Readout::z_all(4);
        let ps = jacobian_parameter_shift(&c, &readout, &inputs, &params).unwrap();
        let adj = jacobian_adjoint(&c, &readout, &inputs, &params).unwrap();
        let fd = jacobian_finite_diff(&c, &readout, &inputs, &params, 1e-6).unwrap();
        assert!(
            ps.max_abs_diff(&adj) < 1e-9,
            "ps vs adjoint: {}",
            ps.max_abs_diff(&adj)
        );
        assert!(
            ps.max_abs_diff(&fd) < 1e-5,
            "ps vs fd: {}",
            ps.max_abs_diff(&fd)
        );
    }

    #[test]
    fn all_methods_agree_on_random_circuit() {
        let c = {
            let mut c = layered_angle_encoder(4, 4).unwrap();
            c.append_shifted(
                &random_layer_ansatz(
                    4,
                    RandomLayerConfig {
                        gate_budget: 30,
                        rotation_prob: 0.7,
                        seed: 99,
                    },
                )
                .unwrap(),
            )
            .unwrap();
            c
        };
        let params = init_params(c.param_count(), 17);
        let inputs = vec![0.3, -0.7, 1.1, 0.2];
        let readout = Readout::mean_z(4);
        let ps = jacobian_parameter_shift(&c, &readout, &inputs, &params).unwrap();
        let adj = jacobian_adjoint(&c, &readout, &inputs, &params).unwrap();
        let fd = jacobian_finite_diff(&c, &readout, &inputs, &params, 1e-6).unwrap();
        assert!(ps.max_abs_diff(&adj) < 1e-9);
        assert!(ps.max_abs_diff(&fd) < 1e-5);
    }

    #[test]
    fn controlled_rotation_four_term_rule() {
        let mut c = Circuit::new(2);
        c.fixed(0, crate::ir::FixedGate::H).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.controlled_rot(0, 1, Ax::Y, Angle::Param(ParamId(1)))
            .unwrap();
        c.controlled_rot(1, 0, Ax::X, Angle::Param(ParamId(2)))
            .unwrap();
        let readout = Readout::z_all(2);
        let params = [0.9, -0.4, 1.7];
        let ps = jacobian_parameter_shift(&c, &readout, &[], &params).unwrap();
        let fd = jacobian_finite_diff(&c, &readout, &[], &params, 1e-6).unwrap();
        let adj = jacobian_adjoint(&c, &readout, &[], &params).unwrap();
        assert!(
            ps.max_abs_diff(&fd) < 1e-5,
            "ps vs fd: {}",
            ps.max_abs_diff(&fd)
        );
        assert!(
            adj.max_abs_diff(&fd) < 1e-5,
            "adj vs fd: {}",
            adj.max_abs_diff(&fd)
        );
    }

    #[test]
    fn shared_parameter_accumulates() {
        // Same param drives two rotations: d/dθ ⟨Z⟩ after Ry(θ)Ry(θ)|0⟩
        // = d/dθ cos(2θ) = −2 sin(2θ).
        let mut c = Circuit::new(1);
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        c.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        let readout = Readout::z_all(1);
        let theta = 0.37;
        for method in [
            GradMethod::ParameterShift,
            GradMethod::Adjoint,
            GradMethod::FiniteDiff,
        ] {
            let jac = jacobian(method, &c, &readout, &[], &[theta]).unwrap();
            assert!(
                (jac.get(0, 0) + 2.0 * (2.0 * theta).sin()).abs() < 1e-6,
                "{method:?}: {}",
                jac.get(0, 0)
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let c = paper_like_circuit();
        let params = init_params(c.param_count(), 23);
        let inputs = test_inputs();
        let readout = Readout::z_all(4);
        let serial = jacobian_parameter_shift(&c, &readout, &inputs, &params).unwrap();
        for threads in [1, 2, 4, 16] {
            let par =
                jacobian_parameter_shift_parallel(&c, &readout, &inputs, &params, threads).unwrap();
            assert!(serial.max_abs_diff(&par) < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn vjp_chain_rule() {
        let mut jac = Jacobian::zeros(2, 3);
        *jac.get_mut(0, 0) = 1.0;
        *jac.get_mut(0, 2) = 2.0;
        *jac.get_mut(1, 1) = -1.0;
        let g = jac.vjp(&[0.5, 2.0]);
        assert_eq!(g, vec![0.5, -2.0, 1.0]);
        assert_eq!(jac.row(0), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn vjp_into_reuses_buffer_bit_exactly() {
        let mut jac = Jacobian::zeros(2, 3);
        *jac.get_mut(0, 0) = 0.3;
        *jac.get_mut(0, 2) = -1.7;
        *jac.get_mut(1, 1) = 2.2;
        let upstream = [0.9, -0.4];
        let fresh = jac.vjp(&upstream);
        // A dirty buffer must be overwritten, not accumulated into.
        let mut buf = vec![99.0; 3];
        jac.vjp_into(&upstream, &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn from_row_wraps_without_reshaping() {
        let jac = Jacobian::from_row(vec![1.5, -0.5, 0.25]);
        assert_eq!(jac.n_outputs(), 1);
        assert_eq!(jac.n_params(), 3);
        assert_eq!(jac.row(0), &[1.5, -0.5, 0.25]);
        // vjp with a scalar upstream scales the row.
        assert_eq!(jac.vjp(&[-2.0]), vec![-3.0, 1.0, -0.5]);
    }

    #[test]
    fn jacobian_dispatch_routes_parameter_shift_through_parallel() {
        // `jacobian(ParameterShift)` is the production route; it must be
        // bit-identical to both the serial rule and the explicitly
        // parallel rule for every worker count.
        let c = paper_like_circuit();
        let params = init_params(c.param_count(), 41);
        let inputs = test_inputs();
        let readout = Readout::z_all(4);
        let routed = jacobian(GradMethod::ParameterShift, &c, &readout, &inputs, &params).unwrap();
        let serial = jacobian_parameter_shift(&c, &readout, &inputs, &params).unwrap();
        assert_eq!(routed.max_abs_diff(&serial), 0.0);
        for workers in [1, 3, 8] {
            let par =
                jacobian_parameter_shift_parallel(&c, &readout, &inputs, &params, workers).unwrap();
            assert_eq!(routed.max_abs_diff(&par), 0.0, "workers={workers}");
        }
    }

    #[test]
    fn gradient_of_input_only_circuit_is_empty() {
        let c = layered_angle_encoder(2, 2).unwrap();
        let jac = jacobian_parameter_shift(&c, &Readout::z_all(2), &[0.5, 0.1], &[]).unwrap();
        assert_eq!(jac.n_params(), 0);
    }

    #[test]
    fn errors_propagate() {
        let c = paper_like_circuit();
        let params = init_params(c.param_count(), 1);
        // Wrong input length.
        assert!(jacobian_parameter_shift(&c, &Readout::z_all(4), &[0.0; 3], &params).is_err());
        // Readout off the register.
        let bad = Readout::ZPerQubit { qubits: vec![9] };
        assert!(jacobian_adjoint(&c, &bad, &test_inputs(), &params).is_err());
    }
}
