//! ASCII circuit diagrams — a textual rendering of Fig. 1.
//!
//! [`render`] draws one row per wire and one column per op, e.g. the
//! paper's 4-qubit encoder + variational layers:
//!
//! ```text
//! q0: ─Rx(s0)──Ry(θ0)──●──────X─
//! q1: ─Rx(s1)──Ry(θ1)──X──●─────
//! ```

use crate::ir::{Angle, Circuit, Op};

fn angle_label(angle: Angle) -> String {
    match angle {
        Angle::Input(id) => format!("s{}", id.0),
        Angle::Param(id) => format!("θ{}", id.0),
        Angle::Const(c) => format!("{c:.2}"),
    }
}

/// Renders the circuit as an ASCII diagram, one line per wire.
pub fn render(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    let mut rows: Vec<String> = (0..n).map(|q| format!("q{q}: ─")).collect();
    // Pad wire headers to equal width.
    let head_w = rows.iter().map(|r| r.chars().count()).max().unwrap_or(0);
    for r in &mut rows {
        while r.chars().count() < head_w {
            r.insert(4, ' ');
        }
    }

    for op in circuit.ops() {
        let mut cells: Vec<String> = vec![String::new(); n];
        match *op {
            Op::Rot { qubit, axis, angle } => {
                cells[qubit] = format!(
                    "R{}({})",
                    axis.label().chars().last().unwrap(),
                    angle_label(angle)
                );
            }
            Op::ControlledRot {
                control,
                target,
                axis,
                angle,
            } => {
                cells[control] = "●".to_string();
                cells[target] = format!(
                    "CR{}({})",
                    axis.label().chars().last().unwrap(),
                    angle_label(angle)
                );
            }
            Op::Cnot { control, target } => {
                cells[control] = "●".to_string();
                cells[target] = "X".to_string();
            }
            Op::Cz { control, target } => {
                cells[control] = "●".to_string();
                cells[target] = "Z".to_string();
            }
            Op::Fixed { qubit, gate } => {
                cells[qubit] = gate.label().to_string();
            }
        }
        let width = cells.iter().map(|c| c.chars().count()).max().unwrap_or(1);
        for (q, row) in rows.iter_mut().enumerate() {
            let cell = &cells[q];
            let pad = width - cell.chars().count();
            if cell.is_empty() {
                row.push_str(&"─".repeat(width + 2));
            } else {
                row.push_str(cell);
                row.push_str(&"─".repeat(pad + 2));
            }
        }
    }
    let mut out = rows.join("\n");
    out.push('\n');
    out
}

/// A one-line structural summary: gate, parameter and input counts.
pub fn summary(circuit: &Circuit) -> String {
    format!(
        "{} qubits, {} gates ({} trainable), {} params, {} inputs",
        circuit.n_qubits(),
        circuit.gate_count(),
        circuit.trainable_gate_count(),
        circuit.param_count(),
        circuit.input_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::layered_ansatz;
    use crate::encoder::layered_angle_encoder;
    use crate::ir::FixedGate;
    use qmarl_qsim::gate::RotationAxis as Ax;

    #[test]
    fn renders_every_wire() {
        let mut c = layered_angle_encoder(4, 16).unwrap();
        c.append_shifted(&layered_ansatz(4, 8).unwrap()).unwrap();
        let d = render(&c);
        assert_eq!(d.trim_end().lines().count(), 4);
        assert!(d.contains("Rx(s0)"));
        assert!(d.contains("Rx(s12)")); // 4th encoder layer cycles back to X
        assert!(d.contains("θ0"));
        assert!(d.contains("●"));
        assert!(d.contains("X"));
    }

    #[test]
    fn renders_special_gates() {
        let mut c = Circuit::new(2);
        c.fixed(0, FixedGate::H).unwrap();
        c.cz(0, 1).unwrap();
        c.controlled_rot(1, 0, Ax::Z, Angle::Const(0.25)).unwrap();
        let d = render(&c);
        assert!(d.contains('H'));
        assert!(d.contains('Z'));
        assert!(d.contains("CRz(0.25)"));
    }

    #[test]
    fn summary_counts() {
        let mut c = layered_angle_encoder(4, 16).unwrap();
        c.append_shifted(&layered_ansatz(4, 50).unwrap()).unwrap();
        let s = summary(&c);
        assert!(s.contains("4 qubits"));
        assert!(s.contains("50 params"));
        assert!(s.contains("16 inputs"));
    }
}
