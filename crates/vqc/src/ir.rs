//! Circuit intermediate representation for variational quantum circuits.
//!
//! A [`Circuit`] is a flat list of [`Op`]s over an `n`-qubit register.
//! Rotation angles are symbolic ([`Angle`]): they reference either an
//! **input slot** (classical data bound at execution time — the paper's
//! state-encoder angles) or a **trainable parameter** (the `θ` updated by
//! the optimizer), or are constants. This split is exactly the
//! encoder/variational distinction of Fig. 1.

use qmarl_qsim::gate::RotationAxis;

use crate::error::VqcError;

/// Index of a classical input slot (an encoder angle).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct InputId(pub usize);

/// Index of a trainable parameter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ParamId(pub usize);

/// A symbolic rotation angle.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Angle {
    /// Bound from the classical input vector at execution time.
    Input(InputId),
    /// A trainable parameter.
    Param(ParamId),
    /// A fixed constant (radians).
    Const(f64),
}

/// A fixed (non-parameterised, non-rotation) single-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FixedGate {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S.
    S,
    /// T gate.
    T,
}

impl FixedGate {
    /// The concrete unitary.
    pub fn gate(self) -> qmarl_qsim::gate::Gate1 {
        use qmarl_qsim::gate::Gate1;
        match self {
            FixedGate::H => Gate1::hadamard(),
            FixedGate::X => Gate1::pauli_x(),
            FixedGate::Y => Gate1::pauli_y(),
            FixedGate::Z => Gate1::pauli_z(),
            FixedGate::S => Gate1::s(),
            FixedGate::T => Gate1::t(),
        }
    }

    /// Short label for diagrams.
    pub fn label(self) -> &'static str {
        match self {
            FixedGate::H => "H",
            FixedGate::X => "X",
            FixedGate::Y => "Y",
            FixedGate::Z => "Z",
            FixedGate::S => "S",
            FixedGate::T => "T",
        }
    }
}

/// One circuit operation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Op {
    /// A rotation `Rσ(angle)` on `qubit`.
    Rot {
        /// Target wire.
        qubit: usize,
        /// Rotation axis σ.
        axis: RotationAxis,
        /// Symbolic angle.
        angle: Angle,
    },
    /// A controlled rotation.
    ControlledRot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// Rotation axis σ.
        axis: RotationAxis,
        /// Symbolic angle.
        angle: Angle,
    },
    /// CNOT.
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
    /// Controlled-Z.
    Cz {
        /// First wire (CZ is symmetric).
        control: usize,
        /// Second wire.
        target: usize,
    },
    /// A fixed single-qubit gate.
    Fixed {
        /// Target wire.
        qubit: usize,
        /// Which gate.
        gate: FixedGate,
    },
}

impl Op {
    /// The wires this op touches (1 or 2 entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::Rot { qubit, .. } | Op::Fixed { qubit, .. } => vec![qubit],
            Op::ControlledRot {
                control, target, ..
            }
            | Op::Cnot { control, target }
            | Op::Cz { control, target } => vec![control, target],
        }
    }

    /// The symbolic angle, if this op is parameterised or input-driven.
    pub fn angle(&self) -> Option<Angle> {
        match *self {
            Op::Rot { angle, .. } | Op::ControlledRot { angle, .. } => Some(angle),
            _ => None,
        }
    }

    /// `true` when this op consumes a trainable parameter.
    pub fn is_trainable(&self) -> bool {
        matches!(self.angle(), Some(Angle::Param(_)))
    }
}

/// A variational circuit: a gate list plus declared input/parameter arity.
///
/// # Examples
///
/// ```
/// use qmarl_vqc::ir::{Circuit, Angle, InputId, ParamId};
/// use qmarl_qsim::gate::RotationAxis;
///
/// let mut c = Circuit::new(2);
/// c.rot(0, RotationAxis::X, Angle::Input(InputId(0)))?;
/// c.rot(1, RotationAxis::Y, Angle::Param(ParamId(0)))?;
/// c.cnot(0, 1)?;
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.param_count(), 1);
/// assert_eq!(c.input_count(), 1);
/// # Ok::<(), qmarl_vqc::error::VqcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    n_inputs: usize,
    n_params: usize,
}

impl Circuit {
    /// An empty circuit on `n_qubits` wires.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit needs at least one qubit");
        Circuit {
            n_qubits,
            ops: Vec::new(),
            n_inputs: 0,
            n_params: 0,
        }
    }

    /// Number of wires.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The ops in application order.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total gate count (the paper's `U_var` budget is counted this way).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of distinct trainable parameters referenced.
    #[inline]
    pub fn param_count(&self) -> usize {
        self.n_params
    }

    /// Number of distinct input slots referenced.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of ops that consume a trainable parameter.
    pub fn trainable_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_trainable()).count()
    }

    fn check_qubit(&self, q: usize) -> Result<(), VqcError> {
        if q >= self.n_qubits {
            Err(VqcError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    fn track_angle(&mut self, angle: Angle) {
        match angle {
            Angle::Input(InputId(i)) => self.n_inputs = self.n_inputs.max(i + 1),
            Angle::Param(ParamId(p)) => self.n_params = self.n_params.max(p + 1),
            Angle::Const(_) => {}
        }
    }

    /// Appends a rotation gate.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitOutOfRange`] for an invalid wire.
    pub fn rot(
        &mut self,
        qubit: usize,
        axis: RotationAxis,
        angle: Angle,
    ) -> Result<&mut Self, VqcError> {
        self.check_qubit(qubit)?;
        self.track_angle(angle);
        self.ops.push(Op::Rot { qubit, axis, angle });
        Ok(self)
    }

    /// Appends a controlled rotation.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitOutOfRange`] or [`VqcError::DuplicateQubit`].
    pub fn controlled_rot(
        &mut self,
        control: usize,
        target: usize,
        axis: RotationAxis,
        angle: Angle,
    ) -> Result<&mut Self, VqcError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(VqcError::DuplicateQubit { qubit: control });
        }
        self.track_angle(angle);
        self.ops.push(Op::ControlledRot {
            control,
            target,
            axis,
            angle,
        });
        Ok(self)
    }

    /// Appends a CNOT.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitOutOfRange`] or [`VqcError::DuplicateQubit`].
    pub fn cnot(&mut self, control: usize, target: usize) -> Result<&mut Self, VqcError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(VqcError::DuplicateQubit { qubit: control });
        }
        self.ops.push(Op::Cnot { control, target });
        Ok(self)
    }

    /// Appends a controlled-Z.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitOutOfRange`] or [`VqcError::DuplicateQubit`].
    pub fn cz(&mut self, control: usize, target: usize) -> Result<&mut Self, VqcError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(VqcError::DuplicateQubit { qubit: control });
        }
        self.ops.push(Op::Cz { control, target });
        Ok(self)
    }

    /// Appends a fixed gate.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitOutOfRange`] for an invalid wire.
    pub fn fixed(&mut self, qubit: usize, gate: FixedGate) -> Result<&mut Self, VqcError> {
        self.check_qubit(qubit)?;
        self.ops.push(Op::Fixed { qubit, gate });
        Ok(self)
    }

    /// Concatenates another circuit's ops after this one, shifting the
    /// other circuit's parameter ids by this circuit's parameter count so
    /// the two parameter spaces stay disjoint. Input slots are **shared**
    /// (same ids refer to the same classical inputs).
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::QubitCountMismatch`] for differing widths.
    pub fn append_shifted(&mut self, other: &Circuit) -> Result<&mut Self, VqcError> {
        if other.n_qubits != self.n_qubits {
            return Err(VqcError::QubitCountMismatch {
                expected: self.n_qubits,
                actual: other.n_qubits,
            });
        }
        let shift = self.n_params;
        for op in &other.ops {
            let shifted = match *op {
                Op::Rot { qubit, axis, angle } => Op::Rot {
                    qubit,
                    axis,
                    angle: shift_angle(angle, shift),
                },
                Op::ControlledRot {
                    control,
                    target,
                    axis,
                    angle,
                } => Op::ControlledRot {
                    control,
                    target,
                    axis,
                    angle: shift_angle(angle, shift),
                },
                other_op => other_op,
            };
            if let Some(a) = shifted.angle() {
                self.track_angle(a);
            }
            self.ops.push(shifted);
        }
        Ok(self)
    }
}

fn shift_angle(angle: Angle, shift: usize) -> Angle {
    match angle {
        Angle::Param(ParamId(p)) => Angle::Param(ParamId(p + shift)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_qsim::gate::RotationAxis as Ax;

    #[test]
    fn builder_counts_arity() {
        let mut c = Circuit::new(3);
        c.rot(0, Ax::X, Angle::Input(InputId(2))).unwrap();
        c.rot(1, Ax::Y, Angle::Param(ParamId(4))).unwrap();
        c.rot(2, Ax::Z, Angle::Const(0.5)).unwrap();
        c.cnot(0, 1).unwrap();
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.param_count(), 5);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.trainable_gate_count(), 1);
    }

    #[test]
    fn invalid_wires_rejected() {
        let mut c = Circuit::new(2);
        assert!(c.rot(2, Ax::X, Angle::Const(0.0)).is_err());
        assert!(c.cnot(0, 0).is_err());
        assert!(c.cnot(0, 5).is_err());
        assert!(c.cz(1, 1).is_err());
        assert!(c.controlled_rot(0, 0, Ax::Z, Angle::Const(1.0)).is_err());
        assert!(c.fixed(9, FixedGate::H).is_err());
    }

    #[test]
    fn append_shifted_disjoint_params() {
        let mut enc = Circuit::new(2);
        enc.rot(0, Ax::X, Angle::Input(InputId(0))).unwrap();
        enc.rot(1, Ax::X, Angle::Input(InputId(1))).unwrap();

        let mut var = Circuit::new(2);
        var.rot(0, Ax::Y, Angle::Param(ParamId(0))).unwrap();
        var.rot(1, Ax::Y, Angle::Param(ParamId(1))).unwrap();
        var.cnot(0, 1).unwrap();

        let mut full = enc.clone();
        full.append_shifted(&var).unwrap();
        // enc has no params, so no shift here…
        assert_eq!(full.param_count(), 2);

        // …but appending var twice shifts the second copy.
        full.append_shifted(&var).unwrap();
        assert_eq!(full.param_count(), 4);
        assert_eq!(full.input_count(), 2);
        assert_eq!(full.gate_count(), 8);
    }

    #[test]
    fn append_shifted_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(a.append_shifted(&b).is_err());
    }

    #[test]
    fn op_introspection() {
        let op = Op::Rot {
            qubit: 1,
            axis: Ax::Z,
            angle: Angle::Param(ParamId(0)),
        };
        assert_eq!(op.qubits(), vec![1]);
        assert!(op.is_trainable());
        let op = Op::Cnot {
            control: 0,
            target: 2,
        };
        assert_eq!(op.qubits(), vec![0, 2]);
        assert!(!op.is_trainable());
        assert!(op.angle().is_none());
    }

    #[test]
    fn fixed_gate_labels() {
        assert_eq!(FixedGate::H.label(), "H");
        assert_eq!(FixedGate::T.label(), "T");
    }
}
