//! Measurement readouts: how expectation values become model outputs.
//!
//! The paper's measurement step `M` reads `⟨Z⟩` on up to `n_qubit` wires
//! (`|M| ≤ n_qubit`). Actors use one output per action logit
//! ([`Readout::ZPerQubit`]); the centralized critic compresses the register
//! into one scalar ([`Readout::WeightedZSum`]).

use qmarl_qsim::density::DensityMatrix;
use qmarl_qsim::measure;
use qmarl_qsim::state::StateVector;

use crate::error::VqcError;

/// A readout scheme mapping a final quantum state to an output vector.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Readout {
    /// One `⟨Z_q⟩` output per listed wire (actor logits).
    ZPerQubit {
        /// The wires to read, in output order.
        qubits: Vec<usize>,
    },
    /// A single output `Σ_q w_q ⟨Z_q⟩` (critic value head).
    WeightedZSum {
        /// Per-wire weights, indexed by wire.
        weights: Vec<f64>,
    },
}

impl Readout {
    /// Z readout on every wire of an `n`-qubit register.
    pub fn z_all(n_qubits: usize) -> Self {
        Readout::ZPerQubit {
            qubits: (0..n_qubits).collect(),
        }
    }

    /// Uniform-weight scalar readout over `n_qubits` wires (mean ⟨Z⟩).
    pub fn mean_z(n_qubits: usize) -> Self {
        Readout::WeightedZSum {
            weights: vec![1.0 / n_qubits as f64; n_qubits],
        }
    }

    /// Number of classical outputs this readout produces.
    pub fn output_len(&self) -> usize {
        match self {
            Readout::ZPerQubit { qubits } => qubits.len(),
            Readout::WeightedZSum { .. } => 1,
        }
    }

    /// Validates wire references against a register width.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ReadoutOutOfRange`] for a bad wire, or
    /// [`VqcError::InvalidConfig`] for an empty readout.
    pub fn validate(&self, n_qubits: usize) -> Result<(), VqcError> {
        match self {
            Readout::ZPerQubit { qubits } => {
                if qubits.is_empty() {
                    return Err(VqcError::InvalidConfig(
                        "readout must name at least one wire".into(),
                    ));
                }
                for &q in qubits {
                    if q >= n_qubits {
                        return Err(VqcError::ReadoutOutOfRange { qubit: q, n_qubits });
                    }
                }
            }
            Readout::WeightedZSum { weights } => {
                if weights.is_empty() {
                    return Err(VqcError::InvalidConfig(
                        "weighted readout needs weights".into(),
                    ));
                }
                if weights.len() > n_qubits {
                    return Err(VqcError::ReadoutOutOfRange {
                        qubit: weights.len() - 1,
                        n_qubits,
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the readout on a pure state.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ReadoutOutOfRange`] for a bad wire.
    pub fn evaluate(&self, state: &StateVector) -> Result<Vec<f64>, VqcError> {
        self.validate(state.n_qubits())?;
        match self {
            Readout::ZPerQubit { qubits } => qubits
                .iter()
                .map(|&q| measure::expectation_z(state, q).map_err(VqcError::from))
                .collect(),
            Readout::WeightedZSum { weights } => {
                let mut acc = 0.0;
                for (q, w) in weights.iter().enumerate() {
                    acc += w * measure::expectation_z(state, q)?;
                }
                Ok(vec![acc])
            }
        }
    }

    /// Evaluates the readout from `shots` computational-basis samples —
    /// the finite-shot estimate real hardware would return. One sample
    /// batch serves every output because all `Z_q` commute.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ReadoutOutOfRange`] for a bad wire, or a
    /// simulator error when `shots == 0`.
    pub fn evaluate_shots<R: rand::Rng + ?Sized>(
        &self,
        state: &StateVector,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, VqcError> {
        self.validate(state.n_qubits())?;
        let record = qmarl_qsim::shots::measure_shots(state, shots, rng)?;
        self.evaluate_record(&record)
    }

    /// Evaluates the readout from `shots` computational-basis samples of
    /// a mixed state — the finite-shot estimate of noisy hardware
    /// execution (channel noise *and* shot noise together).
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ReadoutOutOfRange`] for a bad wire, or a
    /// simulator error when `shots == 0`.
    pub fn evaluate_shots_density<R: rand::Rng + ?Sized>(
        &self,
        rho: &DensityMatrix,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, VqcError> {
        self.validate(rho.n_qubits())?;
        let record = qmarl_qsim::shots::measure_shots_density(rho, shots, rng)?;
        self.evaluate_record(&record)
    }

    /// Folds a recorded sample batch through the readout (shared by the
    /// pure- and mixed-state sampled paths).
    fn evaluate_record(
        &self,
        record: &qmarl_qsim::shots::ShotRecord,
    ) -> Result<Vec<f64>, VqcError> {
        match self {
            Readout::ZPerQubit { qubits } => qubits
                .iter()
                .map(|&q| record.expectation_z(q).map_err(VqcError::from))
                .collect(),
            Readout::WeightedZSum { weights } => {
                let mut acc = 0.0;
                for (q, w) in weights.iter().enumerate() {
                    acc += w * record.expectation_z(q)?;
                }
                Ok(vec![acc])
            }
        }
    }

    /// Evaluates the readout on a mixed state (noisy execution).
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ReadoutOutOfRange`] for a bad wire.
    pub fn evaluate_density(&self, rho: &DensityMatrix) -> Result<Vec<f64>, VqcError> {
        self.validate(rho.n_qubits())?;
        match self {
            Readout::ZPerQubit { qubits } => qubits
                .iter()
                .map(|&q| rho.expectation_z(q).map_err(VqcError::from))
                .collect(),
            Readout::WeightedZSum { weights } => {
                let mut acc = 0.0;
                for (q, w) in weights.iter().enumerate() {
                    acc += w * rho.expectation_z(q)?;
                }
                Ok(vec![acc])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_qsim::gate::Gate1;

    #[test]
    fn z_all_reads_every_wire() {
        let r = Readout::z_all(4);
        assert_eq!(r.output_len(), 4);
        let s = StateVector::zero(4);
        let out = r.evaluate(&s).unwrap();
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn weighted_sum_is_scalar() {
        let r = Readout::mean_z(4);
        assert_eq!(r.output_len(), 1);
        let s = StateVector::zero(4);
        assert!((r.evaluate(&s).unwrap()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_respects_weights() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::pauli_x()).unwrap(); // wire0 → ⟨Z⟩ = −1
        let r = Readout::WeightedZSum {
            weights: vec![2.0, 3.0],
        };
        // 2·(−1) + 3·(+1) = 1.
        assert!((r.evaluate(&s).unwrap()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subset_readout_order() {
        let mut s = StateVector::zero(3);
        s.apply_gate1(2, &Gate1::pauli_x()).unwrap();
        let r = Readout::ZPerQubit { qubits: vec![2, 0] };
        let out = r.evaluate(&s).unwrap();
        assert!((out[0] + 1.0).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(Readout::ZPerQubit { qubits: vec![] }.validate(4).is_err());
        assert!(Readout::ZPerQubit { qubits: vec![4] }.validate(4).is_err());
        assert!(Readout::WeightedZSum { weights: vec![] }
            .validate(4)
            .is_err());
        assert!(Readout::WeightedZSum {
            weights: vec![1.0; 5]
        }
        .validate(4)
        .is_err());
        assert!(Readout::z_all(4).validate(4).is_ok());
    }

    #[test]
    fn shot_estimates_converge_to_exact() {
        use rand::SeedableRng;
        let mut s = StateVector::zero(3);
        s.apply_gate1(0, &Gate1::ry(0.8)).unwrap();
        s.apply_gate1(2, &Gate1::ry(-1.1)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for r in [Readout::z_all(3), Readout::mean_z(3)] {
            let exact = r.evaluate(&s).unwrap();
            let est = r.evaluate_shots(&s, 100_000, &mut rng).unwrap();
            for (a, b) in exact.iter().zip(&est) {
                assert!((a - b).abs() < 0.02, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn shot_readout_validates() {
        use rand::SeedableRng;
        let s = StateVector::zero(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(Readout::ZPerQubit { qubits: vec![5] }
            .evaluate_shots(&s, 100, &mut rng)
            .is_err());
        assert!(Readout::z_all(2).evaluate_shots(&s, 0, &mut rng).is_err());
    }

    #[test]
    fn density_and_pure_agree() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &Gate1::ry(0.8)).unwrap();
        s.apply_cnot(0, 1).unwrap();
        let rho = qmarl_qsim::density::DensityMatrix::from_state_vector(&s);
        for r in [Readout::z_all(2), Readout::mean_z(2)] {
            let a = r.evaluate(&s).unwrap();
            let b = r.evaluate_density(&rho).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }
}
