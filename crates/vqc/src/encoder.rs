//! Quantum state encoders: folding classical vectors into few qubits.
//!
//! This is the paper's key scalability device. A naive CTDE critic would
//! allocate qubits proportional to `n_agents · obs_dim`; instead, the paper
//! passes the concatenated state through **layers of rotation gates** on a
//! fixed-width register (Fig. 1, green box):
//!
//! ```text
//! layer 0: Rx(s0) Rx(s1) Rx(s2) Rx(s3)      ← one rotation per qubit
//! layer 1: Ry(s4) Ry(s5) Ry(s6) Ry(s7)
//! layer 2: Rz(s8) Rz(s9) Rz(s10) Rz(s11)
//! layer 3: Rx(s12) Rx(s13) Rx(s14) Rx(s15)
//! ```
//!
//! so a 16-dimensional state needs 4 qubits and 4 layers, with the axis
//! cycling `X → Y → Z → X → …` per layer. [`layered_angle_encoder`] builds
//! exactly this pattern for any input length.

use qmarl_qsim::gate::RotationAxis;

use crate::error::VqcError;
use crate::ir::{Angle, Circuit, InputId};

/// How raw classical features are mapped to rotation angles when binding.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum InputScaling {
    /// Use features as radians directly.
    Identity,
    /// Multiply by π — natural for features already normalised to `[0, 1]`
    /// (queue occupancies in this paper are).
    #[default]
    Pi,
    /// `arctan` squashing — keeps unbounded features in `(−π/2, π/2)`.
    ArcTan,
    /// Multiply by an arbitrary constant.
    Scale(f64),
}

impl InputScaling {
    /// Applies the scaling to one feature.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            InputScaling::Identity => x,
            InputScaling::Pi => x * std::f64::consts::PI,
            InputScaling::ArcTan => x.atan(),
            InputScaling::Scale(s) => x * s,
        }
    }

    /// Applies the scaling to a whole feature vector.
    pub fn apply_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

/// Builds the paper's layered angle encoder: `n_inputs` input slots folded
/// onto `n_qubits` wires, axis cycling `X → Y → Z` per layer.
///
/// Input slot `i` lands on qubit `i % n_qubits` in layer `i / n_qubits`.
/// The final layer may be partial when `n_inputs` is not a multiple of
/// `n_qubits`.
///
/// # Errors
///
/// Returns [`VqcError::InvalidConfig`] when `n_inputs == 0`.
///
/// # Examples
///
/// ```
/// use qmarl_vqc::encoder::layered_angle_encoder;
///
/// // The critic encoder of the paper: 16 state features on 4 qubits.
/// let enc = layered_angle_encoder(4, 16)?;
/// assert_eq!(enc.gate_count(), 16);
/// assert_eq!(enc.input_count(), 16);
/// assert_eq!(enc.param_count(), 0);     // encoders have no trainables
/// # Ok::<(), qmarl_vqc::error::VqcError>(())
/// ```
pub fn layered_angle_encoder(n_qubits: usize, n_inputs: usize) -> Result<Circuit, VqcError> {
    if n_inputs == 0 {
        return Err(VqcError::InvalidConfig(
            "encoder needs at least one input".into(),
        ));
    }
    let mut c = Circuit::new(n_qubits);
    for i in 0..n_inputs {
        let layer = i / n_qubits;
        let qubit = i % n_qubits;
        let axis = RotationAxis::ALL[layer % 3];
        c.rot(qubit, axis, Angle::Input(InputId(i)))?;
    }
    Ok(c)
}

/// Number of encoding layers needed for `n_inputs` features on
/// `n_qubits` wires (`⌈n_inputs / n_qubits⌉`). Fig. 2 annotates this as
/// `n(qubit) · n(agent) / 4` for the critic.
pub fn encoder_depth(n_qubits: usize, n_inputs: usize) -> usize {
    n_inputs.div_ceil(n_qubits)
}

/// Builds a **data re-uploading** circuit: the input encoding is repeated
/// between trainable blocks instead of appearing once up front.
///
/// Re-uploading (Pérez-Salinas et al., 2020) is the main alternative to
/// the paper's encode-once layered scheme — repeating the encoding makes
/// the model a higher-order function of the inputs at the cost of more
/// encoder gates (and hence more NISQ noise exposure). The encoder-design
/// ablation compares the two at an equal trainable budget.
///
/// Structure: `repeats` blocks of `[layered encoder | rotation layer +
/// CNOT ring]`, with the trainable budget split evenly across blocks
/// (remainder to the last block).
///
/// # Errors
///
/// Returns [`VqcError::InvalidConfig`] when `repeats == 0` or the budget
/// is smaller than `repeats`.
pub fn reuploading_circuit(
    n_qubits: usize,
    n_inputs: usize,
    repeats: usize,
    param_budget: usize,
) -> Result<Circuit, VqcError> {
    if repeats == 0 {
        return Err(VqcError::InvalidConfig(
            "re-uploading needs at least one block".into(),
        ));
    }
    if param_budget < repeats {
        return Err(VqcError::InvalidConfig(format!(
            "budget {param_budget} too small for {repeats} trainable blocks"
        )));
    }
    let mut circuit = Circuit::new(n_qubits);
    let per_block = param_budget / repeats;
    let remainder = param_budget - per_block * repeats;
    for block in 0..repeats {
        circuit.append_shifted(&layered_angle_encoder(n_qubits, n_inputs)?)?;
        let budget = per_block + if block == repeats - 1 { remainder } else { 0 };
        if budget > 0 {
            circuit.append_shifted(&crate::ansatz::layered_ansatz(n_qubits, budget)?)?;
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    #[test]
    fn paper_critic_encoder_shape() {
        // 16 features → 4 layers on 4 qubits, axes X, Y, Z, X (Fig. 1).
        let enc = layered_angle_encoder(4, 16).unwrap();
        assert_eq!(enc.gate_count(), 16);
        assert_eq!(encoder_depth(4, 16), 4);
        let axes: Vec<RotationAxis> = enc
            .ops()
            .iter()
            .map(|op| match op {
                Op::Rot { axis, .. } => *axis,
                _ => panic!("encoder must be rotations only"),
            })
            .collect();
        for (i, ax) in axes.iter().enumerate() {
            let want = RotationAxis::ALL[(i / 4) % 3];
            assert_eq!(*ax, want, "gate {i}");
        }
        // Layer 3 cycles back to X.
        assert_eq!(axes[12], RotationAxis::X);
    }

    #[test]
    fn paper_actor_encoder_shape() {
        // 4 observation features → single Rx layer.
        let enc = layered_angle_encoder(4, 4).unwrap();
        assert_eq!(enc.gate_count(), 4);
        assert_eq!(encoder_depth(4, 4), 1);
        for op in enc.ops() {
            match op {
                Op::Rot { axis, .. } => assert_eq!(*axis, RotationAxis::X),
                _ => panic!("rotations only"),
            }
        }
    }

    #[test]
    fn partial_last_layer() {
        let enc = layered_angle_encoder(4, 6).unwrap();
        assert_eq!(enc.gate_count(), 6);
        assert_eq!(encoder_depth(4, 6), 2);
        match enc.ops()[5] {
            Op::Rot { qubit, axis, .. } => {
                assert_eq!(qubit, 1);
                assert_eq!(axis, RotationAxis::Y);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn zero_inputs_rejected() {
        assert!(layered_angle_encoder(4, 0).is_err());
    }

    #[test]
    fn input_ids_are_sequential() {
        let enc = layered_angle_encoder(3, 7).unwrap();
        let ids: Vec<usize> = enc
            .ops()
            .iter()
            .map(|op| match op.angle() {
                Some(Angle::Input(InputId(i))) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn reuploading_repeats_the_encoder() {
        let c = reuploading_circuit(4, 4, 3, 12).unwrap();
        // 3 encoder blocks of 4 gates each + 12 trainable rotations.
        assert_eq!(c.input_count(), 4);
        assert_eq!(c.param_count(), 12);
        let encoder_gates = c
            .ops()
            .iter()
            .filter(|o| matches!(o.angle(), Some(Angle::Input(_))))
            .count();
        assert_eq!(encoder_gates, 12, "the 4 inputs are uploaded 3 times");
    }

    #[test]
    fn reuploading_budget_split_is_exact() {
        for (repeats, budget) in [(1usize, 10usize), (2, 11), (3, 50), (4, 7)] {
            let c = reuploading_circuit(4, 8, repeats, budget).unwrap();
            assert_eq!(c.param_count(), budget, "repeats {repeats} budget {budget}");
        }
    }

    #[test]
    fn reuploading_single_block_matches_plain_layout() {
        // One repeat = encode once + ansatz: same arity as the paper's shape.
        let re = reuploading_circuit(4, 16, 1, 48).unwrap();
        let mut plain = layered_angle_encoder(4, 16).unwrap();
        plain
            .append_shifted(&crate::ansatz::layered_ansatz(4, 48).unwrap())
            .unwrap();
        assert_eq!(re, plain);
    }

    #[test]
    fn reuploading_validates() {
        assert!(reuploading_circuit(4, 4, 0, 10).is_err());
        assert!(reuploading_circuit(4, 4, 8, 4).is_err());
    }

    #[test]
    fn scaling_modes() {
        assert_eq!(InputScaling::Identity.apply(0.4), 0.4);
        assert!((InputScaling::Pi.apply(1.0) - std::f64::consts::PI).abs() < 1e-15);
        assert!((InputScaling::ArcTan.apply(1e12) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        assert_eq!(InputScaling::Scale(2.0).apply(0.3), 0.6);
        assert_eq!(InputScaling::default(), InputScaling::Pi);
        let v = InputScaling::Pi.apply_all(&[0.0, 0.5, 1.0]);
        assert!((v[1] - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }
}
