//! Error types for circuit construction and execution.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running variational circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum VqcError {
    /// A wire index was at least the register width.
    QubitOutOfRange {
        /// Offending wire.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// A two-qubit op used the same wire twice.
    DuplicateQubit {
        /// The duplicated wire.
        qubit: usize,
    },
    /// Two circuits (or a circuit and a readout) disagreed on width.
    QubitCountMismatch {
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// The bound input vector had the wrong length.
    InputLenMismatch {
        /// Declared input arity of the circuit.
        expected: usize,
        /// Supplied vector length.
        actual: usize,
    },
    /// The bound parameter vector had the wrong length.
    ParamLenMismatch {
        /// Declared parameter arity of the circuit.
        expected: usize,
        /// Supplied vector length.
        actual: usize,
    },
    /// A readout referenced a wire outside the register.
    ReadoutOutOfRange {
        /// Offending wire.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// An ansatz/encoder construction parameter was invalid.
    InvalidConfig(String),
    /// The underlying simulator reported an error.
    Simulator(qmarl_qsim::error::QsimError),
}

impl fmt::Display for VqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqcError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit circuit")
            }
            VqcError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit op applied twice to qubit {qubit}")
            }
            VqcError::QubitCountMismatch { expected, actual } => {
                write!(
                    f,
                    "expected a {expected}-qubit circuit, got {actual} qubits"
                )
            }
            VqcError::InputLenMismatch { expected, actual } => {
                write!(
                    f,
                    "circuit declares {expected} inputs but {actual} were bound"
                )
            }
            VqcError::ParamLenMismatch { expected, actual } => {
                write!(
                    f,
                    "circuit declares {expected} parameters but {actual} were bound"
                )
            }
            VqcError::ReadoutOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "readout wire {qubit} out of range for {n_qubits}-qubit circuit"
                )
            }
            VqcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            VqcError::Simulator(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for VqcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VqcError::Simulator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qmarl_qsim::error::QsimError> for VqcError {
    fn from(e: qmarl_qsim::error::QsimError) -> Self {
        VqcError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errs: Vec<VqcError> = vec![
            VqcError::QubitOutOfRange {
                qubit: 4,
                n_qubits: 4,
            },
            VqcError::DuplicateQubit { qubit: 1 },
            VqcError::QubitCountMismatch {
                expected: 4,
                actual: 2,
            },
            VqcError::InputLenMismatch {
                expected: 16,
                actual: 4,
            },
            VqcError::ParamLenMismatch {
                expected: 50,
                actual: 48,
            },
            VqcError::ReadoutOutOfRange {
                qubit: 7,
                n_qubits: 4,
            },
            VqcError::InvalidConfig("gate budget must be positive".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn simulator_error_chains() {
        let e = VqcError::from(qmarl_qsim::error::QsimError::NotNormalized { norm: 0.0 });
        assert!(std::error::Error::source(&e).is_some());
    }
}
