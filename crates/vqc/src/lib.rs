//! # qmarl-vqc — variational quantum circuits with exact gradients
//!
//! The VQC layer of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443): circuit IR,
//! the paper's layered angle **state encoder** (Fig. 1), structured and
//! random **parametrized circuits** (`U_var`), Pauli-Z **readouts** (`M`),
//! and three interchangeable gradient engines (parameter-shift, adjoint,
//! finite-difference) replacing the PyTorch autograd the authors used.
//!
//! ```
//! use qmarl_vqc::prelude::*;
//!
//! // The paper's centralized-critic shape: 16 state features folded into
//! // 4 qubits by 4 encoder layers, 48 trainable circuit angles, scalar
//! // value readout with a trainable affine head (48 + 2 = 50 trainables).
//! let critic = VqcBuilder::new(4)
//!     .encoder_inputs(16)
//!     .ansatz_params(48)
//!     .readout(Readout::mean_z(4))
//!     .output_head(OutputHead::Affine)
//!     .build()?;
//! let params = critic.init_params(42);
//! let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
//! let (value, jac) = critic.forward_with_jacobian(&state, &params, GradMethod::Adjoint)?;
//! assert_eq!(value.len(), 1);
//! assert_eq!(jac.n_params(), 50);
//! # Ok::<(), qmarl_vqc::error::VqcError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ansatz;
pub mod diagram;
pub mod encoder;
pub mod error;
pub mod exec;
pub mod grad;
pub mod ir;
pub mod observable;
pub mod qnn;
pub mod stats;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::ansatz::{init_params, layered_ansatz, random_layer_ansatz, RandomLayerConfig};
    pub use crate::encoder::{
        encoder_depth, layered_angle_encoder, reuploading_circuit, InputScaling,
    };
    pub use crate::error::VqcError;
    pub use crate::exec::{run, run_noisy};
    pub use crate::grad::{
        jacobian, jacobian_adjoint, jacobian_finite_diff, jacobian_parameter_shift,
        jacobian_parameter_shift_parallel, GradMethod, Jacobian,
    };
    pub use crate::ir::{Angle, Circuit, FixedGate, InputId, Op, ParamId};
    pub use crate::observable::Readout;
    pub use crate::qnn::{OutputHead, Vqc, VqcBuilder};
    pub use crate::stats::CircuitStats;
}
